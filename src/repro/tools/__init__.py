"""Operational tooling: workload trace record/replay."""

from repro.tools.trace import OpKind, Trace, TraceOp, TraceRecorder, replay

__all__ = ["OpKind", "Trace", "TraceOp", "TraceRecorder", "replay"]
