"""Workload traces: record once, replay anywhere.

A trace is an ordered script of the four client-visible operations —
subscribe, unsubscribe, propagate, publish — in a binary format built on
the wire codec.  Uses:

* **reproducible comparisons**: replay the identical operation sequence
  against the summary system, the Siena comparator and the baseline (or
  against two configurations of the same system) and diff the metrics;
* **regression corpora**: traces checked into a repository pin down
  behavior across versions;
* **capture**: :class:`TraceRecorder` wraps a live system and writes down
  everything done to it.

The file layout is ``magic + schema signature + ops``; replaying against a
system with a different schema fails loudly instead of mis-decoding.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.model.events import Event
from repro.model.ids import SubscriptionId
from repro.model.schema import Schema
from repro.model.subscriptions import Subscription
from repro.wire.codec import ByteReader, ByteWriter, CodecError, ValueWidth, WireCodec

__all__ = ["TraceOp", "OpKind", "Trace", "TraceRecorder", "replay"]

TRACE_MAGIC = b"RTRC1"

PathLike = Union[str, Path]


class OpKind(enum.IntEnum):
    SUBSCRIBE = 0
    UNSUBSCRIBE = 1
    PROPAGATE = 2
    PUBLISH = 3


@dataclass(frozen=True)
class TraceOp:
    """One recorded operation.

    ``sid`` on a SUBSCRIBE is the id the original run minted — replays
    assert they mint the same one, which catches id-allocation divergence.
    """

    kind: OpKind
    broker: int = 0
    subscription: Optional[Subscription] = None
    sid: Optional[SubscriptionId] = None
    event: Optional[Event] = None


def _schema_signature(schema: Schema) -> str:
    return ";".join(f"{spec.name}:{spec.type.value}" for spec in schema)


class Trace:
    """An in-memory operation script bound to a schema."""

    def __init__(self, schema: Schema, ops: Optional[List[TraceOp]] = None):
        self.schema = schema
        self.ops: List[TraceOp] = list(ops) if ops else []

    def __len__(self) -> int:
        return len(self.ops)

    def __iter__(self):
        return iter(self.ops)

    # -- building -------------------------------------------------------------

    def subscribe(
        self, broker: int, subscription: Subscription, sid: Optional[SubscriptionId] = None
    ) -> None:
        self.ops.append(
            TraceOp(OpKind.SUBSCRIBE, broker=broker, subscription=subscription, sid=sid)
        )

    def unsubscribe(self, broker: int, sid: SubscriptionId) -> None:
        self.ops.append(TraceOp(OpKind.UNSUBSCRIBE, broker=broker, sid=sid))

    def propagate(self) -> None:
        self.ops.append(TraceOp(OpKind.PROPAGATE))

    def publish(self, broker: int, event: Event) -> None:
        self.ops.append(TraceOp(OpKind.PUBLISH, broker=broker, event=event))

    # -- serialization -----------------------------------------------------------

    def save(self, path: PathLike, wire: Optional[WireCodec] = None) -> Path:
        wire = wire if wire is not None else _default_wire(self.schema)
        writer = ByteWriter()
        writer.raw(TRACE_MAGIC)
        writer.string(_schema_signature(self.schema))
        writer.varint(len(self.ops))
        for op in self.ops:
            writer.byte(int(op.kind))
            writer.varint(op.broker)
            if op.kind is OpKind.SUBSCRIBE:
                assert op.subscription is not None
                wire.write_subscription(writer, op.subscription)
                writer.byte(1 if op.sid is not None else 0)
                if op.sid is not None:
                    writer.raw(wire.id_codec.to_bytes(op.sid))
            elif op.kind is OpKind.UNSUBSCRIBE:
                assert op.sid is not None
                writer.raw(wire.id_codec.to_bytes(op.sid))
            elif op.kind is OpKind.PUBLISH:
                assert op.event is not None
                payload = wire.encode_event(op.event)
                writer.varint(len(payload))
                writer.raw(payload)
        target = Path(path)
        target.write_bytes(writer.getvalue())
        return target

    @classmethod
    def load(
        cls, path: PathLike, schema: Schema, wire: Optional[WireCodec] = None
    ) -> "Trace":
        wire = wire if wire is not None else _default_wire(schema)
        reader = ByteReader(Path(path).read_bytes())
        if reader.raw(len(TRACE_MAGIC)) != TRACE_MAGIC:
            raise CodecError("not a trace file (bad magic)")
        signature = reader.string()
        if signature != _schema_signature(schema):
            raise CodecError(
                f"trace was recorded for schema [{signature}], got "
                f"[{_schema_signature(schema)}]"
            )
        trace = cls(schema)
        for _ in range(reader.varint()):
            kind = OpKind(reader.byte())
            broker = reader.varint()
            if kind is OpKind.SUBSCRIBE:
                subscription = wire.read_subscription(reader)
                sid = None
                if reader.byte():
                    sid = wire.id_codec.from_bytes(reader.raw(wire.id_codec.byte_size))
                trace.ops.append(
                    TraceOp(kind, broker=broker, subscription=subscription, sid=sid)
                )
            elif kind is OpKind.UNSUBSCRIBE:
                sid = wire.id_codec.from_bytes(reader.raw(wire.id_codec.byte_size))
                trace.ops.append(TraceOp(kind, broker=broker, sid=sid))
            elif kind is OpKind.PUBLISH:
                event = wire.decode_event(reader.raw(reader.varint()))
                trace.ops.append(TraceOp(kind, broker=broker, event=event))
            else:
                trace.ops.append(TraceOp(kind))
        if not reader.at_end():
            raise CodecError(f"{reader.remaining} trailing bytes after trace")
        return trace


def _default_wire(schema: Schema) -> WireCodec:
    from repro.model.ids import IdCodec

    # Generous bounds: traces carry ids from arbitrary deployments.
    return WireCodec(schema, IdCodec(1 << 10, 1 << 20, len(schema)), ValueWidth.F64)


@dataclass
class ReplayResult:
    """What a replay did and what it cost."""

    deliveries: int = 0
    publishes: int = 0
    propagation_periods: int = 0
    event_hops: int = 0
    delivered_pairs: List[Tuple[int, SubscriptionId]] = None  # type: ignore[assignment]

    def __post_init__(self):
        if self.delivered_pairs is None:
            self.delivered_pairs = []


def replay(trace: Trace, system) -> ReplayResult:
    """Apply a trace to any system exposing the four-call facade.

    SUBSCRIBE ops with a recorded sid assert the replayed mint matches —
    divergence means the target system allocates ids differently than the
    recording run, which would invalidate cross-system comparisons.
    """
    result = ReplayResult()
    for op in trace.ops:
        if op.kind is OpKind.SUBSCRIBE:
            minted = system.subscribe(op.broker, op.subscription)
            if op.sid is not None and minted != op.sid:
                raise ValueError(
                    f"replay minted {minted}, recording had {op.sid}"
                )
        elif op.kind is OpKind.UNSUBSCRIBE:
            system.unsubscribe(op.broker, op.sid)
        elif op.kind is OpKind.PROPAGATE:
            system.run_propagation_period()
            result.propagation_periods += 1
        else:
            outcome = system.publish(op.broker, op.event)
            result.publishes += 1
            result.deliveries += len(outcome.deliveries)
            result.event_hops += outcome.hops
            result.delivered_pairs.extend(
                (delivery.broker, delivery.sid) for delivery in outcome.deliveries
            )
    return result


class TraceRecorder:
    """Wrap a live system; every call is applied AND recorded."""

    def __init__(self, system):
        self.system = system
        self.trace = Trace(system.schema)

    def subscribe(self, broker: int, subscription: Subscription) -> SubscriptionId:
        sid = self.system.subscribe(broker, subscription)
        self.trace.subscribe(broker, subscription, sid)
        return sid

    def unsubscribe(self, broker: int, sid: SubscriptionId) -> bool:
        removed = self.system.unsubscribe(broker, sid)
        if removed:
            self.trace.unsubscribe(broker, sid)
        return removed

    def run_propagation_period(self) -> Dict[str, int]:
        snapshot = self.system.run_propagation_period()
        self.trace.propagate()
        return snapshot

    def publish(self, broker: int, event: Event):
        outcome = self.system.publish(broker, event)
        self.trace.publish(broker, event)
        return outcome
