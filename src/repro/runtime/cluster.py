"""Boot a whole overlay of live brokers on localhost.

:class:`LocalCluster` creates one :class:`~repro.runtime.server
.BrokerRuntime` per topology node (all in the current event loop), binds
each to an ephemeral port, and exchanges the address map — the live
equivalent of constructing a :class:`~repro.broker.system.SummaryPubSub`.
It adds the coordination the paper's round-based algorithms assume:

* :meth:`quiesce` — wait until no broker-to-broker frame is queued,
  in flight, or mid-dispatch anywhere (cluster-wide
  ``frames_enqueued == frames_processed``, stable across polls).
* :meth:`run_propagation_period` — Algorithm 2 exactly: brokers act in
  ascending degree order with a quiesce barrier between iterations (the
  live analogue of the simulator's ``flush_iteration``), then every
  broker folds its delta.  Same code path
  (:func:`~repro.broker.propagation.select_period_target`) as the
  simulator, so both substrates pick identical targets.
* :meth:`settle` — producer flushes + quiesce + subscriber flushes: after
  it returns, every published event has fully routed and every resulting
  notification is in the subscribers' ``deliveries`` lists.

``repro-cluster`` (see :func:`main`) is the CLI smoke path: boot a named
topology, drive a seeded stock workload through real sockets, print the
traffic/delivery summary, optionally drain to snapshots.
"""

from __future__ import annotations

import argparse
import asyncio
import sys
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.broker.persistence import SnapshotCodec, snapshot_path
from repro.broker.propagation import TargetPolicy
from repro.model.schema import Schema, stock_schema
from repro.network.metrics import NetworkMetrics
from repro.network.topology import Topology
from repro.runtime.client import ProducerSession, SubscriberSession
from repro.runtime.server import (
    DEFAULT_BATCH_FRAMES,
    DEFAULT_MATCH_CACHE,
    DEFAULT_QUEUE_FRAMES,
    BrokerRuntime,
    maybe_enable_uvloop,
    named_topology,
    warn_reference_matcher,
)
from repro.summary.precision import Precision
from repro.wire.codec import ValueWidth
from repro.workload.stocks import StockWorkload

__all__ = ["LocalCluster", "main"]


class LocalCluster:
    """Every broker of one topology, live on localhost ports."""

    def __init__(
        self,
        topology: Topology,
        schema: Schema,
        *,
        precision: Precision = Precision.COARSE,
        value_width: ValueWidth = ValueWidth.F64,
        matcher: str = "compiled",
        match_cache_size: int = DEFAULT_MATCH_CACHE,
        propagation_policy: TargetPolicy = TargetPolicy.HIGHEST_DEGREE,
        propagation_mode: str = "delta",
        suppress_covered: bool = True,
        queue_frames: int = DEFAULT_QUEUE_FRAMES,
        batch_frames: int = DEFAULT_BATCH_FRAMES,
        period_interval: Optional[float] = None,
        snapshot_dir: Optional[str] = None,
        host: str = "127.0.0.1",
        tracer=None,
        paranoid: Optional[bool] = None,
        shards: Union[int, None, Dict[int, int]] = None,
    ):
        self.topology = topology
        self.schema = schema
        self.host = host
        self.snapshot_dir = Path(snapshot_dir) if snapshot_dir is not None else None
        #: ``shards``: None/1 boots plain single-process runtimes; an int
        #: boots every broker as a :class:`ShardedBrokerRuntime` with that
        #: many workers; a ``{broker_id: n}`` mapping shards only the named
        #: brokers (n > 1).  Preserved across ``restart_broker`` — a
        #: restarted sharded broker comes back sharded.
        if isinstance(shards, dict):
            self._shards = dict(shards)
        elif shards is None or shards <= 1:
            self._shards = {}
        else:
            self._shards = {broker_id: shards for broker_id in topology.brokers}
        self._runtime_options = dict(
            precision=precision,
            value_width=value_width,
            matcher=matcher,
            match_cache_size=match_cache_size,
            propagation_policy=propagation_policy,
            propagation_mode=propagation_mode,
            suppress_covered=suppress_covered,
            queue_frames=queue_frames,
            batch_frames=batch_frames,
            period_interval=period_interval,
            snapshot_dir=snapshot_dir,
            host=host,
            tracer=tracer,
            paranoid=paranoid,
        )
        # All runtimes live in this process, so they share one message
        # codec: the codec's event/frame memo caches then dedupe encode
        # and decode work across hops (a real multi-process deployment
        # keeps per-process codecs and per-process caches).
        self.runtimes: Dict[int, BrokerRuntime] = {}
        self._shared_codec = None
        for broker_id in topology.brokers:
            runtime = self._build_runtime(broker_id)
            if self._shared_codec is None:
                self._shared_codec = runtime.message_codec
            self.runtimes[broker_id] = runtime
        self.addresses: Dict[int, Tuple[str, int]] = {}
        self._producers: List[ProducerSession] = []
        self._subscribers: List[SubscriberSession] = []
        self._sessions_by_broker: Dict[int, List] = {}
        self._started = False
        # Chaos bookkeeping: counters of killed incarnations are folded
        # into this ledger so cluster-wide quiesce arithmetic stays exact
        # across kills, and the first quiesce after a kill/restart rebases
        # on observed stability (a crash mid-pipeline loses frames nobody
        # can account for frame-by-frame).
        self._ledger_enqueued = 0
        self._ledger_processed = 0
        self._quiesce_bias = 0
        self._chaos_dirty = False

    def _build_runtime(self, broker_id: int, epoch: Optional[int] = None) -> BrokerRuntime:
        """One broker runtime, sharded when the config says so (the spawn
        cost is paid at ``start``, not here)."""
        shards = self._shards.get(broker_id, 1)
        if shards > 1:
            from repro.runtime.sharded import ShardedBrokerRuntime

            return ShardedBrokerRuntime(
                broker_id,
                self.topology,
                self.schema,
                message_codec=self._shared_codec,
                epoch=epoch,
                shards=shards,
                **self._runtime_options,
            )
        return BrokerRuntime(
            broker_id,
            self.topology,
            self.schema,
            message_codec=self._shared_codec,
            epoch=epoch,
            **self._runtime_options,
        )

    # -- lifecycle -------------------------------------------------------------

    async def start(self, restore_from: Optional[str] = None) -> Dict[int, Tuple[str, int]]:
        """Bind every broker, exchange addresses; optionally restore all
        broker state from a drained cluster's snapshot directory first.
        Returns the address map."""
        if self._started:
            raise RuntimeError("cluster already started")
        if restore_from is not None:
            self._restore(Path(restore_from))
        for broker_id, runtime in sorted(self.runtimes.items()):
            port = await runtime.start(0)
            self.addresses[broker_id] = (self.host, port)
        for runtime in self.runtimes.values():
            runtime.set_peers(self.addresses)
        self._started = True
        return dict(self.addresses)

    def _restore(self, source: Path) -> None:
        """Load one drained snapshot per broker (same stray/missing rules
        as :func:`~repro.broker.persistence.load_system`)."""
        expected = {snapshot_path(source, b).name for b in self.topology.brokers}
        strays = sorted(
            p.name for p in source.glob("broker-*.snap") if p.name not in expected
        )
        if strays:
            raise ValueError(
                f"snapshot directory {source} holds snapshots for brokers not "
                f"in this topology ({', '.join(strays)}); refusing to "
                f"half-restore a mismatched deployment"
            )
        for broker_id, runtime in sorted(self.runtimes.items()):
            path = snapshot_path(source, broker_id)
            if not path.exists():
                raise FileNotFoundError(
                    f"missing snapshot for broker {broker_id}: {path}"
                )
            SnapshotCodec(runtime.wire).restore_broker(
                path.read_bytes(), runtime.broker
            )

    async def stop(self, drain: bool = True) -> List[Path]:
        """Close client sessions, then shut every broker down (with
        ``drain``: flush + snapshot when a ``snapshot_dir`` was given).
        Returns the snapshot paths written."""
        for session in self._producers + self._subscribers:
            await session.close()
        self._producers.clear()
        self._subscribers.clear()
        self._sessions_by_broker.clear()
        written = await asyncio.gather(
            *(runtime.shutdown(drain=drain) for runtime in self.runtimes.values())
        )
        return [path for path in written if path is not None]

    # -- client sessions -------------------------------------------------------

    async def producer(self, broker_id: int) -> ProducerSession:
        host, port = self.addresses[broker_id]
        session = await ProducerSession.connect(
            host, port, self.runtimes[broker_id].message_codec
        )
        self._producers.append(session)
        self._sessions_by_broker.setdefault(broker_id, []).append(session)
        return session

    async def subscriber(self, broker_id: int) -> SubscriberSession:
        host, port = self.addresses[broker_id]
        session = await SubscriberSession.connect(
            host, port, self.runtimes[broker_id].message_codec
        )
        self._subscribers.append(session)
        self._sessions_by_broker.setdefault(broker_id, []).append(session)
        return session

    # -- chaos lifecycle -------------------------------------------------------

    async def kill_broker(self, broker_id: int) -> BrokerRuntime:
        """Abruptly crash one broker — no drain, sockets torn mid-frame.

        The dead incarnation's frame counters are folded into the cluster
        ledger (quiesce arithmetic must keep seeing them), its client
        sessions are closed and forgotten, and the stale address entry is
        deliberately *kept*: neighbours go on dialling the dead port, which
        is exactly the failure the reconnect/reroute machinery must absorb.
        Returns the killed runtime — its engine objects (``broker
        .deliveries`` above all) survive for post-mortem accounting.
        """
        runtime = self.runtimes.pop(broker_id)
        for session in self._sessions_by_broker.pop(broker_id, []):
            try:
                await session.close()
            except (ConnectionError, OSError):
                pass
            if session in self._producers:
                self._producers.remove(session)
            if session in self._subscribers:
                self._subscribers.remove(session)
        await runtime.kill()
        self._ledger_enqueued += runtime.frames_enqueued - runtime.frames_dropped
        self._ledger_processed += runtime.frames_processed
        self._chaos_dirty = True
        return runtime

    async def snapshot_broker(self, broker_id: int, directory=None) -> Path:
        """Persist one live broker's state (the chaos harness' stand-in
        for a periodic snapshotter having just run before a crash)."""
        from repro.broker.persistence import save_broker

        target = Path(directory) if directory is not None else self.snapshot_dir
        if target is None:
            raise ValueError("no snapshot directory (pass one or set snapshot_dir)")
        runtime = self.runtimes[broker_id]
        return save_broker(runtime.broker, target, runtime.wire)

    async def restart_broker(
        self,
        broker_id: int,
        *,
        restore_from=None,
        epoch: Optional[int] = None,
    ) -> BrokerRuntime:
        """Boot a fresh incarnation of a killed broker on a *new* port.

        ``restore_from`` warm-starts it from ``broker-<id>.snap`` in that
        directory; otherwise it cold-rejoins empty.  Either way the updated
        address map is re-published to every runtime so existing peer lanes
        re-point at the new port (see ``PeerLink.update_address``).  The
        epoch defaults to the process-wide allocator, which never reissues
        a prior incarnation's value — cold rejoins must not re-mint publish
        ids surviving dedup tables have already seen.
        """
        if broker_id in self.runtimes:
            raise RuntimeError(f"broker {broker_id} is still running")
        runtime = self._build_runtime(broker_id, epoch=epoch)
        if restore_from is not None:
            path = snapshot_path(Path(restore_from), broker_id)
            SnapshotCodec(runtime.wire).restore_broker(path.read_bytes(), runtime.broker)
            # The snapshot is authoritative for this broker's OWN state
            # (store, sid watermark) but its remote knowledge is frozen at
            # snapshot time: ``merged_brokers`` claims coverage of churn
            # that happened while the broker was down, without the rows to
            # back it.  Serving that overclaim to a neighbor's fallback
            # SummaryRequest would poison the neighbor's (monotone) claim
            # set and terminate later event searches before the owner is
            # found.  Rejoin with own-rows-only truth; the delta-chain
            # fallbacks re-derive remote knowledge from live neighbors.
            runtime.broker.reset_merged_state()
            # The reset closed the runtime's always-open period scratch;
            # reopen it so peer frames can be absorbed immediately.
            runtime._open_period()
        port = await runtime.start(0)
        self.runtimes[broker_id] = runtime
        self.addresses[broker_id] = (self.host, port)
        for peer in self.runtimes.values():
            peer.set_peers(self.addresses)
        self._chaos_dirty = True
        return runtime

    # -- coordination ----------------------------------------------------------

    def _frame_totals(self) -> Tuple[int, int]:
        enqueued = self._ledger_enqueued + sum(
            r.frames_enqueued - r.frames_dropped for r in self.runtimes.values()
        )
        processed = self._ledger_processed + sum(
            r.frames_processed for r in self.runtimes.values()
        )
        return enqueued, processed

    async def quiesce(self, timeout: float = 30.0) -> None:
        """Return when no broker-to-broker frame is anywhere in flight.

        A frame counts as *enqueued* when a broker puts it on a peer
        queue and *processed* when the receiver has dispatched it AND
        pumped its downstream sends onto queues — so cluster-wide
        equality (minus frames dropped on dead links) means every
        consequence of every send has itself been sent, i.e. true
        quiescence.  Checked stable across two polls to dodge the one
        instant a handler sits between its pump and its counter bump.

        After a kill or restart the strict identity cannot hold: frames
        can die unaccounted mid-crash (written to a socket whose reader
        was cancelled, accepted by a server that never dispatched them).
        The first quiesce after such an event therefore waits for the
        totals to stop *moving* (a longer stability window) and rebases
        the residual imbalance into ``_quiesce_bias``; strict arithmetic
        resumes from that baseline.
        """
        if self._chaos_dirty:
            await self._quiesce_rebase(timeout)
            return
        deadline = asyncio.get_running_loop().time() + timeout
        stable = 0
        while stable < 2:
            enqueued, processed = self._frame_totals()
            stable = stable + 1 if enqueued - self._quiesce_bias == processed else 0
            if stable < 2:
                if asyncio.get_running_loop().time() > deadline:
                    raise asyncio.TimeoutError(
                        f"cluster did not quiesce within {timeout}s "
                        f"(enqueued={enqueued}, bias={self._quiesce_bias}, "
                        f"processed={processed})"
                    )
                await asyncio.sleep(0.01)

    async def _quiesce_rebase(self, timeout: float) -> None:
        deadline = asyncio.get_running_loop().time() + timeout
        previous, stable = None, 0
        while stable < 5:
            totals = self._frame_totals()
            stable = stable + 1 if totals == previous else 0
            previous = totals
            if stable < 5:
                if asyncio.get_running_loop().time() > deadline:
                    raise asyncio.TimeoutError(
                        f"cluster did not stabilise after chaos within {timeout}s "
                        f"(totals={totals})"
                    )
                await asyncio.sleep(0.02)
        enqueued, processed = previous
        self._quiesce_bias = enqueued - processed
        self._chaos_dirty = False

    async def run_propagation_period(self) -> None:
        """One coordinated Algorithm-2 period, exactly as the simulator's
        :class:`~repro.broker.propagation.PropagationEngine` runs it:
        degree class ``i`` acts at iteration ``i``, and a quiesce barrier
        stands in for the simulator's per-iteration message flush.  Killed
        brokers simply miss their slot (their neighbours' frames to them
        are dropped and counted by the link layer)."""
        for iteration in range(1, self.topology.max_degree + 1):
            for broker_id in self.topology.brokers_by_degree(iteration):
                runtime = self.runtimes.get(broker_id)
                if runtime is not None:
                    await runtime.period_act()
            await self.quiesce()
        for broker_id in sorted(self.runtimes):
            self.runtimes[broker_id].period_close()

    async def settle(self) -> None:
        """Drain the whole pipeline: producer flushes (brokers ingested
        every publish), quiesce (all broker-to-broker routing finished),
        subscriber flushes (every queued NOTIFY delivered and recorded)."""
        for session in self._producers:
            await session.flush()
        await self.quiesce()
        for session in self._subscribers:
            await session.flush()

    # -- observability ---------------------------------------------------------

    def metrics(self) -> NetworkMetrics:
        """All brokers' traffic ledgers merged into one."""
        merged = NetworkMetrics()
        for runtime in self.runtimes.values():
            merged.merge(runtime.metrics)
        return merged

    def total_deliveries(self) -> int:
        return sum(len(r.broker.deliveries) for r in self.runtimes.values())

    def __repr__(self) -> str:
        state = "started" if self._started else "cold"
        return (
            f"LocalCluster({self.topology.num_brokers} brokers, {state}, "
            f"{len(self._subscribers)} subscribers)"
        )


# -- CLI ------------------------------------------------------------------------


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-cluster",
        description="Boot a live broker overlay on localhost and drive a "
                    "seeded stock workload through it.",
    )
    parser.add_argument("--topology", default="cw24",
                        help="cw24 | tree13 | line<N> | star<N> | scalefree<N>")
    parser.add_argument("--subscriptions", type=int, default=4,
                        help="subscriptions per broker")
    parser.add_argument("--events", type=int, default=50,
                        help="events to publish (round-robin over brokers)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--matcher", choices=("reference", "compiled"),
                        default="compiled",
                        help="event-matching engine (default: compiled — the "
                             "batched fast path; 'reference' is deprecated on "
                             "the live path and kept for debugging)")
    parser.add_argument("--snapshot-dir", default=None,
                        help="drain every broker to snapshots on exit")
    parser.add_argument("--propagation-mode", choices=("delta", "full"),
                        default="delta",
                        help="summary propagation frames (default: delta — "
                             "incremental SUMMARY_DELTA with generation "
                             "chaining; 'full' re-ships whole summaries)")
    parser.add_argument("--paranoid", action="store_true")
    parser.add_argument("--shards", type=int, default=1,
                        help="worker processes per broker for the match hot "
                             "path (1 = single-process brokers)")
    return parser


async def _demo(args: argparse.Namespace) -> None:
    topology = named_topology(args.topology)
    workload = StockWorkload(seed=args.seed)
    cluster = LocalCluster(
        topology,
        workload.schema,
        matcher=args.matcher,
        snapshot_dir=args.snapshot_dir,
        propagation_mode=args.propagation_mode,
        paranoid=True if args.paranoid else None,
        shards=args.shards,
    )
    await cluster.start()
    print(f"cluster up: {topology!r}", flush=True)

    for broker_id in topology.brokers:
        subscriber = await cluster.subscriber(broker_id)
        for _ in range(args.subscriptions):
            await subscriber.subscribe(workload.subscription())
    await cluster.run_propagation_period()
    print(
        f"registered {args.subscriptions * topology.num_brokers} subscriptions, "
        f"ran one propagation period",
        flush=True,
    )

    producers = [await cluster.producer(b) for b in topology.brokers]
    for index in range(args.events):
        await producers[index % len(producers)].publish(workload.tick())
    await cluster.settle()

    metrics = cluster.metrics()
    notified = sum(len(s.deliveries) for s in cluster._subscribers)
    print(
        f"published {args.events} events -> {notified} notifications "
        f"({cluster.total_deliveries()} broker-side deliveries)",
        flush=True,
    )
    print(
        f"traffic: {metrics.messages} messages, {metrics.bytes_sent} bytes "
        f"(charged x path length), {metrics.backpressure_stalls} stalls",
        flush=True,
    )
    written = await cluster.stop(drain=True)
    if written:
        print(f"drained {len(written)} snapshots to {args.snapshot_dir}", flush=True)


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.matcher == "reference":
        warn_reference_matcher("repro-cluster")
    maybe_enable_uvloop()
    asyncio.run(_demo(args))
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
