"""Boot a whole overlay of live brokers on localhost.

:class:`LocalCluster` creates one :class:`~repro.runtime.server
.BrokerRuntime` per topology node (all in the current event loop), binds
each to an ephemeral port, and exchanges the address map — the live
equivalent of constructing a :class:`~repro.broker.system.SummaryPubSub`.
It adds the coordination the paper's round-based algorithms assume:

* :meth:`quiesce` — wait until no broker-to-broker frame is queued,
  in flight, or mid-dispatch anywhere (cluster-wide
  ``frames_enqueued == frames_processed``, stable across polls).
* :meth:`run_propagation_period` — Algorithm 2 exactly: brokers act in
  ascending degree order with a quiesce barrier between iterations (the
  live analogue of the simulator's ``flush_iteration``), then every
  broker folds its delta.  Same code path
  (:func:`~repro.broker.propagation.select_period_target`) as the
  simulator, so both substrates pick identical targets.
* :meth:`settle` — producer flushes + quiesce + subscriber flushes: after
  it returns, every published event has fully routed and every resulting
  notification is in the subscribers' ``deliveries`` lists.

``repro-cluster`` (see :func:`main`) is the CLI smoke path: boot a named
topology, drive a seeded stock workload through real sockets, print the
traffic/delivery summary, optionally drain to snapshots.
"""

from __future__ import annotations

import argparse
import asyncio
import sys
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.broker.persistence import SnapshotCodec, snapshot_path
from repro.broker.propagation import TargetPolicy
from repro.model.schema import Schema, stock_schema
from repro.network.metrics import NetworkMetrics
from repro.network.topology import Topology
from repro.runtime.client import ProducerSession, SubscriberSession
from repro.runtime.server import (
    DEFAULT_BATCH_FRAMES,
    DEFAULT_MATCH_CACHE,
    DEFAULT_QUEUE_FRAMES,
    BrokerRuntime,
    maybe_enable_uvloop,
    named_topology,
    warn_reference_matcher,
)
from repro.summary.precision import Precision
from repro.wire.codec import ValueWidth
from repro.workload.stocks import StockWorkload

__all__ = ["LocalCluster", "main"]


class LocalCluster:
    """Every broker of one topology, live on localhost ports."""

    def __init__(
        self,
        topology: Topology,
        schema: Schema,
        *,
        precision: Precision = Precision.COARSE,
        value_width: ValueWidth = ValueWidth.F64,
        matcher: str = "compiled",
        match_cache_size: int = DEFAULT_MATCH_CACHE,
        propagation_policy: TargetPolicy = TargetPolicy.HIGHEST_DEGREE,
        propagation_mode: str = "delta",
        suppress_covered: bool = True,
        queue_frames: int = DEFAULT_QUEUE_FRAMES,
        batch_frames: int = DEFAULT_BATCH_FRAMES,
        period_interval: Optional[float] = None,
        snapshot_dir: Optional[str] = None,
        host: str = "127.0.0.1",
        tracer=None,
        paranoid: Optional[bool] = None,
    ):
        self.topology = topology
        self.schema = schema
        self.host = host
        self.snapshot_dir = Path(snapshot_dir) if snapshot_dir is not None else None
        # All runtimes live in this process, so they share one message
        # codec: the codec's event/frame memo caches then dedupe encode
        # and decode work across hops (a real multi-process deployment
        # keeps per-process codecs and per-process caches).
        self.runtimes: Dict[int, BrokerRuntime] = {}
        shared_codec = None
        for broker_id in topology.brokers:
            runtime = BrokerRuntime(
                broker_id,
                topology,
                schema,
                precision=precision,
                value_width=value_width,
                matcher=matcher,
                match_cache_size=match_cache_size,
                propagation_policy=propagation_policy,
                propagation_mode=propagation_mode,
                suppress_covered=suppress_covered,
                queue_frames=queue_frames,
                batch_frames=batch_frames,
                period_interval=period_interval,
                snapshot_dir=snapshot_dir,
                host=host,
                tracer=tracer,
                paranoid=paranoid,
                message_codec=shared_codec,
            )
            if shared_codec is None:
                shared_codec = runtime.message_codec
            self.runtimes[broker_id] = runtime
        self.addresses: Dict[int, Tuple[str, int]] = {}
        self._producers: List[ProducerSession] = []
        self._subscribers: List[SubscriberSession] = []
        self._started = False

    # -- lifecycle -------------------------------------------------------------

    async def start(self, restore_from: Optional[str] = None) -> Dict[int, Tuple[str, int]]:
        """Bind every broker, exchange addresses; optionally restore all
        broker state from a drained cluster's snapshot directory first.
        Returns the address map."""
        if self._started:
            raise RuntimeError("cluster already started")
        if restore_from is not None:
            self._restore(Path(restore_from))
        for broker_id, runtime in sorted(self.runtimes.items()):
            port = await runtime.start(0)
            self.addresses[broker_id] = (self.host, port)
        for runtime in self.runtimes.values():
            runtime.set_peers(self.addresses)
        self._started = True
        return dict(self.addresses)

    def _restore(self, source: Path) -> None:
        """Load one drained snapshot per broker (same stray/missing rules
        as :func:`~repro.broker.persistence.load_system`)."""
        expected = {snapshot_path(source, b).name for b in self.topology.brokers}
        strays = sorted(
            p.name for p in source.glob("broker-*.snap") if p.name not in expected
        )
        if strays:
            raise ValueError(
                f"snapshot directory {source} holds snapshots for brokers not "
                f"in this topology ({', '.join(strays)}); refusing to "
                f"half-restore a mismatched deployment"
            )
        for broker_id, runtime in sorted(self.runtimes.items()):
            path = snapshot_path(source, broker_id)
            if not path.exists():
                raise FileNotFoundError(
                    f"missing snapshot for broker {broker_id}: {path}"
                )
            SnapshotCodec(runtime.wire).restore_broker(
                path.read_bytes(), runtime.broker
            )

    async def stop(self, drain: bool = True) -> List[Path]:
        """Close client sessions, then shut every broker down (with
        ``drain``: flush + snapshot when a ``snapshot_dir`` was given).
        Returns the snapshot paths written."""
        for session in self._producers + self._subscribers:
            await session.close()
        self._producers.clear()
        self._subscribers.clear()
        written = await asyncio.gather(
            *(runtime.shutdown(drain=drain) for runtime in self.runtimes.values())
        )
        return [path for path in written if path is not None]

    # -- client sessions -------------------------------------------------------

    async def producer(self, broker_id: int) -> ProducerSession:
        host, port = self.addresses[broker_id]
        session = await ProducerSession.connect(
            host, port, self.runtimes[broker_id].message_codec
        )
        self._producers.append(session)
        return session

    async def subscriber(self, broker_id: int) -> SubscriberSession:
        host, port = self.addresses[broker_id]
        session = await SubscriberSession.connect(
            host, port, self.runtimes[broker_id].message_codec
        )
        self._subscribers.append(session)
        return session

    # -- coordination ----------------------------------------------------------

    async def quiesce(self, timeout: float = 30.0) -> None:
        """Return when no broker-to-broker frame is anywhere in flight.

        A frame counts as *enqueued* when a broker puts it on a peer
        queue and *processed* when the receiver has dispatched it AND
        pumped its downstream sends onto queues — so cluster-wide
        equality (minus frames dropped on dead links) means every
        consequence of every send has itself been sent, i.e. true
        quiescence.  Checked stable across two polls to dodge the one
        instant a handler sits between its pump and its counter bump.
        """
        deadline = asyncio.get_running_loop().time() + timeout
        stable = 0
        while stable < 2:
            enqueued = sum(
                r.frames_enqueued - r.frames_dropped for r in self.runtimes.values()
            )
            processed = sum(r.frames_processed for r in self.runtimes.values())
            stable = stable + 1 if enqueued == processed else 0
            if stable < 2:
                if asyncio.get_running_loop().time() > deadline:
                    raise asyncio.TimeoutError(
                        f"cluster did not quiesce within {timeout}s "
                        f"(enqueued={enqueued}, processed={processed})"
                    )
                await asyncio.sleep(0.01)

    async def run_propagation_period(self) -> None:
        """One coordinated Algorithm-2 period, exactly as the simulator's
        :class:`~repro.broker.propagation.PropagationEngine` runs it:
        degree class ``i`` acts at iteration ``i``, and a quiesce barrier
        stands in for the simulator's per-iteration message flush."""
        for iteration in range(1, self.topology.max_degree + 1):
            for broker_id in self.topology.brokers_by_degree(iteration):
                await self.runtimes[broker_id].period_act()
            await self.quiesce()
        for broker_id in sorted(self.runtimes):
            self.runtimes[broker_id].period_close()

    async def settle(self) -> None:
        """Drain the whole pipeline: producer flushes (brokers ingested
        every publish), quiesce (all broker-to-broker routing finished),
        subscriber flushes (every queued NOTIFY delivered and recorded)."""
        for session in self._producers:
            await session.flush()
        await self.quiesce()
        for session in self._subscribers:
            await session.flush()

    # -- observability ---------------------------------------------------------

    def metrics(self) -> NetworkMetrics:
        """All brokers' traffic ledgers merged into one."""
        merged = NetworkMetrics()
        for runtime in self.runtimes.values():
            merged.merge(runtime.metrics)
        return merged

    def total_deliveries(self) -> int:
        return sum(len(r.broker.deliveries) for r in self.runtimes.values())

    def __repr__(self) -> str:
        state = "started" if self._started else "cold"
        return (
            f"LocalCluster({self.topology.num_brokers} brokers, {state}, "
            f"{len(self._subscribers)} subscribers)"
        )


# -- CLI ------------------------------------------------------------------------


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-cluster",
        description="Boot a live broker overlay on localhost and drive a "
                    "seeded stock workload through it.",
    )
    parser.add_argument("--topology", default="cw24",
                        help="cw24 | tree13 | line<N> | star<N> | scalefree<N>")
    parser.add_argument("--subscriptions", type=int, default=4,
                        help="subscriptions per broker")
    parser.add_argument("--events", type=int, default=50,
                        help="events to publish (round-robin over brokers)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--matcher", choices=("reference", "compiled"),
                        default="compiled",
                        help="event-matching engine (default: compiled — the "
                             "batched fast path; 'reference' is deprecated on "
                             "the live path and kept for debugging)")
    parser.add_argument("--snapshot-dir", default=None,
                        help="drain every broker to snapshots on exit")
    parser.add_argument("--propagation-mode", choices=("delta", "full"),
                        default="delta",
                        help="summary propagation frames (default: delta — "
                             "incremental SUMMARY_DELTA with generation "
                             "chaining; 'full' re-ships whole summaries)")
    parser.add_argument("--paranoid", action="store_true")
    return parser


async def _demo(args: argparse.Namespace) -> None:
    topology = named_topology(args.topology)
    workload = StockWorkload(seed=args.seed)
    cluster = LocalCluster(
        topology,
        workload.schema,
        matcher=args.matcher,
        snapshot_dir=args.snapshot_dir,
        propagation_mode=args.propagation_mode,
        paranoid=True if args.paranoid else None,
    )
    await cluster.start()
    print(f"cluster up: {topology!r}", flush=True)

    for broker_id in topology.brokers:
        subscriber = await cluster.subscriber(broker_id)
        for _ in range(args.subscriptions):
            await subscriber.subscribe(workload.subscription())
    await cluster.run_propagation_period()
    print(
        f"registered {args.subscriptions * topology.num_brokers} subscriptions, "
        f"ran one propagation period",
        flush=True,
    )

    producers = [await cluster.producer(b) for b in topology.brokers]
    for index in range(args.events):
        await producers[index % len(producers)].publish(workload.tick())
    await cluster.settle()

    metrics = cluster.metrics()
    notified = sum(len(s.deliveries) for s in cluster._subscribers)
    print(
        f"published {args.events} events -> {notified} notifications "
        f"({cluster.total_deliveries()} broker-side deliveries)",
        flush=True,
    )
    print(
        f"traffic: {metrics.messages} messages, {metrics.bytes_sent} bytes "
        f"(charged x path length), {metrics.backpressure_stalls} stalls",
        flush=True,
    )
    written = await cluster.stop(drain=True)
    if written:
        print(f"drained {len(written)} snapshots to {args.snapshot_dir}", flush=True)


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.matcher == "reference":
        warn_reference_matcher("repro-cluster")
    maybe_enable_uvloop()
    asyncio.run(_demo(args))
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
