"""Chaos driving for the live cluster: kills, rejoins, flaps, scenarios.

Two layers:

:class:`ChaosController`
    imperative fault primitives against a running
    :class:`~repro.runtime.cluster.LocalCluster` — abrupt broker kill (no
    drain, sockets torn mid-frame), restart-from-snapshot or cold rejoin
    on a fresh port, and link flaps that sever both directed TCP lanes of
    one overlay edge.  Usable directly from tests that want hand-rolled
    fault timelines.

:func:`run_scenario_live`
    the live twin of :func:`repro.workload.scenarios.run_scenario_sim`:
    executes a compiled :class:`~repro.workload.scenarios.ScenarioScript`
    — including its declarative chaos schedule — against a real cluster
    and returns a :class:`~repro.workload.scenarios.ScenarioOutcome`
    gated on the churn-aware oracle (``honor_chaos=True``).

Delivery accounting across incarnations deserves a note.  Broker-side
``broker.deliveries`` is the consumer hand-off ledger; when an incarnation
is killed, its ledger is translated to ``(publish_serial, sub_serial)``
pairs *at kill time*, using the sid map as of that incarnation — a later
cold restart resets the broker's local-sid allocator, so raw sids are only
meaningful per incarnation.  Warm restores keep both the sids and the
allocator watermark (snapshots persist ``next_local_id``), so the map
survives; cold restarts purge the dead broker's entries before any new
subscription can re-mint an old sid.  A pair landing twice across any
incarnation is a duplicate consumer delivery — the chaos gate requires
zero.
"""

from __future__ import annotations

import asyncio
import tempfile
from pathlib import Path
from typing import Dict, Optional, Set, Tuple

from repro.model.ids import SubscriptionId
from repro.runtime.client import ProducerSession, SubscriberSession
from repro.runtime.cluster import LocalCluster
from repro.workload.scenarios import (
    ChaosEvent,
    ScenarioConfig,
    ScenarioOutcome,
    build_script,
    expected_deliveries,
)

__all__ = ["ChaosController", "run_scenario_live"]


class ChaosController:
    """Fault primitives for one live cluster.

    Thin on purpose: the cluster owns the lifecycle bookkeeping (ledger
    folding, address re-publication, dirty-quiesce flagging); this class
    just sequences the fault and remembers where snapshots live.
    """

    def __init__(self, cluster: LocalCluster, snapshot_dir: Optional[Path] = None):
        self.cluster = cluster
        self.snapshot_dir = Path(snapshot_dir) if snapshot_dir else cluster.snapshot_dir
        #: killed incarnations, newest last, for post-mortem accounting.
        self.killed: Dict[int, list] = {}

    async def kill(self, broker_id: int, *, snapshot: bool = False):
        """Abrupt crash; with ``snapshot``, persist state just before it
        (modelling a periodic snapshotter that had recently run)."""
        if snapshot:
            await self.cluster.snapshot_broker(broker_id, self.snapshot_dir)
        runtime = await self.cluster.kill_broker(broker_id)
        self.killed.setdefault(broker_id, []).append(runtime)
        return runtime

    async def restart(self, broker_id: int, *, restore: bool = False,
                      epoch: Optional[int] = None):
        """Fresh incarnation on a new port; ``restore`` warm-starts it
        from this controller's snapshot directory."""
        return await self.cluster.restart_broker(
            broker_id,
            restore_from=self.snapshot_dir if restore else None,
            epoch=epoch,
        )

    async def flap_link(self, a: int, b: int) -> None:
        """Sever both directed TCP lanes of edge ``a``–``b``.

        The lazy writers redial on their next frame; a batch caught
        mid-write is dropped-and-counted and its EVENTs rerouted, exactly
        like a momentary switch reboot between two brokers.
        """
        for src, dst in ((a, b), (b, a)):
            runtime = self.cluster.runtimes.get(src)
            link = runtime._links.get(dst) if runtime is not None else None
            if link is not None and link._conn is not None:
                await link._conn.close()
                link._conn = None
        # A frame already flushed into a socket we just tore may still be
        # processed by the peer (or half of it may be) — rebase the
        # quiesce arithmetic instead of trusting strict identity.
        self.cluster._chaos_dirty = True

    async def execute(self, event: ChaosEvent) -> None:
        """Run one declarative schedule entry."""
        if event.action == "kill":
            await self.kill(event.broker, snapshot=event.snapshot)
        elif event.action == "restart":
            await self.restart(event.broker, restore=event.restore)
        elif event.action == "flap":
            await self.flap_link(event.broker, event.peer)
        else:
            raise ValueError(f"unknown chaos action {event.action!r}")


async def _drive_scenario_live(
    config: ScenarioConfig, snapshot_dir: Path, **cluster_options
) -> ScenarioOutcome:
    script = build_script(config)
    cluster = LocalCluster(script.topology, script.schema, **cluster_options)
    controller = ChaosController(cluster, snapshot_dir)
    event_serial = {pub.event: pub.serial for pub in script.pubs}
    sid_by_serial: Dict[int, SubscriptionId] = {}
    serial_by_sid: Dict[Tuple[int, SubscriptionId], int] = {}
    achieved: Set[Tuple[int, int]] = set()
    duplicates = 0
    producers: Dict[int, ProducerSession] = {}
    subscribers: Dict[int, SubscriberSession] = {}

    def absorb(broker_id: int, runtime) -> None:
        """Fold one incarnation's delivery ledger into the outcome."""
        nonlocal duplicates
        for sid, event in runtime.broker.deliveries:
            key = (event_serial[event], serial_by_sid[(broker_id, sid)])
            if key in achieved:
                duplicates += 1
            else:
                achieved.add(key)

    async def get_subscriber(broker_id: int) -> SubscriberSession:
        session = subscribers.get(broker_id)
        if session is None:
            session = subscribers[broker_id] = await cluster.subscriber(broker_id)
        return session

    async def get_producer(broker_id: int) -> ProducerSession:
        session = producers.get(broker_id)
        if session is None:
            session = producers[broker_id] = await cluster.producer(broker_id)
        return session

    await cluster.start()
    try:
        for step in script.steps:
            for event in step.chaos:
                if event.action == "kill":
                    # Quiet the pipeline first: scenario-scheduled kills are
                    # deterministic (no publish in flight dies with the
                    # broker); the mid-traffic variant lives in the tests.
                    await cluster.quiesce()
                    dead = await controller.kill(event.broker, snapshot=event.snapshot)
                    absorb(event.broker, dead)
                    producers.pop(event.broker, None)
                    subscribers.pop(event.broker, None)
                elif event.action == "restart":
                    if not event.restore:
                        # Cold rejoin resets the sid allocator; stale map
                        # entries would alias the re-minted sids.
                        for key in [k for k in serial_by_sid if k[0] == event.broker]:
                            del serial_by_sid[key]
                    await controller.restart(event.broker, restore=event.restore)
                else:
                    await controller.execute(event)
            for op in step.churn:
                if op.skipped:
                    continue
                record = script.subs[op.serial]
                session = await get_subscriber(record.broker)
                if op.kind == "subscribe":
                    sid = await session.subscribe(record.subscription)
                    sid_by_serial[op.serial] = sid
                    serial_by_sid[(record.broker, sid)] = op.serial
                else:
                    await session.unsubscribe(sid_by_serial[op.serial])
            await cluster.run_propagation_period()
            for pub in step.publishes:
                await (await get_producer(pub.broker)).publish(pub.event)
            await cluster.settle()

        for broker_id, runtime in sorted(cluster.runtimes.items()):
            absorb(broker_id, runtime)
        # Session-side double check: no subscriber connection saw the same
        # (sid, event) notification twice either.
        for session in cluster._subscribers:
            seen: Set[Tuple[SubscriptionId, object]] = set()
            for sid, event in session.deliveries:
                if (sid, event) in seen:
                    duplicates += 1
                seen.add((sid, event))
        enqueued, processed = cluster._frame_totals()
        frames_balance = (enqueued - cluster._quiesce_bias, processed)
        from repro.analysis.report import build_cluster_report

        report = build_cluster_report(cluster)
        survivors = list(cluster.runtimes.values())
        retired = [r for incarnations in controller.killed.values() for r in incarnations]
        live_metrics = {
            "fallback_requests": sum(r.fallback_requests for r in survivors + retired),
            "fallback_replies": sum(r.fallback_replies for r in survivors + retired),
            "event_reroutes": sum(
                getattr(r.router, "event_reroutes", 0) for r in survivors + retired
            ),
            "frames_dropped": sum(
                r.frames_dropped for r in survivors + retired
            ),
        }
    finally:
        await cluster.stop(drain=False)

    return ScenarioOutcome(
        scenario=config.name,
        substrate="live",
        expected=expected_deliveries(script, honor_chaos=True),
        achieved=achieved,
        duplicates=duplicates,
        publishes=len(script.pubs),
        churn_ops=script.churn_ops,
        skipped_ops=script.skipped_ops,
        report=report,
        frames_balance=frames_balance,
        metrics=live_metrics,
    )


def run_scenario_live(
    config: ScenarioConfig,
    *,
    snapshot_dir: Optional[str] = None,
    **cluster_options,
) -> ScenarioOutcome:
    """Execute one scenario config against a real ``LocalCluster``.

    Synchronous wrapper (owns its event loop).  ``snapshot_dir`` is where
    chaos snapshots land; a temporary directory is used when omitted.
    Extra keyword arguments go to the ``LocalCluster`` constructor.
    """

    async def body(directory: Path) -> ScenarioOutcome:
        return await _drive_scenario_live(config, directory, **cluster_options)

    if snapshot_dir is not None:
        return asyncio.run(body(Path(snapshot_dir)))
    with tempfile.TemporaryDirectory(prefix="repro-chaos-") as tmp:
        return asyncio.run(body(Path(tmp)))
