"""One live broker process: a :class:`SummaryBroker` behind a TCP server.

:class:`BrokerRuntime` hosts exactly one broker of the overlay and speaks
the frame protocol of :mod:`repro.runtime.framing` on every connection.
The first frame of a connection is a :class:`~repro.wire.messages
.HelloMessage` naming the peer:

* ``ROLE_PEER`` — another broker.  Subsequent frames are the same
  :class:`SummaryDeltaMessage` / :class:`SummaryMessage` /
  :class:`EventMessage` / :class:`NotifyMessage` traffic the simulator
  moves (delta frames by default, with the same per-link generation
  chaining and full-summary fallback the simulator's engine uses),
  dispatched through the *same* engine code
  (:class:`~repro.broker.routing.EventRouter` and the
  :func:`~repro.broker.propagation.select_period_target` policy), so the
  live system makes identical routing decisions to the simulated one.
* ``ROLE_PRODUCER`` / ``ROLE_SUBSCRIBER`` — client sessions publishing
  events and registering subscriptions (SUB/PUB/NOTIFY frames).

**The outbox seam.**  Engine code is synchronous and talks to a network
object with a blocking ``send``.  :class:`RuntimeNetwork` satisfies that
interface by *buffering*: ``send`` records metrics (size x overlay path
length, exactly the simulator's charging rule) and appends to an outbox.
After every synchronously-handled frame the runtime drains the outbox onto
per-peer :class:`PeerLink` queues **before reading the next frame** — the
asyncio single-thread model guarantees no other handler runs between the
dispatch and the drain, so engine sends are never reordered or lost.

**Backpressure.**  Every outbound queue (per peer link, per client
session) is a bounded :class:`asyncio.Queue`.  A full queue blocks the
producer (and counts a ``backpressure_stalls`` tick in
:class:`~repro.network.metrics.NetworkMetrics`): slow consumers propagate
stalls upstream instead of ballooning memory — the live analogue of the
simulator's synchronous delivery.

**Propagation periods.**  The runtime keeps a period permanently *open*
(an empty delta summary accepting peer merges at any time).
:meth:`period_act` folds the pending batch into the delta and performs the
broker's single Algorithm-2 transmission; :meth:`period_close` folds the
delta into the kept summary and reopens.  A
:class:`~repro.runtime.cluster.LocalCluster` sequences acts in degree
order with quiesce barriers between iterations — byte-identical to the
simulator's :class:`~repro.broker.propagation.PropagationEngine` — while a
standalone broker on a ``period_interval`` timer acts/closes on its own
(knowledge then spreads one hop per tick; Algorithm 3's exhaustive BROCLI
search keeps delivery complete regardless).

**Graceful drain.**  ``shutdown(drain=True)`` (also wired to SIGTERM via
:meth:`install_signal_handlers`) stops accepting, lets in-flight inbound
frames finish, flushes every outbound queue, closes the open period and
writes an atomic snapshot (:func:`~repro.broker.persistence.save_broker`)
a restarted broker resumes from.
"""

from __future__ import annotations

import argparse
import asyncio
import contextlib
import itertools
import logging
import os
import signal
import sys
from pathlib import Path
from types import SimpleNamespace
from typing import Dict, List, Optional, Set, Tuple

from repro.broker.broker import SummaryBroker
from repro.broker.persistence import allocate_epoch, save_broker
from repro.broker.propagation import (
    PROPAGATION_MODES,
    TargetPolicy,
    select_period_target,
)
from repro.broker.routing import EventRouter
from repro.model.ids import IdCodec, SubscriptionId
from repro.model.schema import Schema, SchemaError, stock_schema
from repro.network.backbone import named_topology
from repro.network.metrics import NetworkMetrics
from repro.network.topology import Topology
from repro.obs.audit import SummaryAuditor, paranoid_enabled
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import NULL_TRACER
from repro.runtime.framing import MAX_FRAME_BYTES, FrameConnection
from repro.summary.maintenance import IdSpaceExhausted
from repro.summary.precision import Precision
from repro.summary.summary import BrokerSummary
from repro.wire.codec import CodecError, ValueWidth, WireCodec
from repro.wire.messages import (
    EventMessage,
    HelloMessage,
    Message,
    MessageCodec,
    NotifyMessage,
    PingMessage,
    PongMessage,
    ROLE_PEER,
    ROLE_PRODUCER,
    ROLE_SUBSCRIBER,
    SubAckMessage,
    SubscribeMessage,
    SummaryDeltaMessage,
    SummaryMessage,
    SummaryRequestMessage,
    UnsubscribeMessage,
)

__all__ = [
    "BrokerRuntime",
    "ClientSession",
    "DEFAULT_BATCH_FRAMES",
    "DEFAULT_MATCH_CACHE",
    "DEFAULT_QUEUE_FRAMES",
    "PeerLink",
    "RuntimeNetwork",
    "maybe_enable_uvloop",
    "named_topology",
    "warn_reference_matcher",
    "main",
]

log = logging.getLogger("repro.runtime")

#: Default bound of every outbound queue, in frames.  Small enough that a
#: stuck consumer stalls its producers within one propagation period's
#: worth of traffic; large enough that a full inbound dispatch batch can
#: fan its forwards into a peer lane without tripping backpressure (the
#: 4-broker soak runs with zero stalls at this setting).
DEFAULT_QUEUE_FRAMES = 256

#: Default cap on one inbound dispatch batch: how many frames a single
#: socket read may hand to the engines before the outbox is pumped.  Keeps
#: latency for frames *behind* a burst bounded while still amortizing the
#: per-dispatch overhead over many events.  Tail latency scales with this
#: bound (one batch is one uninterruptible slice of event-loop time), so
#: it is tuned against the p99 gate in ``benchmarks/test_live_throughput``.
DEFAULT_BATCH_FRAMES = 128

#: Default :meth:`CompiledMatcher.match_many` LRU size on the live path
#: (entries; 0 disables).  Repeated identical events — heartbeats, ticker
#: re-publishes — skip Algorithm 1 entirely on a hit, and a summary
#: generation bump evicts the whole cache, so staleness is impossible.
DEFAULT_MATCH_CACHE = 512

#: Default ``c2`` capacity (mirrors the simulator facade).
DEFAULT_MAX_SUBSCRIPTIONS = 1 << 20


#: One warning per process when ``REPRO_UVLOOP`` asks for a loop we cannot
#: provide: the hook is called per runtime (a LocalCluster builds dozens),
#: and repeating the same fallback warning for each would bury real logs.
_uvloop_warned = False


def maybe_enable_uvloop() -> bool:
    """Install uvloop's event-loop policy when ``REPRO_UVLOOP`` is truthy.

    Opt-in (and dependency-optional) by design: the stdlib loop is the
    portable default, but on CPython + Linux uvloop's libuv reactor cuts
    per-syscall overhead on exactly the read/write path the batched
    runtime hammers.  Install it with the ``repro[uvloop]`` extra; when it
    is absent the hook degrades gracefully — warn once, fall back to the
    stdlib loop.  Returns True when uvloop is now the policy.
    """
    global _uvloop_warned
    if os.environ.get("REPRO_UVLOOP", "").strip().lower() not in (
        "1", "true", "yes", "on",
    ):
        return False
    try:
        import uvloop  # type: ignore[import-not-found]
    except ImportError:
        if not _uvloop_warned:
            _uvloop_warned = True
            log.warning(
                "REPRO_UVLOOP is set but uvloop is not installed "
                "(pip install 'repro[uvloop]'); falling back to the stdlib "
                "event loop"
            )
        return False
    uvloop.install()
    log.info("uvloop event-loop policy installed (REPRO_UVLOOP)")
    return True


class RuntimeNetwork:
    """The network object the engines see: charge metrics, buffer sends.

    Engine code (:class:`EventRouter`, the shared propagation policy) was
    written against the simulator's ``Network`` interface — ``topology``,
    ``send(src, dst, message)``, ``run()``.  Here ``send`` charges the
    same ``encoded_size x path_length`` the simulator does and appends
    ``(dst, message)`` to :attr:`outbox`; the runtime drains the outbox
    onto real TCP links immediately after each synchronous dispatch.
    ``run()`` is a no-op — delivery happens when the frames arrive.
    """

    def __init__(self, topology: Topology, codec: MessageCodec, metrics: NetworkMetrics):
        self.topology = topology
        self.codec = codec
        self.metrics = metrics
        self.outbox: List[Tuple[int, Message]] = []

    def send(self, src: int, dst: int, message: Message) -> None:
        size = self.codec.size(message)
        self.metrics.record(src, dst, size, self.topology.path_length(src, dst))
        self.outbox.append((dst, message))

    def run(self) -> None:
        """Engine compatibility (:meth:`EventRouter.publish` calls it)."""

    def take_outbox(self) -> List[Tuple[int, Message]]:
        """Atomically claim everything buffered so far (no awaits here —
        callers snapshot before their first suspension point)."""
        batch = self.outbox[:]
        self.outbox.clear()
        return batch


class PeerLink:
    """One outbound lane to another broker: bounded queue + writer task.

    The TCP connection is opened lazily on the first frame and re-opened
    after failures.  Peer links are one-directional by design — broker A's
    frames to B ride A's outbound connection, B's frames to A ride B's —
    which keeps the hello handshake trivial and frame ordering per
    direction obvious.

    **Coalesced drains.**  Each writer wake-up claims *everything* queued
    (up to the queue bound) and transmits it as one buffered write + one
    drain, so a burst of N frames costs one syscall instead of N.  Queue
    order is preserved, the bounded queue still backpressures producers,
    and a send failure accounts every frame of the failed batch as
    dropped (quiesce arithmetic must not wait for them).
    """

    def __init__(self, runtime: "BrokerRuntime", peer_id: int,
                 address: Tuple[str, int], queue_frames: int):
        self.runtime = runtime
        self.peer_id = peer_id
        self.address = address
        self.queue: "asyncio.Queue[Message]" = asyncio.Queue(maxsize=queue_frames)
        #: frames claimed by the writer but not yet on the wire — an abrupt
        #: kill must count them as dropped (they left the queue already).
        self.inflight = 0
        self._stale = False
        self._conn: Optional[FrameConnection] = None
        self._task: Optional[asyncio.Task] = None

    def update_address(self, address: Tuple[str, int]) -> None:
        """Re-point the lane at a restarted peer's fresh port.

        The peer's old incarnation is gone, so any live connection is a
        dead socket (or soon will be); mark it stale and let the writer
        drop it before the next batch instead of waiting for the slower
        EOF detection path.
        """
        address = tuple(address)
        if address == self.address:
            return
        self.address = address
        self._stale = True

    async def enqueue(self, message: Message) -> None:
        """Queue one frame, blocking (and counting a stall) when full."""
        if self._task is None:
            self._task = asyncio.create_task(self._writer_loop())
        if self.queue.full():
            self.runtime.metrics.record_stall()
        await self.queue.put(message)
        self.runtime.frames_enqueued += 1

    async def _writer_loop(self) -> None:
        while True:
            batch = [await self.queue.get()]
            # Claim whatever else is already queued — no waiting, order
            # preserved — so one drain moves the whole burst.
            while not self.queue.empty():
                batch.append(self.queue.get_nowait())
            self.inflight = len(batch)
            try:
                conn = self._conn
                if conn is not None and (self._stale or conn.peer_closed()):
                    # Either the peer shut its end (it never writes on
                    # this one-way lane, so EOF is a pure death signal) or
                    # the cluster re-published a fresh address for a
                    # restarted peer.  Do not write into the dead socket;
                    # reconnect instead.
                    await conn.close()
                    conn = self._conn = None
                self._stale = False
                if conn is None:
                    conn = self._conn = await self._connect()
                await conn.send_many(batch)
                self.runtime.metrics.record_coalesced_write(len(batch))
            except (ConnectionError, OSError, CodecError) as exc:
                # TCP is reliable while up; a failure means the peer is
                # down.  Count the losses (quiesce arithmetic must not
                # wait for frames that will never be processed) and drop
                # the connection so the next batch retries from scratch.
                log.warning("peer %d send failed: %s", self.peer_id, exc)
                self.runtime.metrics.record_send_failure()
                self.runtime.frames_dropped += len(batch)
                self.inflight = 0  # already accounted; a kill must not re-count
                self._conn = None
                # Reliability: let the router steer around the dead peer.
                # EVENT searches re-route to the next unexamined broker and
                # NOTIFY losses are counted; summary traffic is left to the
                # delta fallback, which resyncs the chain on reconnect.
                rerouted = False
                for message in batch:
                    if self.runtime.router.handle_send_failure(
                        self.runtime.broker_id, self.peer_id, message
                    ):
                        rerouted = True
                if rerouted:
                    await self.runtime._pump()
            finally:
                self.inflight = 0
                for _ in batch:
                    self.queue.task_done()

    async def _connect(self) -> FrameConnection:
        reader, writer = await asyncio.open_connection(*self.address)
        conn = FrameConnection(
            reader, writer, self.runtime.message_codec, self.runtime.max_frame_bytes
        )
        await conn.send(HelloMessage(role=ROLE_PEER, identity=self.runtime.broker_id))
        return conn

    async def flush(self) -> None:
        """Wait until every queued frame has been written to the socket."""
        await self.queue.join()

    async def close(self) -> None:
        if self._task is not None:
            self._task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._task
            self._task = None
        if self._conn is not None:
            await self._conn.close()
            self._conn = None


class ClientSession:
    """Server-side state of one producer/subscriber connection."""

    _session_ids = itertools.count(1)

    def __init__(self, runtime: "BrokerRuntime", conn: FrameConnection,
                 role: int, identity: int):
        self.runtime = runtime
        self.conn = conn
        self.role = role
        self.identity = identity
        self.session_id = next(self._session_ids)
        #: Subscription ids registered on this connection (NOTIFY targets).
        self.sids: Set[SubscriptionId] = set()
        self.queue: "asyncio.Queue[Message]" = asyncio.Queue(
            maxsize=runtime.queue_frames
        )
        self._task = asyncio.create_task(self._writer_loop())

    async def enqueue(self, message: Message) -> None:
        if self.queue.full():
            self.runtime.metrics.record_stall()
        await self.queue.put(message)

    async def _writer_loop(self) -> None:
        while True:
            batch = [await self.queue.get()]
            while not self.queue.empty():
                batch.append(self.queue.get_nowait())
            try:
                await self.conn.send_many(batch)
                self.runtime.metrics.record_coalesced_write(len(batch))
            except (ConnectionError, OSError):
                pass  # reader side notices the death and tears us down
            finally:
                for _ in batch:
                    self.queue.task_done()

    async def flush(self) -> None:
        await self.queue.join()

    async def close(self) -> None:
        self._task.cancel()
        with contextlib.suppress(asyncio.CancelledError):
            await self._task
        await self.conn.close()

    def __repr__(self) -> str:
        kind = {ROLE_PRODUCER: "producer", ROLE_SUBSCRIBER: "subscriber"}.get(
            self.role, "peer?"
        )
        return f"ClientSession({kind} #{self.session_id}, {len(self.sids)} sids)"


class BrokerRuntime:
    """One live broker: TCP server + engines + outbox pump + drain."""

    def __init__(
        self,
        broker_id: int,
        topology: Topology,
        schema: Schema,
        *,
        precision: Precision = Precision.COARSE,
        value_width: ValueWidth = ValueWidth.F64,
        max_subscriptions: int = DEFAULT_MAX_SUBSCRIPTIONS,
        matcher: str = "compiled",
        match_cache_size: int = DEFAULT_MATCH_CACHE,
        dedup_capacity: int = 4096,
        propagation_policy: TargetPolicy = TargetPolicy.HIGHEST_DEGREE,
        propagation_mode: str = "delta",
        suppress_covered: bool = True,
        period_interval: Optional[float] = None,
        queue_frames: int = DEFAULT_QUEUE_FRAMES,
        batch_frames: int = DEFAULT_BATCH_FRAMES,
        snapshot_dir: Optional[str] = None,
        host: str = "127.0.0.1",
        max_frame_bytes: int = MAX_FRAME_BYTES,
        tracer=None,
        paranoid: Optional[bool] = None,
        epoch: Optional[int] = None,
        message_codec: Optional[MessageCodec] = None,
    ):
        if broker_id not in topology.brokers:
            raise ValueError(f"broker {broker_id} is not in the topology")
        self.broker_id = broker_id
        self.topology = topology
        self.schema = schema
        self.policy = propagation_policy
        if propagation_mode not in PROPAGATION_MODES:
            raise ValueError(
                f"unknown propagation mode {propagation_mode!r}; expected "
                f"one of {PROPAGATION_MODES}"
            )
        #: ``"delta"`` ships per-period :class:`SummaryDeltaMessage` frames
        #: (adds + removals, per-link generation chaining, full-summary
        #: fallback on a broken chain); ``"full"`` is the original
        #: :class:`SummaryMessage`-per-period path.
        self.propagation_mode = propagation_mode
        self.period_interval = period_interval
        self.queue_frames = queue_frames
        if batch_frames < 1:
            raise ValueError("batch_frames must be >= 1")
        #: Cap on one inbound dispatch batch (frames per burst).
        self.batch_frames = batch_frames
        self.snapshot_dir = Path(snapshot_dir) if snapshot_dir is not None else None
        self.host = host
        self.max_frame_bytes = max_frame_bytes
        #: Live systems default to F64 wire values: unlike the simulator's
        #: bandwidth-accounting F32 default, live frames *are* the system
        #: state, and F32 rounding of range bounds would change matching.
        self.value_width = value_width
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.paranoid = paranoid_enabled() if paranoid is None else bool(paranoid)
        self.auditor: Optional[SummaryAuditor] = (
            SummaryAuditor(schema) if self.paranoid else None
        )

        if message_codec is not None:
            # Shared-codec mode: an in-process cluster hands every runtime
            # the same codec so the event/frame memo caches dedupe work
            # across brokers (a forwarded event decodes once, not once per
            # hop).  Sharing is only sound when the codec was built for an
            # identical deployment, so verify instead of trusting.
            wire = message_codec.wire
            if (
                wire.schema is not schema
                or wire.value_width is not value_width
                or wire.id_codec.num_brokers != topology.num_brokers
                or wire.id_codec.max_subscriptions != max_subscriptions
            ):
                raise ValueError(
                    "shared message_codec was built for a different deployment"
                )
            self.id_codec = wire.id_codec
            self.wire = wire
            self.message_codec = message_codec
        else:
            self.id_codec = IdCodec(
                num_brokers=topology.num_brokers,
                max_subscriptions=max_subscriptions,
                num_attributes=len(schema),
            )
            self.wire = WireCodec(schema, self.id_codec, value_width)
            self.message_codec = MessageCodec(self.wire)

        self.metrics = NetworkMetrics()
        self.network = RuntimeNetwork(topology, self.message_codec, self.metrics)

        self.broker = SummaryBroker(
            broker_id,
            schema,
            precision,
            on_delivery=self._on_delivery,
            matcher=matcher,
            dedup_capacity=dedup_capacity,
            max_subscriptions=max_subscriptions,
            match_cache_size=match_cache_size,
            suppress_covered=suppress_covered,
        )
        self.broker.tracer = self.tracer
        self.broker.paranoid = self.paranoid
        self.router = EventRouter(self.network, {broker_id: self.broker}, epoch=epoch)
        self.router.tracer = self.tracer
        #: ``audit_dedup`` expects a system-shaped object with ``brokers``.
        self._audit_scope = SimpleNamespace(brokers={broker_id: self.broker})

        self._peer_addresses: Dict[int, Tuple[str, int]] = {}
        self._links: Dict[int, PeerLink] = {}
        self._sessions: Set[ClientSession] = set()
        self._sid_sessions: Dict[SubscriptionId, ClientSession] = {}
        self._client_outbox: List[Tuple[ClientSession, Message]] = []
        self._reader_tasks: Set[asyncio.Task] = set()
        self._server: Optional[asyncio.AbstractServer] = None
        self._period_task: Optional[asyncio.Task] = None
        self.port: Optional[int] = None
        self.periods_run = 0
        # -- delta-mode fallback statistics (mirrors PropagationEngine) --
        self.fallback_requests = 0
        self.fallback_replies = 0

        # -- quiesce arithmetic (LocalCluster barriers) --
        #: broker-to-broker frames put on outbound peer queues.
        self.frames_enqueued = 0
        #: broker-to-broker frames received, dispatched AND re-pumped.
        self.frames_processed = 0
        #: frames abandoned because the peer was unreachable.
        self.frames_dropped = 0

        self._shutdown_started = False
        self._snapshot_written: Optional[Path] = None
        self.terminated = asyncio.Event()
        self._open_period()

    # -- lifecycle -------------------------------------------------------------

    async def start(self, port: int = 0) -> int:
        """Bind and listen; returns the (possibly ephemeral) bound port."""
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        if self.period_interval:
            self._period_task = asyncio.create_task(self._period_loop())
        return self.port

    def set_peers(self, addresses: Dict[int, Tuple[str, int]]) -> None:
        """Learn where the other brokers listen (own entry ignored).

        Re-publishing an updated map also re-points any *existing* lane at
        the new address: a broker restarted on an ephemeral port would
        otherwise be dialled at its dead old port forever (the lazy
        reconnect used to assume addresses never change).
        """
        for peer, address in addresses.items():
            if peer != self.broker_id:
                self._peer_addresses[peer] = tuple(address)
                link = self._links.get(peer)
                if link is not None:
                    link.update_address(tuple(address))

    def install_signal_handlers(
        self, signals: Tuple[int, ...] = (signal.SIGTERM, signal.SIGINT)
    ) -> None:
        """SIGTERM/SIGINT trigger a graceful drain-and-snapshot shutdown."""
        loop = asyncio.get_running_loop()
        for signum in signals:
            loop.add_signal_handler(signum, self._signal_shutdown)

    def _signal_shutdown(self) -> None:
        if not self._shutdown_started:
            asyncio.get_running_loop().create_task(self.shutdown(drain=True))

    async def shutdown(self, drain: bool = True) -> Optional[Path]:
        """Stop the broker; with ``drain`` flush queues and snapshot.

        Returns the snapshot path when one was written.  Draining order:
        stop accepting → let in-flight inbound frames finish → flush every
        peer/client outbound queue → fold the open period into the kept
        summary → atomic snapshot.  A second call waits for the first.
        """
        if self._shutdown_started:
            await self.terminated.wait()
            return self._snapshot_written
        self._shutdown_started = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._period_task is not None:
            self._period_task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._period_task
        if drain:
            await self._settle_inbound()
            for link in list(self._links.values()):
                await link.flush()
            for session in list(self._sessions):
                await session.flush()
            self.period_close()
            if self.snapshot_dir is not None:
                self._snapshot_written = save_broker(
                    self.broker, self.snapshot_dir, self.wire
                )
        readers = list(self._reader_tasks)
        for task in readers:
            task.cancel()
        if readers:
            await asyncio.gather(*readers, return_exceptions=True)
        for link in list(self._links.values()):
            await link.close()
        for session in list(self._sessions):
            await session.close()
        self._sessions.clear()
        self.terminated.set()
        return self._snapshot_written

    async def kill(self) -> None:
        """Abrupt crash: no drain, no snapshot, sockets torn mid-frame.

        The chaos harness' model of ``kill -9``: stop listening, cancel
        the period loop and every reader/writer task where they stand (a
        writer suspended inside ``send_many`` leaves a torn frame on the
        wire for the peer's codec to reject), and account every frame
        still queued or in flight as dropped so cluster-level quiesce
        arithmetic does not wait for work that died with the process.
        """
        if self._shutdown_started:
            await self.terminated.wait()
            return
        self._shutdown_started = True
        if self._server is not None:
            self._server.close()
            with contextlib.suppress(ConnectionError, OSError):
                await self._server.wait_closed()
        if self._period_task is not None:
            self._period_task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._period_task
        readers = list(self._reader_tasks)
        for task in readers:
            task.cancel()
        if readers:
            await asyncio.gather(*readers, return_exceptions=True)
        for link in list(self._links.values()):
            # Claimed-but-unwritten frames died with the writer task; the
            # queue backlog never even reached a socket.
            self.frames_dropped += link.queue.qsize() + link.inflight
            await link.close()
        for session in list(self._sessions):
            with contextlib.suppress(ConnectionError, OSError):
                await session.close()
        self._sessions.clear()
        self.terminated.set()

    async def _settle_inbound(self) -> None:
        """Wait until the inbound frame counter stops moving (all frames
        already on the wire have been dispatched and pumped)."""
        previous, stable = -1, 0
        while stable < 2:
            await asyncio.sleep(0.02)
            current = self.frames_processed
            stable = stable + 1 if current == previous else 0
            previous = current

    # -- the outbox pump -------------------------------------------------------

    async def _pump(self) -> None:
        """Move everything the engines buffered onto real queues.

        The snapshot of both outboxes happens before the first ``await``:
        once this coroutine suspends (a full queue exercising
        backpressure), newly buffered sends belong to whichever handler
        produced them and will be pumped by *its* call.
        """
        peer_batch = self.network.take_outbox()
        client_batch = self._client_outbox[:]
        self._client_outbox.clear()
        for dst, message in peer_batch:
            if dst not in self._peer_addresses:
                # Standalone runtime (tests, single-broker tooling): the
                # engine addressed a peer nobody wired up.  Drop the frame
                # before it is ever enqueued — it never enters the
                # enqueued/processed quiesce arithmetic.
                log.warning(
                    "broker %d dropping frame for peer %d (no address; "
                    "set_peers not called)",
                    self.broker_id,
                    dst,
                )
                continue
            await self._link(dst).enqueue(message)
        for session, message in client_batch:
            await session.enqueue(message)

    def _link(self, peer: int) -> PeerLink:
        link = self._links.get(peer)
        if link is None:
            address = self._peer_addresses.get(peer)
            if address is None:
                raise RuntimeError(
                    f"broker {self.broker_id} has no address for peer {peer} "
                    f"(set_peers not called?)"
                )
            link = self._links[peer] = PeerLink(self, peer, address, self.queue_frames)
        return link

    def _on_delivery(self, broker_id: int, sid: SubscriptionId, event) -> None:
        """Broker → consumer hand-off: buffer a NOTIFY for the owning
        session (ids with no live session — e.g. restored from a snapshot —
        stay visible in ``broker.deliveries``)."""
        session = self._sid_sessions.get(sid)
        if session is not None:
            self._client_outbox.append(
                (session, NotifyMessage(event=event, matched=frozenset((sid,))))
            )

    # -- inbound connections ---------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        self._reader_tasks.add(task)
        conn = FrameConnection(reader, writer, self.message_codec, self.max_frame_bytes)
        try:
            hello = await conn.recv()
            if hello is None:
                return
            if not isinstance(hello, HelloMessage):
                raise CodecError(
                    f"expected HELLO as the first frame, got "
                    f"{type(hello).__name__}"
                )
            if hello.role == ROLE_PEER:
                await self._serve_peer(conn, hello.identity)
            else:
                await self._serve_client(conn, hello)
        except (CodecError, SchemaError) as exc:
            log.warning("broker %d dropping connection: %s", self.broker_id, exc)
        except (ConnectionError, OSError):
            pass  # unceremonious peer death
        except asyncio.CancelledError:
            # Shutdown cancels reader tasks mid-recv; completing normally
            # (instead of re-raising) keeps asyncio.streams' internal
            # connection_made callback from logging spurious errors.
            pass
        finally:
            self._reader_tasks.discard(task)
            await conn.close()

    async def _serve_peer(self, conn: FrameConnection, peer_id: int) -> None:
        while True:
            burst = await conn.recv_burst(self.batch_frames)
            if not burst:
                return
            # Contiguous EVENT runs are dispatched as one batch (the
            # compiled matcher's ``match_many`` hot path); SUMMARY and
            # NOTIFY frames break the run so cross-kind ordering — an
            # EVENT must see exactly the kept summary that preceded it on
            # the wire — is byte-for-byte what a frame-at-a-time loop
            # would have produced.
            index, total = 0, len(burst)
            while index < total:
                message = burst[index]
                if isinstance(message, EventMessage):
                    end = index + 1
                    while end < total and isinstance(burst[end], EventMessage):
                        end += 1
                    items = [
                        (m.event, m.brocli, m.publish_id)
                        for m in burst[index:end]
                    ]
                    await self._process_burst(items)
                    index = end
                else:
                    self._dispatch_peer(peer_id, message)
                    index += 1
            await self._pump()
            # Counted only after the dispatch *and* the pump: a processed
            # frame's downstream sends are already on their queues, so
            # cluster-wide enqueued == processed means true quiescence.
            self.frames_processed += total

    def _dispatch_peer(self, src: int, message: Message) -> None:
        """Same engines, same decisions as the simulator's dispatch."""
        if isinstance(message, SummaryMessage):
            # Snapshot-safe absorb: a fallback resync reply may land between
            # periods (restarts shift who is mid-period when).
            self.broker.absorb_summary_snapshot(
                src, message.summary, set(message.merged_brokers)
            )
            return
        if isinstance(message, SummaryDeltaMessage):
            applied = self.broker.absorb_delta(
                src,
                message.adds,
                set(message.removed),
                set(message.merged_brokers),
                message.base_generation,
                message.generation,
            )
            if not applied:
                if self.broker.delta_summary is None:
                    # A stale period frame flushed through a reconnected
                    # link landed between periods (e.g. queued while the
                    # peer was down, delivered to its new incarnation).
                    # Drop it: the chain is now desynced on both ends, so
                    # the next in-period delta fails the base-generation
                    # check and runs the regular fallback resync.
                    return
                # Chain broke (peer restart, our restore, frame loss): ask
                # for a full summary instead of merging a stale delta.  The
                # request rides the outbox and is pumped with this burst.
                self.fallback_requests += 1
                if self.tracer.enabled:
                    self.tracer.record(
                        "delta_rejected", broker=self.broker_id,
                        trace_id=self.periods_run + 1, src=src,
                        base_generation=message.base_generation,
                    )
                self.network.send(
                    self.broker_id, src,
                    SummaryRequestMessage(generation=message.generation),
                )
            return
        if isinstance(message, SummaryRequestMessage):
            # A live-path rejection means the requester genuinely lost its
            # chain state (restart/restore), so the resync snapshot is the
            # *whole* current knowledge — kept plus the open delta.  (The
            # simulator replies with the period delta only because its
            # rejections are always mid-period among brokers that kept
            # their state; here the period never closes for outsiders.)
            broker = self.broker
            snapshot = broker.kept_summary.copy()
            if broker.delta_summary is not None:  # requests can land between periods
                snapshot.merge(broker.delta_summary)
            broker.link_generations_out[src] = 0
            self.fallback_replies += 1
            self.network.send(
                self.broker_id, src,
                SummaryMessage(
                    summary=snapshot,
                    merged_brokers=frozenset(
                        broker.merged_brokers | broker.delta_brokers
                    ),
                ),
            )
            return
        if self.router.handle_message(self.broker_id, src, message):
            return
        raise CodecError(f"unhandled peer message {type(message).__name__}")

    async def _serve_client(self, conn: FrameConnection, hello: HelloMessage) -> None:
        session = ClientSession(self, conn, hello.role, hello.identity)
        self._sessions.add(session)
        try:
            while True:
                burst = await conn.recv_burst(self.batch_frames)
                if not burst:
                    return
                # Publish bursts batch through the compiled matcher; any
                # other frame (SUB/UNSUB/PING) breaks the run so request
                # ordering — and the PING completion barrier — holds.
                index, total = 0, len(burst)
                while index < total:
                    message = burst[index]
                    if isinstance(message, EventMessage):
                        end = index + 1
                        while end < total and isinstance(burst[end], EventMessage):
                            end += 1
                        await self._handle_publish_burst(
                            [m.event for m in burst[index:end]]
                        )
                        index = end
                    else:
                        await self._handle_client_frame(session, message)
                        index += 1
        finally:
            self._sessions.discard(session)
            # Subscriptions survive the disconnect (durable, snapshot-able);
            # only the NOTIFY routing to this dead session stops.
            for sid in session.sids:
                self._sid_sessions.pop(sid, None)
            await session.close()

    async def _handle_publish_burst(self, events: List) -> None:
        """PUB burst: the ingress broker mints the real publish ids and
        runs Algorithm 3's first hop for the whole burst in one batched
        summary check; forwards ride the pump."""
        for event in events:
            self.schema.validate_event(event)
        await self._publish_events(events)
        if self.auditor is not None:
            self.auditor.audit_dedup(self._audit_scope)
        await self._pump()

    # -- data-plane seams (overridden by ShardedBrokerRuntime) -----------------

    async def _process_burst(
        self, items: List[Tuple[Event, FrozenSet[int], int]]
    ) -> None:
        """Run Algorithm 3 over one contiguous EVENT run from a peer.

        The single-process hot path dispatches inline; the sharded runtime
        overrides this to fan step 1 (the summary match) out to worker
        processes.  Awaiting here never reorders frames of one connection
        — `_serve_peer` finishes the whole burst before its next recv —
        but frames of *other* connections may interleave at the await,
        which is a serialization a frame-at-a-time loop could also have
        produced.
        """
        self.metrics.record_match_batch(len(items))
        self.router.process_batch(self.broker, items)

    async def _publish_events(self, events: List[Event]) -> None:
        """Mint ids and run the ingress hop for one validated PUB burst."""
        self.metrics.record_match_batch(len(events))
        self.router.publish_batch(self.broker_id, events)

    async def _handle_client_frame(self, session: ClientSession, message: Message) -> None:
        if isinstance(message, EventMessage):
            # Single-frame publish (reached when a caller dispatches
            # outside `_serve_client`'s burst loop): same path, burst of 1.
            await self._handle_publish_burst([message.event])
        elif isinstance(message, SubscribeMessage):
            try:
                sid = self.broker.subscribe(message.subscription)
            except (IdSpaceExhausted, SchemaError, ValueError) as exc:
                reply = SubAckMessage(
                    request_id=message.request_id, sid=None,
                    error=str(exc) or type(exc).__name__,
                )
            else:
                session.sids.add(sid)
                self._sid_sessions[sid] = session
                reply = SubAckMessage(request_id=message.request_id, sid=sid)
            await session.enqueue(reply)
        elif isinstance(message, UnsubscribeMessage):
            if self.broker.unsubscribe(message.sid):
                session.sids.discard(message.sid)
                self._sid_sessions.pop(message.sid, None)
                if self.auditor is not None:
                    self.auditor.assert_clean(self.broker)
                reply = SubAckMessage(request_id=message.request_id, sid=message.sid)
            else:
                reply = SubAckMessage(
                    request_id=message.request_id, sid=None,
                    error=f"unknown subscription {message.sid}",
                )
            await session.enqueue(reply)
        elif isinstance(message, PingMessage):
            # The PONG rides the session queue *behind* pending NOTIFYs:
            # in-order processing makes it a completion barrier.
            await session.enqueue(PongMessage(token=message.token))
        else:
            raise CodecError(f"unexpected client frame {type(message).__name__}")

    # -- propagation periods ---------------------------------------------------

    def _open_period(self) -> None:
        """(Re)open the always-live period: an empty delta ready to absorb
        peer summaries whenever they arrive."""
        broker = self.broker
        broker.delta_summary = BrokerSummary(broker.schema, broker.precision)
        broker.delta_brokers = {broker.broker_id}
        broker.contacted = set()
        # Same removal bookkeeping as SummaryBroker.begin_period: snapshot
        # (without clearing) the queued removals into this period's scratch
        # and reopen the one-send-per-period window.
        broker.delta_removed = set(broker.removed_pending)
        broker.period_acted = False

    async def period_act(self) -> Optional[int]:
        """This broker's one Algorithm-2 transmission for the period:
        fold the pending batch into the delta, pick the target with the
        shared policy, send delta + Merged_Brokers.  Returns the target
        (None when no eligible neighbor remains)."""
        broker = self.broker
        for sid, subscription in broker.pending:
            broker.delta_summary.add(subscription, sid)
        broker.pending = []
        target = select_period_target(self.topology, broker, self.policy)
        # The send opportunity for this period has now passed (even with no
        # eligible target): later unsubscribes queue for the next period.
        broker.period_acted = True
        if target is not None:
            broker.contacted.add(target)
            if self.tracer.enabled:
                self.tracer.record(
                    "summary_send", broker=self.broker_id,
                    trace_id=self.periods_run + 1, target=target,
                    merged_brokers=len(broker.delta_brokers),
                )
            if self.propagation_mode == "delta":
                base = broker.link_generations_out.get(target, 0)
                generation = base + 1
                broker.link_generations_out[target] = generation
                message: Message = SummaryDeltaMessage(
                    adds=broker.delta_summary.copy(),
                    removed=frozenset(broker.delta_removed),
                    merged_brokers=frozenset(broker.delta_brokers),
                    base_generation=base,
                    generation=generation,
                )
            else:
                message = SummaryMessage(
                    summary=broker.delta_summary.copy(),
                    merged_brokers=frozenset(broker.delta_brokers),
                )
                # A full frame restarts the chain towards this neighbor.
                broker.link_generations_out[target] = 0
            self.network.send(self.broker_id, target, message)
        await self._pump()
        return target

    def period_close(self) -> None:
        """Fold the period's delta into the kept summary and reopen.

        Deliberately *not* :meth:`SummaryBroker.finish_period`: that
        clears ``pending``, and subscriptions accepted after this period's
        act must survive into the next one."""
        broker = self.broker
        broker.kept_summary.merge(broker.delta_summary)
        broker.merged_brokers |= broker.delta_brokers
        # Removals (own + peers' delta blocks) apply after the merge, same
        # order as SummaryBroker.finish_period; what this period shipped is
        # no longer pending for the next one.
        for sid in broker.delta_removed:
            broker.kept_summary.remove(sid)
        broker.removed_pending -= broker.delta_removed
        self._open_period()
        self.periods_run += 1
        if self.auditor is not None:
            self.auditor.assert_clean(broker)

    async def _period_loop(self) -> None:
        """Uncoordinated timer mode for standalone brokers."""
        while True:
            await asyncio.sleep(self.period_interval)
            await self.period_act()
            self.period_close()

    # -- observability ---------------------------------------------------------

    def collect_metrics(self) -> MetricsRegistry:
        registry = MetricsRegistry()
        self.metrics.contribute(registry, "runtime.network")
        registry.gauge("runtime.frames_enqueued").set(self.frames_enqueued)
        registry.gauge("runtime.frames_processed").set(self.frames_processed)
        registry.gauge("runtime.frames_dropped").set(self.frames_dropped)
        registry.gauge("runtime.periods_run").set(self.periods_run)
        registry.gauge("runtime.fallback_requests").set(self.fallback_requests)
        registry.gauge("runtime.fallback_replies").set(self.fallback_replies)
        registry.gauge("runtime.client_sessions").set(len(self._sessions))
        registry.gauge("runtime.subscriptions").set(len(self.broker.store))
        registry.gauge("runtime.batch_size").set(self.metrics.batch_size)
        compiled = self.broker._compiled
        if compiled is not None:
            registry.gauge("runtime.match_cache_hits").set(compiled.cache_hits)
            registry.gauge("runtime.match_cache_misses").set(compiled.cache_misses)
        return registry

    def __repr__(self) -> str:
        return (
            f"BrokerRuntime(id={self.broker_id}, port={self.port}, "
            f"subs={len(self.broker.store)}, periods={self.periods_run})"
        )


# -- CLI ------------------------------------------------------------------------


def parse_peers(text: str) -> Dict[int, Tuple[str, int]]:
    """Parse ``"1=127.0.0.1:7001,2=127.0.0.1:7002"`` into an address map."""
    addresses: Dict[int, Tuple[str, int]] = {}
    for chunk in filter(None, (part.strip() for part in text.split(","))):
        broker_text, _, addr = chunk.partition("=")
        host, _, port = addr.rpartition(":")
        if not (broker_text.isdigit() and host and port.isdigit()):
            raise ValueError(f"bad peer spec {chunk!r} (want id=host:port)")
        addresses[int(broker_text)] = (host, int(port))
    return addresses


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-broker",
        description="Run one live summary broker (see repro.runtime).",
    )
    parser.add_argument("--broker-id", type=int, required=True)
    parser.add_argument("--topology", default="cw24",
                        help="cw24 | tree13 | line<N> | star<N> | scalefree<N>")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0,
                        help="listen port (0 = ephemeral, printed on stdout)")
    parser.add_argument("--peers", default="",
                        help="comma-separated id=host:port of the other brokers")
    parser.add_argument("--snapshot-dir", default=None,
                        help="directory for the graceful-drain snapshot")
    parser.add_argument("--period-interval", type=float, default=0.0,
                        help="seconds between timer-driven propagation acts "
                             "(0 = only explicit/cluster-driven periods)")
    parser.add_argument("--matcher", choices=("reference", "compiled"),
                        default="compiled",
                        help="event-matching engine (default: compiled — the "
                             "batched fast path; 'reference' is deprecated on "
                             "the live path and kept for debugging)")
    parser.add_argument("--precision", choices=("coarse", "exact"),
                        default="coarse")
    parser.add_argument("--propagation-mode", choices=PROPAGATION_MODES,
                        default="delta",
                        help="summary propagation framing (default: delta — "
                             "incremental frames with full-summary fallback; "
                             "'full' re-ships the whole period summary)")
    parser.add_argument("--queue-frames", type=int, default=DEFAULT_QUEUE_FRAMES)
    parser.add_argument("--batch-frames", type=int, default=DEFAULT_BATCH_FRAMES,
                        help="max frames per inbound dispatch batch")
    parser.add_argument("--paranoid", action="store_true",
                        help="run the summary auditor after every period")
    parser.add_argument("--shards", type=int, default=1,
                        help="worker processes for the match hot path "
                             "(1 = single-process; N > 1 boots the sharded "
                             "runtime, one CompiledMatcher per worker)")
    return parser


def warn_reference_matcher(prog: str) -> None:
    """Deprecation note for explicitly selecting the reference matcher on
    the live path (it remains the simulator/figure-reproduction engine)."""
    print(
        f"{prog}: warning: '--matcher reference' on the live runtime is "
        f"deprecated — it matches one event at a time and will not keep up "
        f"under load; the compiled engine is semantically identical "
        f"(differential-tested) and now the default.",
        file=sys.stderr,
        flush=True,
    )


async def _serve(args: argparse.Namespace) -> None:
    if args.shards > 1:
        # Deferred import: sharded builds on this module.
        from repro.runtime.sharded import ShardedBrokerRuntime

        runtime_cls, extra = ShardedBrokerRuntime, {"shards": args.shards}
    else:
        runtime_cls, extra = BrokerRuntime, {}
    runtime = runtime_cls(
        args.broker_id,
        named_topology(args.topology),
        stock_schema(),
        precision=Precision(args.precision),
        matcher=args.matcher,
        propagation_mode=args.propagation_mode,
        period_interval=args.period_interval or None,
        queue_frames=args.queue_frames,
        batch_frames=args.batch_frames,
        snapshot_dir=args.snapshot_dir,
        host=args.host,
        paranoid=True if args.paranoid else None,
        # Every OS process is a fresh incarnation: without an explicit
        # epoch the process-wide counter would hand each standalone broker
        # epoch 1, and a cold-rejoined broker would re-mint publish ids
        # that surviving peers' dedup tables eat as duplicates.
        epoch=allocate_epoch(args.snapshot_dir, args.broker_id),
        **extra,
    )
    port = await runtime.start(args.port)
    runtime.set_peers(parse_peers(args.peers))
    runtime.install_signal_handlers()
    print(f"broker {args.broker_id} listening on {args.host}:{port}", flush=True)
    await runtime.terminated.wait()
    if runtime.snapshot_dir is not None:
        print(f"broker {args.broker_id} drained to {runtime.snapshot_dir}", flush=True)


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.matcher == "reference":
        warn_reference_matcher("repro-broker")
    maybe_enable_uvloop()
    try:
        asyncio.run(_serve(args))
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        pass
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
