"""Async client sessions for the live runtime.

Two session types, matching the paper's two client roles:

* :class:`ProducerSession` — an Event Source.  ``publish`` sends one
  :class:`~repro.wire.messages.EventMessage` with an empty BROCLI and
  publish id 0; the ingress broker mints the real id and runs Algorithm 3.
* :class:`SubscriberSession` — an Event Displayer.  ``subscribe`` /
  ``unsubscribe`` are request/response over SUB_ACK frames (correlated by
  ``request_id``, because the same connection carries asynchronous NOTIFY
  frames); deliveries accumulate in :attr:`SubscriberSession.deliveries`
  and optionally fan out to a callback.

Both sessions expose ``flush()``, the PING/PONG barrier: frames on one
connection are processed in order and the PONG is queued *behind* any
pending NOTIFYs, so a returned ``flush()`` proves every earlier frame of
this session was fully processed by the broker and every notification the
broker had queued for it was already transmitted.  (It says nothing about
frames still travelling between *brokers* — that is
:meth:`~repro.runtime.cluster.LocalCluster.quiesce`'s job.)
"""

from __future__ import annotations

import asyncio
import contextlib
import itertools
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.model.events import Event
from repro.model.ids import SubscriptionId
from repro.model.subscriptions import Subscription
from repro.runtime.framing import MAX_FRAME_BYTES, FrameConnection
from repro.wire.codec import CodecError
from repro.wire.messages import (
    EventMessage,
    HelloMessage,
    MessageCodec,
    NotifyMessage,
    PingMessage,
    PongMessage,
    ROLE_PRODUCER,
    ROLE_SUBSCRIBER,
    SubAckMessage,
    SubscribeMessage,
    UnsubscribeMessage,
)

__all__ = ["ProducerSession", "SubscriberSession", "SubscribeError"]


class SubscribeError(RuntimeError):
    """The broker rejected a subscribe/unsubscribe request."""


class _SessionBase:
    _identities = itertools.count(1)

    def __init__(self, conn: FrameConnection, identity: int):
        self._conn = conn
        self.identity = identity
        self._tokens = itertools.count(1)
        self._request_ids = itertools.count(1)

    @classmethod
    async def _open(
        cls,
        role: int,
        host: str,
        port: int,
        codec: MessageCodec,
        identity: Optional[int] = None,
        max_frame_bytes: int = MAX_FRAME_BYTES,
    ):
        reader, writer = await asyncio.open_connection(host, port)
        conn = FrameConnection(reader, writer, codec, max_frame_bytes)
        if identity is None:
            identity = next(cls._identities)
        await conn.send(HelloMessage(role=role, identity=identity))
        return cls(conn, identity)

    async def close(self) -> None:
        await self._conn.close()


class ProducerSession(_SessionBase):
    """An Event Source connection: publish events, barrier with flush.

    The broker never initiates frames to a producer, so the session reads
    inline (only expecting PONGs) instead of running a reader task.
    """

    @classmethod
    async def connect(cls, host: str, port: int, codec: MessageCodec,
                      identity: Optional[int] = None) -> "ProducerSession":
        return await cls._open(ROLE_PRODUCER, host, port, codec, identity)

    async def publish(self, event: Event) -> None:
        """Fire-and-forget publish (at-most-once from the client's view
        until a ``flush`` confirms the broker processed it)."""
        await self._conn.send(
            EventMessage(event=event, brocli=frozenset(), publish_id=0)
        )

    async def publish_many(self, events: Sequence[Event]) -> None:
        """Publish a burst as one coalesced write (one syscall, one
        drain).  The broker receives the frames back-to-back, which is
        exactly the shape its batched dispatch loop feeds to
        ``match_many`` — the client-side half of the batched hot path."""
        await self._conn.send_many(
            [
                EventMessage(event=event, brocli=frozenset(), publish_id=0)
                for event in events
            ]
        )

    async def flush(self) -> None:
        """Barrier: returns once the broker has processed every event
        published on this session so far."""
        token = next(self._tokens)
        await self._conn.send(PingMessage(token=token))
        while True:
            message = await self._conn.recv()
            if message is None:
                raise ConnectionError("broker closed the producer session mid-flush")
            if isinstance(message, PongMessage) and message.token == token:
                return
            if not isinstance(message, PongMessage):
                raise CodecError(
                    f"producer session received {type(message).__name__}"
                )


class SubscriberSession(_SessionBase):
    """An Event Displayer connection: manage subscriptions, collect
    notifications.

    A background reader task dispatches interleaved SUB_ACK / NOTIFY /
    PONG frames; ``subscribe``/``unsubscribe``/``flush`` await futures the
    reader resolves.
    """

    def __init__(self, conn: FrameConnection, identity: int):
        super().__init__(conn, identity)
        #: Every (sid, event) delivered to this session, in arrival order.
        self.deliveries: List[Tuple[SubscriptionId, Event]] = []
        #: Optional push hook called as ``callback(sid, event)``.
        self.on_notify: Optional[Callable[[SubscriptionId, Event], None]] = None
        #: Ids currently registered through this session.
        self.sids: List[SubscriptionId] = []
        self._acks: Dict[int, "asyncio.Future[SubAckMessage]"] = {}
        self._pongs: Dict[int, "asyncio.Future[None]"] = {}
        self._reader = asyncio.create_task(self._read_loop())

    @classmethod
    async def connect(cls, host: str, port: int, codec: MessageCodec,
                      identity: Optional[int] = None) -> "SubscriberSession":
        return await cls._open(ROLE_SUBSCRIBER, host, port, codec, identity)

    # -- background reader ---------------------------------------------------

    async def _read_loop(self) -> None:
        error: Optional[BaseException] = None
        try:
            while True:
                message = await self._conn.recv()
                if message is None:
                    error = ConnectionError("broker closed the session")
                    return
                if isinstance(message, NotifyMessage):
                    for sid in sorted(message.matched):
                        self.deliveries.append((sid, message.event))
                        if self.on_notify is not None:
                            self.on_notify(sid, message.event)
                elif isinstance(message, SubAckMessage):
                    future = self._acks.pop(message.request_id, None)
                    if future is not None and not future.done():
                        future.set_result(message)
                elif isinstance(message, PongMessage):
                    future = self._pongs.pop(message.token, None)
                    if future is not None and not future.done():
                        future.set_result(None)
                else:
                    error = CodecError(
                        f"subscriber session received {type(message).__name__}"
                    )
                    return
        except (ConnectionError, OSError, CodecError) as exc:
            error = exc
        except asyncio.CancelledError:
            error = ConnectionError("session closed")
            raise
        finally:
            failure = error or ConnectionError("session reader stopped")
            for future in (*self._acks.values(), *self._pongs.values()):
                if not future.done():
                    future.set_exception(failure)
            self._acks.clear()
            self._pongs.clear()

    # -- requests -------------------------------------------------------------

    async def subscribe(self, subscription: Subscription) -> SubscriptionId:
        """Register one subscription; returns the broker-minted id."""
        ack = await self._request(
            lambda rid: SubscribeMessage(request_id=rid, subscription=subscription)
        )
        if not ack.ok:
            raise SubscribeError(ack.error or "subscribe rejected")
        self.sids.append(ack.sid)
        return ack.sid

    async def unsubscribe(self, sid: SubscriptionId) -> None:
        ack = await self._request(
            lambda rid: UnsubscribeMessage(request_id=rid, sid=sid)
        )
        if not ack.ok:
            raise SubscribeError(ack.error or "unsubscribe rejected")
        with contextlib.suppress(ValueError):
            self.sids.remove(sid)

    async def _request(self, build) -> SubAckMessage:
        request_id = next(self._request_ids)
        future: "asyncio.Future[SubAckMessage]" = (
            asyncio.get_running_loop().create_future()
        )
        self._acks[request_id] = future
        await self._conn.send(build(request_id))
        return await future

    async def flush(self) -> None:
        """Barrier: all earlier frames processed, all queued NOTIFYs for
        this session already transmitted (and therefore in
        :attr:`deliveries` — the reader task saw them before the PONG)."""
        token = next(self._tokens)
        future: "asyncio.Future[None]" = asyncio.get_running_loop().create_future()
        self._pongs[token] = future
        await self._conn.send(PingMessage(token=token))
        await future

    async def close(self) -> None:
        self._reader.cancel()
        with contextlib.suppress(asyncio.CancelledError):
            await self._reader
        await self._conn.close()

    def __repr__(self) -> str:
        return (
            f"SubscriberSession(#{self.identity}, {len(self.sids)} sids, "
            f"{len(self.deliveries)} deliveries)"
        )
