"""Multicore sharded broker: the match hot path fanned across processes.

A single-process :class:`~repro.runtime.server.BrokerRuntime` saturates
one core on the batched EVENT path (PR 6's soak).  The summary paradigm
makes the expensive step embarrassingly parallel: Algorithm 3's step 1 is
a *read-only* check of one immutable kept-summary snapshot, and two
events never share routing state (publish-id dedup and BROCLI updates are
per-event).  So this runtime keeps everything that mutates broker state
in one process — the **acceptor** — and ships only the summary match to
**shard workers**:

.. code-block:: text

    producers/peers ──TCP──►  acceptor process (ShardedBrokerRuntime)
                              │  control plane: SUBSCRIBE / SUMMARY /
                              │  SUMMARY_DELTA, periods, snapshots,
                              │  SIGTERM drain, Algorithm 3 steps 2-4
                              │
                              │  EVENT bursts, partitioned by
                              │  shard_for(publish_id, n)
                              ▼
          ┌────────────┬────────────┬────────────┐
          │ worker 0   │ worker 1   │ worker n-1 │   (spawned processes,
          │ asyncio +  │ asyncio +  │ asyncio +  │    one per core, own
          │ Compiled-  │ Compiled-  │ Compiled-  │    CompiledMatcher)
          │ Matcher    │ Matcher    │ Matcher    │
          └────────────┴────────────┴────────────┘

**Snapshot fencing invariant.**  Every worker pipe is FIFO.  The acceptor
broadcasts a pickled :class:`~repro.summary.summary.BrokerSummary` under a
monotone *fence* token whenever the kept summary moved — any mutation
path: period close, a fallback-resync snapshot absorb, an unsubscribe —
and stamps every :class:`~repro.wire.worker.MatchRequest` with the fence
of the snapshot it was partitioned under.  Because snapshot and requests
travel the same FIFO pipe, a worker that sees fence ``F`` on a request has
already installed snapshot ``F``; if its installed token disagrees it
answers ``matched=None`` and the acceptor raises instead of routing on
stale matches.  The fence is *not* the summary generation:
``reset_merged_state`` swaps the summary object and restarts generations,
which could alias.

**What stays single-process.**  Subscription state, covered-id
suppression, period scheduling, delta chaining, dedup LRUs, delivery
fan-out and the outbox pump all stay in the acceptor: they are mutation-
heavy, ordering-sensitive, and cheap next to matching.  Workers hold no
authoritative state at all — killing them loses nothing but warm caches.

Backpressure reuses the existing accounting: each worker pipe allows a
bounded number of in-flight batches; a dispatch that would exceed it
counts a coalesced-write stall (``metrics.record_stall``) and waits, so
the soak's stall gauge covers worker pipes exactly like peer queues.
"""

from __future__ import annotations

import asyncio
import contextlib
import itertools
import logging
import multiprocessing
import pickle
from collections import deque
from typing import Deque, FrozenSet, List, Optional, Set, Tuple

from repro.model.events import Event
from repro.model.ids import SubscriptionId
from repro.obs.audit import AuditError
from repro.obs.metrics import MetricsRegistry
from repro.runtime.server import BrokerRuntime
from repro.runtime.shardworker import shard_worker_main
from repro.wire.worker import MatchReply, MatchRequest, SnapshotFrame, StopFrame, WorkerReady

__all__ = ["ShardedBrokerRuntime", "ShardError", "shard_for"]

log = logging.getLogger("repro.runtime.sharded")

#: In-flight match batches allowed per worker pipe before a dispatch
#: stalls.  Two keeps a worker busy while its reply drains (pipelining)
#: without letting an acceptor burst grow an unbounded pickle backlog.
MAX_INFLIGHT_BATCHES = 2

_MASK64 = (1 << 64) - 1


def shard_for(publish_id: int, shards: int) -> int:
    """The shard that matches ``publish_id`` — stable across processes,
    platforms and ``PYTHONHASHSEED``.

    The splitmix64 finalizer: publish ids are *structured* (a constant
    marker bit, an epoch byte that is near-constant within a run, a broker
    field drawn from a handful of values, and a low sequence counter — see
    ``EventRouter.next_publish_id``), so reducing them modulo ``n``
    directly would alias entire epochs onto one shard.  The finalizer's
    avalanche spreads every input bit over the output, giving a uniform
    spread even over sequential ids (chi-square-bounded by
    ``tests/runtime/test_sharding.py``).
    """
    if shards < 1:
        raise ValueError("shards must be >= 1")
    x = publish_id & _MASK64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK64
    x ^= x >> 31
    return x % shards


class ShardError(RuntimeError):
    """A shard worker died or broke the acceptor↔worker protocol.

    Deliberately loud (not a swallowed ``ConnectionError``): workers hold
    no authoritative state, so their only failure modes are a crash — in
    which case this broker can no longer match its share of events and
    must be treated as failed, exactly like the chaos model's whole-broker
    kill — or an acceptor-side protocol bug that must never be masked as
    an empty match result.
    """


class _ShardHandle:
    """Acceptor-side state for one worker: process, pipe, FIFO futures."""

    __slots__ = (
        "index", "process", "conn", "pending", "inflight", "send_lock",
        "events_matched", "batches", "dead",
    )

    def __init__(self, index: int, process, conn) -> None:
        self.index = index
        self.process = process
        self.conn = conn
        #: (request_id, future) in dispatch order — replies are FIFO.
        self.pending: Deque[Tuple[int, asyncio.Future]] = deque()
        self.inflight = asyncio.Semaphore(MAX_INFLIGHT_BATCHES)
        #: Serializes pipe writes (they run on executor threads) so frame
        #: order on the pipe equals dispatch order — the fencing invariant
        #: rides on it.
        self.send_lock = asyncio.Lock()
        self.events_matched = 0
        self.batches = 0
        self.dead = False


class ShardPool:
    """Spawned shard workers plus the dispatch/collect machinery.

    Pipe writes go through an executor thread under the handle's send
    lock: a blocking in-loop ``Connection.send`` could deadlock against a
    worker blocked writing a large reply (neither side draining), whereas
    a thread write keeps the event loop free to drain replies.
    """

    def __init__(self, shards: int, cache_size: int, stall_cb=None) -> None:
        if shards < 1:
            raise ValueError("shards must be >= 1")
        self.shards = shards
        self.cache_size = cache_size
        self._stall_cb = stall_cb
        self.handles: List[_ShardHandle] = []
        self.snapshot_broadcasts = 0
        self._request_ids = itertools.count(1)
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stopped = False

    async def start(self) -> None:
        """Spawn every worker and wait for their READY frames."""
        self._loop = asyncio.get_running_loop()
        ctx = multiprocessing.get_context("spawn")
        for index in range(self.shards):
            parent_conn, child_conn = ctx.Pipe(duplex=True)
            process = ctx.Process(
                target=shard_worker_main,
                args=(child_conn, index, self.cache_size),
                name=f"repro-shard-{index}",
                daemon=True,
            )
            process.start()
            child_conn.close()
            self.handles.append(_ShardHandle(index, process, parent_conn))
        ready = [
            self._expect_frame(handle, WorkerReady) for handle in self.handles
        ]
        await asyncio.gather(*ready)
        for handle in self.handles:
            self._loop.add_reader(
                handle.conn.fileno(), self._drain_replies, handle
            )

    async def _expect_frame(self, handle: _ShardHandle, kind) -> None:
        frame = await self._loop.run_in_executor(None, handle.conn.recv)
        if not isinstance(frame, kind):
            raise ShardError(
                f"shard {handle.index}: expected {kind.__name__}, "
                f"got {type(frame).__name__}"
            )

    # -- reply side (event-loop reader callback) -----------------------------

    def _drain_replies(self, handle: _ShardHandle) -> None:
        while True:
            try:
                if not handle.conn.poll():
                    return
                reply = handle.conn.recv()
            except (EOFError, OSError):
                self._fail_handle(handle, "shard worker pipe closed")
                return
            if not handle.pending:
                self._fail_handle(handle, "unsolicited shard reply")
                return
            request_id, future = handle.pending.popleft()
            if not isinstance(reply, MatchReply) or reply.request_id != request_id:
                self._fail_handle(
                    handle,
                    f"shard {handle.index} answered out of order "
                    f"(wanted request {request_id})",
                )
                return
            handle.events_matched = reply.events_matched
            if not future.done():
                future.set_result(reply)

    def _fail_handle(self, handle: _ShardHandle, reason: str) -> None:
        handle.dead = True
        with contextlib.suppress(OSError):
            self._loop.remove_reader(handle.conn.fileno())
        while handle.pending:
            _request_id, future = handle.pending.popleft()
            if not future.done():
                if self._stopped:
                    future.cancel()
                else:
                    future.set_exception(ShardError(reason))
        if not self._stopped:
            log.error("shard %d failed: %s", handle.index, reason)

    # -- send side -----------------------------------------------------------

    async def _send(self, handle: _ShardHandle, frame) -> None:
        if handle.dead:
            raise ShardError(f"shard {handle.index} is dead")
        await self._loop.run_in_executor(None, handle.conn.send, frame)

    async def broadcast_snapshot(self, fence: int, payload: bytes) -> None:
        """Install a new snapshot on every worker (caller holds the
        runtime's dispatch lock, so no match request interleaves)."""
        for handle in self.handles:
            async with handle.send_lock:
                await self._send(handle, SnapshotFrame(fence=fence, payload=payload))
        self.snapshot_broadcasts += 1

    async def dispatch(
        self, fence: int, events: List[Event], publish_ids: List[int]
    ) -> List[Tuple[_ShardHandle, List[int], asyncio.Future]]:
        """Partition one burst by publish-id hash and send the per-shard
        sub-bursts.  Returns collect() input; the caller must collect even
        on failure paths (the semaphores are released there)."""
        buckets = {}
        for position, publish_id in enumerate(publish_ids):
            buckets.setdefault(
                shard_for(publish_id, self.shards), []
            ).append(position)
        dispatches = []
        for shard in sorted(buckets):
            handle = self.handles[shard]
            positions = buckets[shard]
            if handle.inflight.locked() and self._stall_cb is not None:
                self._stall_cb()
            await handle.inflight.acquire()
            request_id = next(self._request_ids)
            future = self._loop.create_future()
            request = MatchRequest(
                request_id=request_id,
                fence=fence,
                events=tuple(events[i] for i in positions),
            )
            try:
                async with handle.send_lock:
                    handle.pending.append((request_id, future))
                    await self._send(handle, request)
            except BaseException:
                handle.inflight.release()
                with contextlib.suppress(ValueError):
                    handle.pending.remove((request_id, future))
                for previous_handle, _positions, _future in dispatches:
                    # Collect never runs on this path; do not leak permits.
                    previous_handle.inflight.release()
                raise
            dispatches.append((handle, positions, future))
        return dispatches

    async def collect(
        self,
        fence: int,
        dispatches: List[Tuple[_ShardHandle, List[int], asyncio.Future]],
        total: int,
    ) -> List[Set[SubscriptionId]]:
        """Await every reply and reassemble results in arrival order."""
        results: List[Optional[Set[SubscriptionId]]] = [None] * total
        failure: Optional[BaseException] = None
        for handle, positions, future in dispatches:
            try:
                reply = await future
            except BaseException as exc:  # keep draining: release permits
                failure = failure or exc
                continue
            finally:
                handle.inflight.release()
            handle.batches += 1
            if reply.matched is None or reply.fence != fence:
                failure = failure or ShardError(
                    f"shard {handle.index} fence violation: request fence "
                    f"{fence}, worker fence {reply.fence}"
                )
                continue
            for position, ids in zip(positions, reply.matched):
                results[position] = set(ids)
        if failure is not None:
            raise failure
        return results  # type: ignore[return-value]

    # -- lifecycle -----------------------------------------------------------

    async def stop(self) -> None:
        """Graceful: STOP frame, bounded join, then escalate."""
        if self._stopped:
            return
        self._stopped = True
        for handle in self.handles:
            if not handle.dead:
                with contextlib.suppress(OSError, ValueError):
                    self._loop.remove_reader(handle.conn.fileno())
                with contextlib.suppress(OSError, BrokenPipeError):
                    await self._loop.run_in_executor(
                        None, handle.conn.send, StopFrame()
                    )
        for handle in self.handles:
            await self._loop.run_in_executor(None, handle.process.join, 5.0)
            if handle.process.is_alive():
                handle.process.terminate()
                await self._loop.run_in_executor(None, handle.process.join, 5.0)
            handle.conn.close()
            self._fail_handle(handle, "pool stopped")

    def kill(self) -> None:
        """Abrupt: terminate worker processes where they stand (the chaos
        model's ``kill -9`` covers the whole broker, workers included)."""
        if self._stopped:
            return
        self._stopped = True
        for handle in self.handles:
            if self._loop is not None:
                with contextlib.suppress(OSError, ValueError):
                    self._loop.remove_reader(handle.conn.fileno())
            if handle.process.is_alive():
                handle.process.terminate()
            handle.conn.close()
            self._fail_handle(handle, "pool killed")


class ShardedBrokerRuntime(BrokerRuntime):
    """A :class:`BrokerRuntime` whose summary matches run in ``shards``
    worker processes.

    Drop-in everywhere the base runtime is accepted: same wire protocol,
    same control plane, same counters (``events_examined`` advances per
    matched event exactly like ``match_kept_many`` does), same paranoid
    auditor hooks — plus a cross-process parity audit: under
    ``REPRO_PARANOID=1`` the acceptor re-matches every burst locally and
    raises :class:`~repro.obs.audit.AuditError` on any divergence from the
    workers' answer.
    """

    def __init__(self, *args, shards: int = 2, **kwargs):
        super().__init__(*args, **kwargs)
        if shards < 1:
            raise ValueError("shards must be >= 1")
        self.shards = shards
        self._pool: Optional[ShardPool] = None
        #: Identity of the last broadcast snapshot: ``(id(summary),
        #: generation)``.  A strong ref to the summary object pins the id
        #: against reuse after ``reset_merged_state`` swaps objects.
        self._snapshot_key: Optional[Tuple[int, int]] = None
        self._snapshot_ref = None
        self._snapshot_fence = 0
        #: Serializes snapshot broadcasts with match dispatches: between
        #: deciding "workers hold fence F" and the last per-shard send, no
        #: other burst may broadcast F+1 into the same pipes.
        self._dispatch_lock = asyncio.Lock()

    # -- lifecycle -------------------------------------------------------------

    async def start(self, port: int = 0) -> int:
        pool = ShardPool(
            self.shards,
            self.broker.match_cache_size,
            stall_cb=self.metrics.record_stall,
        )
        await pool.start()
        self._pool = pool
        return await super().start(port)

    async def shutdown(self, drain: bool = True):
        path = await super().shutdown(drain=drain)
        if self._pool is not None:
            await self._pool.stop()
        return path

    async def kill(self) -> None:
        await super().kill()
        if self._pool is not None:
            self._pool.kill()

    # -- the sharded data plane ------------------------------------------------

    async def _process_burst(
        self, items: List[Tuple[Event, FrozenSet[int], int]]
    ) -> None:
        self.metrics.record_match_batch(len(items))
        await self._sharded_process(items)

    async def _publish_events(self, events: List[Event]) -> None:
        self.metrics.record_match_batch(len(events))
        router = self.router
        publish_ids = [router.next_publish_id(self.broker_id) for _ in events]
        if self.tracer.enabled:
            for event, publish_id in zip(events, publish_ids):
                self.tracer.record(
                    "publish", broker=self.broker_id, trace_id=publish_id,
                    attributes=len(event), batched=True,
                )
        await self._sharded_process(
            [
                (event, frozenset(), publish_id)
                for event, publish_id in zip(events, publish_ids)
            ]
        )

    async def _sharded_process(
        self, items: List[Tuple[Event, FrozenSet[int], int]]
    ) -> None:
        """Algorithm 3 for one burst with step 1 fanned to the workers.

        Mirrors ``EventRouter.process_batch`` exactly: the same
        ``first_routing_of`` dedup up front (also the idempotence guard —
        a duplicate arriving on another connection *during* the await is
        already marked routed), the same ``events_examined`` accounting,
        and the identical steps 2–4 via ``EventRouter.route_matched``.
        """
        broker = self.broker
        fresh_items = [
            item for item in items if broker.first_routing_of(item[2])
        ]
        if not fresh_items:
            return
        events = [event for event, _brocli, _pid in fresh_items]
        publish_ids = [pid for _event, _brocli, pid in fresh_items]
        tracer = self.tracer
        if tracer.enabled:
            with tracer.span(
                "shard_match", broker=self.broker_id,
                trace_id=publish_ids[0], batch=len(fresh_items),
                shards=self.shards,
            ) as span:
                matched_sets = await self._match_remote(events, publish_ids)
                span.note(matched=sum(len(m) for m in matched_sets))
        else:
            matched_sets = await self._match_remote(events, publish_ids)
        if self.paranoid:
            # Cross-process parity audit: the acceptor's own matcher is
            # the single-process reference; any divergence is a snapshot
            # staleness or partitioning bug, never survivable.  (This also
            # advances events_examined, replacing the bump below.)
            local_sets = broker.match_kept_many(events)
            for publish_id, remote, local in zip(
                publish_ids, matched_sets, local_sets
            ):
                if remote != local:
                    raise AuditError(
                        f"shard parity: publish {publish_id:#x} matched "
                        f"{sorted(remote)} in workers but {sorted(local)} "
                        f"in the acceptor"
                    )
        else:
            broker.events_examined += len(events)
        self.router.route_matched(broker, fresh_items, matched_sets)

    async def _match_remote(
        self, events: List[Event], publish_ids: List[int]
    ) -> List[Set[SubscriptionId]]:
        broker = self.broker
        async with self._dispatch_lock:
            summary = broker.kept_summary
            key = (id(summary), summary.generation)
            if key != self._snapshot_key:
                # Pickle *inside* the lock and before any await: the bytes
                # must capture the summary exactly as this burst will be
                # audited against; a concurrent absorb lands either before
                # (new key, fresh broadcast) or after (next burst's
                # broadcast) — never halfway into the payload.
                self._snapshot_fence += 1
                payload = pickle.dumps(summary)
                await self._pool.broadcast_snapshot(self._snapshot_fence, payload)
                self._snapshot_key = key
                self._snapshot_ref = summary
            fence = self._snapshot_fence
            dispatches = await self._pool.dispatch(fence, events, publish_ids)
        return await self._pool.collect(fence, dispatches, len(events))

    # -- observability ---------------------------------------------------------

    def collect_metrics(self) -> MetricsRegistry:
        registry = super().collect_metrics()
        registry.gauge("runtime.shards").set(self.shards)
        if self._pool is not None:
            registry.gauge("runtime.shard_snapshot_broadcasts").set(
                self._pool.snapshot_broadcasts
            )
            registry.gauge("runtime.shard_batches").set(
                sum(handle.batches for handle in self._pool.handles)
            )
            registry.gauge("runtime.shard_events_matched").set(
                sum(handle.events_matched for handle in self._pool.handles)
            )
            for handle in self._pool.handles:
                registry.gauge(
                    f"runtime.shard.{handle.index}.batches"
                ).set(handle.batches)
                registry.gauge(
                    f"runtime.shard.{handle.index}.events_matched"
                ).set(handle.events_matched)
        return registry

    def __repr__(self) -> str:
        return (
            f"ShardedBrokerRuntime(id={self.broker_id}, port={self.port}, "
            f"shards={self.shards}, subs={len(self.broker.store)}, "
            f"periods={self.periods_run})"
        )
