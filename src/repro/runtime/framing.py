"""Length-prefixed frame protocol for the live runtime.

Every frame on a broker-to-broker or client-to-broker TCP connection is::

    +----------------------+-------------------------------+
    | length: u32 (BE)     | payload: MessageCodec bytes   |
    +----------------------+-------------------------------+

where ``payload`` is exactly one encoded :class:`~repro.wire.messages
.Message` (kind tag + body — the same bytes the simulator charges per
hop, so live and simulated byte accounting agree).  The prefix keeps the
stream self-delimiting; the codec's own trailing-bytes check keeps it
self-validating.

Defensive rules, enforced on *both* directions:

* a length of zero is invalid (no message encodes to zero bytes — the
  kind tag alone is one byte), and is rejected before any read;
* a length above :data:`MAX_FRAME_BYTES` is rejected *from the prefix
  alone* — a corrupt or adversarial prefix can never make the reader
  allocate or wait for gigabytes;
* a stream ending mid-frame (header or payload) raises
  :class:`~repro.wire.codec.CodecError`; ending cleanly *between* frames
  is a normal EOF (``None``).

:class:`FrameAssembler` is the sans-io incremental decoder (fed arbitrary
chunks, yields complete payloads) used by the property tests;
:func:`read_frame` / :func:`write_frame` are the asyncio stream versions;
:class:`FrameConnection` pairs them with a :class:`~repro.wire.messages
.MessageCodec` to move typed messages.
"""

from __future__ import annotations

import asyncio
from collections import deque
from typing import Deque, List, Optional, Sequence

from repro.wire.codec import CodecError
from repro.wire.messages import Message, MessageCodec

__all__ = [
    "FrameAssembler",
    "FrameConnection",
    "LENGTH_BYTES",
    "MAX_FRAME_BYTES",
    "READ_CHUNK_BYTES",
    "encode_frame",
    "read_frame",
    "write_frame",
    "write_frames",
]

#: Width of the big-endian length prefix.
LENGTH_BYTES = 4

#: How much :class:`FrameConnection` pulls off the socket per read.  One
#: ``read()`` of a busy stream returns *many* small frames at once, which
#: is what makes :meth:`FrameConnection.recv_burst` a real batch: the
#: frames were already paid for by a single syscall.
READ_CHUNK_BYTES = 256 * 1024

#: Hard cap on one frame's payload.  Summaries are the largest messages;
#: at the paper's scales they are kilobytes, so 16 MiB leaves three
#: orders of magnitude of headroom while bounding what a corrupt prefix
#: can demand from the reader.
MAX_FRAME_BYTES = 16 * 1024 * 1024


def _check_length(length: int, max_frame_bytes: int) -> None:
    if length == 0:
        raise CodecError("zero-length frame")
    if length > max_frame_bytes:
        raise CodecError(
            f"frame of {length} bytes exceeds the {max_frame_bytes}-byte cap "
            f"(corrupt length prefix?)"
        )


def encode_frame(payload: bytes, max_frame_bytes: int = MAX_FRAME_BYTES) -> bytes:
    """Prefix one encoded message with its length."""
    _check_length(len(payload), max_frame_bytes)
    return len(payload).to_bytes(LENGTH_BYTES, "big") + payload


class FrameAssembler:
    """Incremental frame decoder, tolerant of arbitrary chunking.

    Feed it whatever the transport produced — half a length prefix, three
    frames and a bit of a fourth — and it returns every *complete* payload
    while buffering the rest.  Oversized/zero length prefixes raise
    :class:`CodecError` as soon as the prefix is complete, before waiting
    for (or buffering) the bogus payload.
    """

    __slots__ = ("_buffer", "_max")

    def __init__(self, max_frame_bytes: int = MAX_FRAME_BYTES):
        self._buffer = bytearray()
        self._max = max_frame_bytes

    @property
    def buffered(self) -> int:
        """Bytes held waiting for the rest of a frame."""
        return len(self._buffer)

    def at_boundary(self) -> bool:
        """True when no partial frame is buffered (a clean EOF point)."""
        return not self._buffer

    def feed(self, data: bytes) -> List[bytes]:
        """Absorb ``data``; return the payloads completed by it (in order)."""
        self._buffer.extend(data)
        frames: List[bytes] = []
        buffer = self._buffer
        while len(buffer) >= LENGTH_BYTES:
            length = int.from_bytes(buffer[:LENGTH_BYTES], "big")
            _check_length(length, self._max)
            end = LENGTH_BYTES + length
            if len(buffer) < end:
                break
            frames.append(bytes(buffer[LENGTH_BYTES:end]))
            del buffer[:end]
        return frames

    def finish(self) -> None:
        """Signal EOF: raises if the stream died mid-frame."""
        if self._buffer:
            raise CodecError(
                f"stream ended mid-frame with {len(self._buffer)} buffered bytes"
            )


async def read_frame(
    reader: asyncio.StreamReader, max_frame_bytes: int = MAX_FRAME_BYTES
) -> Optional[bytes]:
    """Read one frame payload; None on clean EOF between frames.

    A connection dropped mid-header or mid-payload raises
    :class:`CodecError` — the caller must treat the peer's state as
    unknown, not as "no more messages".
    """
    try:
        header = await reader.readexactly(LENGTH_BYTES)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # clean EOF on a frame boundary
        raise CodecError(
            f"stream ended mid-header ({len(exc.partial)}/{LENGTH_BYTES} bytes)"
        ) from exc
    length = int.from_bytes(header, "big")
    _check_length(length, max_frame_bytes)
    try:
        return await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise CodecError(
            f"stream ended mid-frame ({len(exc.partial)}/{length} payload bytes)"
        ) from exc


async def write_frame(
    writer: asyncio.StreamWriter,
    payload: bytes,
    max_frame_bytes: int = MAX_FRAME_BYTES,
) -> None:
    """Write one frame and wait for the transport's flow control.

    The ``drain()`` is what couples a slow receiver back to the sender:
    with the receiver's socket buffer full, drain blocks, the sender's
    bounded queue fills, and *its* producers block in turn.
    """
    writer.write(encode_frame(payload, max_frame_bytes))
    await writer.drain()


async def write_frames(
    writer: asyncio.StreamWriter,
    payloads: Sequence[bytes],
    max_frame_bytes: int = MAX_FRAME_BYTES,
) -> None:
    """Write many frames with one buffered write and one drain.

    The coalesced form of :func:`write_frame`: every payload is
    length-prefixed individually (the stream stays self-delimiting) but
    the kernel sees a single buffer, so a drain of N queued messages
    costs one syscall instead of N.  Flow-control semantics are
    unchanged — the single ``drain()`` still blocks on a slow receiver.
    """
    if not payloads:
        return
    writer.write(
        b"".join(encode_frame(payload, max_frame_bytes) for payload in payloads)
    )
    await writer.drain()


class FrameConnection:
    """One TCP connection moving typed :class:`Message` frames.

    Reads are *chunked*: the connection pulls up to
    :data:`READ_CHUNK_BYTES` per socket read into a
    :class:`FrameAssembler` and hands out the decoded messages one
    (:meth:`recv`) or many (:meth:`recv_burst`) at a time.  A burst never
    waits for more than the first message — it simply returns whatever a
    single read already delivered, which is the natural batch unit for
    the broker's dispatch loop.
    """

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        codec: MessageCodec,
        max_frame_bytes: int = MAX_FRAME_BYTES,
    ):
        self._reader = reader
        self._writer = writer
        self.codec = codec
        self.max_frame_bytes = max_frame_bytes
        self._assembler = FrameAssembler(max_frame_bytes)
        self._payloads: Deque[bytes] = deque()
        self._eof = False

    def peer_closed(self) -> bool:
        """True once the remote end has shut its side of the stream.

        On a one-directional lane (peer links never receive replies) this
        is the only cheap liveness signal: EOF on the otherwise-unused
        read side means further writes would vanish into a dead socket.
        """
        return self._reader.at_eof()

    async def send(self, message: Message) -> None:
        await write_frame(self._writer, self.codec.encode(message), self.max_frame_bytes)

    async def send_many(self, messages: Sequence[Message]) -> None:
        """Encode and transmit many messages as one coalesced write."""
        await write_frames(
            self._writer,
            [self.codec.encode(message) for message in messages],
            self.max_frame_bytes,
        )

    async def _fill(self) -> bool:
        """One socket read into the assembler; False on EOF.

        EOF while a partial frame is buffered raises :class:`CodecError`
        (the peer's state is unknown, not "no more messages") — the same
        contract :func:`read_frame` enforces."""
        if self._eof:
            return False
        data = await self._reader.read(READ_CHUNK_BYTES)
        if not data:
            self._eof = True
            self._assembler.finish()  # raises on a mid-frame death
            return False
        self._payloads.extend(self._assembler.feed(data))
        return True

    async def recv(self) -> Optional[Message]:
        """The next message, or None on clean EOF."""
        while not self._payloads:
            if not await self._fill():
                return None
        return self.codec.decode(self._payloads.popleft())

    async def recv_burst(self, max_messages: int) -> List[Message]:
        """At least one message (unless EOF: ``[]``), at most
        ``max_messages`` — without ever waiting beyond the first.

        Everything a single socket read produced beyond the first frame
        is "free" batch material; frames past ``max_messages`` stay
        buffered for the next call (ordering is preserved)."""
        while not self._payloads:
            if not await self._fill():
                return []
        decode = self.codec.decode
        payloads = self._payloads
        return [
            decode(payloads.popleft())
            for _ in range(min(max_messages, len(payloads)))
        ]

    async def close(self) -> None:
        try:
            self._writer.close()
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            pass  # the peer beat us to it

    def __repr__(self) -> str:
        peer = self._writer.get_extra_info("peername")
        return f"FrameConnection(peer={peer!r})"
