"""Live asyncio runtime: the paper's system on real TCP sockets.

The simulator (:mod:`repro.network`, :mod:`repro.broker`) proves the
algorithms and reproduces the figures; this package runs the *same*
engine code — the same :class:`~repro.broker.routing.EventRouter`, the
same propagation target policy, the same
:class:`~repro.wire.messages.MessageCodec` bytes — behind real brokers:

* :mod:`repro.runtime.framing` — length-prefixed frame protocol
  (u32 length + one encoded message) with hard size caps;
* :mod:`repro.runtime.server` — :class:`BrokerRuntime`, one live broker
  with bounded-queue backpressure and graceful drain-to-snapshot;
* :mod:`repro.runtime.client` — producer/subscriber sessions with the
  PING/PONG completion barrier;
* :mod:`repro.runtime.cluster` — :class:`LocalCluster`, a whole overlay
  on localhost ports with simulator-faithful coordinated periods;
* :mod:`repro.runtime.sharded` — :class:`ShardedBrokerRuntime`, the
  multicore broker: acceptor-owned control plane, summary matching fanned
  to one worker process per core under snapshot fencing (docs §9).

Console entry points: ``repro-broker`` (one broker) and ``repro-cluster``
(a demo overlay).  See docs/architecture.md section 7 for the live-vs-
simulated contract and ``tests/runtime/test_parity.py`` for the proof
that both substrates deliver identical event sets.
"""

from repro.runtime.chaos import ChaosController, run_scenario_live
from repro.runtime.client import ProducerSession, SubscriberSession, SubscribeError
from repro.runtime.cluster import LocalCluster
from repro.runtime.framing import (
    FrameAssembler,
    FrameConnection,
    LENGTH_BYTES,
    MAX_FRAME_BYTES,
    encode_frame,
    read_frame,
    write_frame,
)
from repro.runtime.sharded import ShardedBrokerRuntime, shard_for
from repro.runtime.server import (
    BrokerRuntime,
    ClientSession,
    DEFAULT_QUEUE_FRAMES,
    PeerLink,
    RuntimeNetwork,
    named_topology,
)

__all__ = [
    "BrokerRuntime",
    "ChaosController",
    "ClientSession",
    "DEFAULT_QUEUE_FRAMES",
    "FrameAssembler",
    "FrameConnection",
    "LENGTH_BYTES",
    "LocalCluster",
    "MAX_FRAME_BYTES",
    "PeerLink",
    "ProducerSession",
    "RuntimeNetwork",
    "ShardedBrokerRuntime",
    "SubscribeError",
    "SubscriberSession",
    "encode_frame",
    "named_topology",
    "read_frame",
    "run_scenario_live",
    "shard_for",
    "write_frame",
]
