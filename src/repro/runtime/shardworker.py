"""Shard worker process: one asyncio loop matching against a read-only
compiled snapshot.

This module is the spawn target of
:class:`~repro.runtime.sharded.ShardedBrokerRuntime` and deliberately
imports only what matching needs (no server, no cluster, no networkx
topologies) so the per-worker spawn cost stays at interpreter start plus
the summary/model import.

Protocol (see :mod:`repro.wire.worker`): the worker sends one
:class:`~repro.wire.worker.WorkerReady`, then loops over its pipe —

* :class:`~repro.wire.worker.SnapshotFrame` → unpickle the
  :class:`~repro.summary.summary.BrokerSummary`, compile a fresh
  :class:`~repro.summary.compiled.CompiledMatcher`, install the fence
  token.  Compilation happens *here*, not in the acceptor: the compiled
  tables hold pattern-method closures that do not pickle, and compiling
  per worker keeps each core's matcher cache-local anyway.
* :class:`~repro.wire.worker.MatchRequest` → fence check, then
  ``match_many`` over the sub-burst; reply in request order (the pipe is
  FIFO, the acceptor relies on it).
* :class:`~repro.wire.worker.StopFrame` / EOF → exit.

A fence mismatch replies ``matched=None`` rather than raising: the
acceptor owns the protocol-error decision, and a worker that dies on the
first bad frame would take every in-flight request down with it.
"""

from __future__ import annotations

import asyncio
import pickle
import os
from multiprocessing.connection import Connection

from repro.summary.compiled import CompiledMatcher
from repro.wire.worker import (
    MatchReply,
    MatchRequest,
    SnapshotFrame,
    StopFrame,
    WorkerReady,
)

__all__ = ["shard_worker_main"]


async def _wait_readable(conn: Connection) -> None:
    """Park until the pipe has at least one frame (edge-triggered via the
    loop's reader callback; removed immediately so recv stays blocking-free
    through ``poll``)."""
    loop = asyncio.get_running_loop()
    ready = loop.create_future()

    def _on_readable() -> None:
        if not ready.done():
            ready.set_result(None)

    loop.add_reader(conn.fileno(), _on_readable)
    try:
        await ready
    finally:
        loop.remove_reader(conn.fileno())


async def _worker_loop(conn: Connection, shard: int, cache_size: int) -> None:
    matcher: CompiledMatcher | None = None
    fence = -1
    events_matched = 0
    conn.send(WorkerReady(shard=shard, pid=os.getpid()))
    while True:
        while not conn.poll():
            await _wait_readable(conn)
        try:
            frame = conn.recv()
        except (EOFError, OSError):
            return
        if isinstance(frame, StopFrame):
            return
        if isinstance(frame, SnapshotFrame):
            summary = pickle.loads(frame.payload)
            matcher = CompiledMatcher(summary, cache_size=cache_size)
            fence = frame.fence
        elif isinstance(frame, MatchRequest):
            if matcher is None or frame.fence != fence:
                conn.send(MatchReply(
                    request_id=frame.request_id, shard=shard, fence=fence,
                    matched=None, events_matched=events_matched,
                ))
                continue
            matched = tuple(
                frozenset(ids) for ids in matcher.match_many(list(frame.events))
            )
            events_matched += len(frame.events)
            conn.send(MatchReply(
                request_id=frame.request_id, shard=shard, fence=fence,
                matched=matched, events_matched=events_matched,
            ))
        # Unknown frames are ignored: forward compatibility for same-host
        # version skew during rolling development is not a goal, but dying
        # on them would turn a programming error into a hung acceptor.


def shard_worker_main(conn: Connection, shard: int, cache_size: int) -> None:
    """Spawn entry point (must stay module-level and picklable by name)."""
    try:
        asyncio.run(_worker_loop(conn, shard, cache_size))
    except KeyboardInterrupt:
        pass
    finally:
        conn.close()
