"""Event dissemination latency (section 4.3's time/load trade-off).

The paper reasons about routing alternatives that "trade-off event
processing time with load distribution among brokers" but reports only hop
counts.  With the timed network substrate we can measure the time side:

* **summary / plain** — Algorithm 3 with the default highest-degree
  forwarding, on a seeded-latency backbone;
* **summary / virtual degrees** — the section-6 load-balancing router;
* **siena (model)** — reverse-path routing completes when the farthest
  matched broker is reached: ``max over matched of path_delay(publisher,
  m)`` (per-link delays identical to the summary runs).

Latency here is publish-to-last-matched-delivery, in simulated
milliseconds, for popularity-controlled events.
"""

from __future__ import annotations

import random
from typing import Optional, Sequence

from repro.broker.system import SummaryPubSub
from repro.experiments.common import ExperimentResult
from repro.ext.virtual_degrees import enable_virtual_degrees
from repro.network.backbone import cable_wireless_24
from repro.network.latency import LatencyModel, SeededLatency
from repro.network.topology import Topology
from repro.workload.config import TABLE2_POPULARITIES
from repro.workload.popularity import (
    draw_matched_sets,
    popularity_event,
    popularity_schema,
    probe_subscription,
)

__all__ = ["run", "siena_event_latency"]


def _timed_probe_system(
    topology: Topology, latency: LatencyModel, virtual: bool
) -> SummaryPubSub:
    system = SummaryPubSub(topology, popularity_schema(), latency=latency)
    for broker_id in topology.brokers:
        system.subscribe(broker_id, probe_subscription(broker_id))
    system.run_propagation_period()
    if virtual:
        enable_virtual_degrees(system, tolerance=1)
    return system


def siena_event_latency(
    topology: Topology,
    latency: LatencyModel,
    publisher: int,
    matched: Sequence[int],
) -> float:
    """Reverse-path completion time: the farthest matched broker governs."""
    return max(
        (latency.path_delay(topology, publisher, target) for target in matched),
        default=0.0,
    )


def _mean_summary_latency(
    system: SummaryPubSub, popularity: float, events_per_broker: int, seed: int
) -> float:
    topology = system.topology
    total = 0.0
    count = 0
    for publisher in topology.brokers:
        for matched in draw_matched_sets(
            topology.num_brokers, popularity, events_per_broker, seed + publisher
        ):
            outcome = system.publish(publisher, popularity_event(matched))
            assert outcome.latency_ms is not None
            total += outcome.latency_ms
            count += 1
    return total / count


def _mean_siena_latency(
    topology: Topology,
    latency: LatencyModel,
    popularity: float,
    events_per_broker: int,
    seed: int,
) -> float:
    rng = random.Random(seed)
    n = topology.num_brokers
    size = max(1, round(popularity * n))
    total = 0.0
    count = 0
    for publisher in topology.brokers:
        for _ in range(events_per_broker):
            matched = rng.sample(range(n), size)
            total += siena_event_latency(topology, latency, publisher, matched)
            count += 1
    return total / count


def run(
    topology: Optional[Topology] = None,
    popularities: Sequence[float] = TABLE2_POPULARITIES,
    quick: bool = True,
    seed: int = 0,
) -> ExperimentResult:
    topology = topology if topology is not None else cable_wireless_24()
    latency = SeededLatency(lo=2.0, hi=40.0, seed=seed)
    events_per_broker = 3 if quick else 50

    result = ExperimentResult(
        name="Event latency",
        description=(
            "Mean publish-to-last-delivery time (ms) on a seeded-latency "
            f"backbone ({topology.num_brokers} brokers)."
        ),
        columns=["popularity%", "summary", "summary+vdeg", "siena"],
    )
    plain = _timed_probe_system(topology, latency, virtual=False)
    rotated = _timed_probe_system(topology, latency, virtual=True)
    for popularity in popularities:
        result.add_row(
            **{
                "popularity%": int(popularity * 100),
                "summary": round(
                    _mean_summary_latency(plain, popularity, events_per_broker, seed), 1
                ),
                "summary+vdeg": round(
                    _mean_summary_latency(rotated, popularity, events_per_broker, seed), 1
                ),
                "siena": round(
                    _mean_siena_latency(
                        topology, latency, popularity, events_per_broker, seed
                    ),
                    1,
                ),
            }
        )
    result.notes.append(
        "siena's reverse paths complete at the farthest matched broker; the "
        "summary chain serializes cluster visits, so it trades latency for "
        "the hop savings of figure 10."
    )
    return result


def main() -> None:  # pragma: no cover - CLI convenience
    print(run(quick=False))


if __name__ == "__main__":  # pragma: no cover
    main()
