"""Figure 9 — mean hops for subscription propagation.

Sweep: subsumption probability in {10, 25, 50, 75, 90}%.  Series:

* ``siena``   — expected broker-to-broker forwards for propagating one
  subscription from *every* broker (probabilistic pruned flooding; at
  subsumption 0 this is exactly n x (n-1), the paper's "24 times 23"
  worst case);
* ``summary`` — measured hops of one Algorithm-2 period, which is
  independent of subsumption: every broker transmits at most once, so the
  count is always below the number of brokers.

Paper's claims to reproduce: a large gap (hundreds vs ~20), with the
summary line flat.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.broker.system import SummaryPubSub
from repro.experiments.common import ExperimentResult
from repro.model.parser import parse_subscription
from repro.network.backbone import cable_wireless_24
from repro.network.topology import Topology
from repro.siena.probmodel import SienaProbModel
from repro.workload.config import TABLE2_SUBSUMPTIONS
from repro.workload.generator import WorkloadGenerator
from repro.workload.config import WorkloadConfig

__all__ = ["run", "measure_summary_hops"]


def measure_summary_hops(topology: Topology, seed: int = 0) -> int:
    """Hops of one full Algorithm-2 propagation period."""
    config = WorkloadConfig(sigma=1)
    generator = WorkloadGenerator(config, seed=seed)
    system = SummaryPubSub(topology, generator.schema)
    for broker_id in topology.brokers:
        system.subscribe(broker_id, generator.subscription())
    snapshot = system.run_propagation_period()
    return snapshot["hops"]


def run(
    topology: Optional[Topology] = None,
    subsumptions: Sequence[float] = TABLE2_SUBSUMPTIONS,
    quick: bool = True,
    seed: int = 0,
) -> ExperimentResult:
    topology = topology if topology is not None else cable_wireless_24()
    trials = 20 if quick else 200

    result = ExperimentResult(
        name="Figure 9",
        description=(
            "Mean broker-to-broker hops to propagate one subscription from "
            f"every broker ({topology.num_brokers} brokers)."
        ),
        columns=["subsumption%", "siena", "summary"],
    )
    summary_hops = measure_summary_hops(topology, seed)
    for q in subsumptions:
        model = SienaProbModel(topology, max_subsumption=q, seed=seed)
        result.add_row(
            **{
                "subsumption%": int(q * 100),
                "siena": model.mean_propagation_hops(trials=trials),
                "summary": summary_hops,
            }
        )
    result.notes.append(
        f"summary hops are constant: each broker transmits at most once per "
        f"period (< {topology.num_brokers} brokers)."
    )
    return result


def main() -> None:  # pragma: no cover - CLI convenience
    print(run(quick=False))


if __name__ == "__main__":  # pragma: no cover
    main()
