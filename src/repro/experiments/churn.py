"""Churn dynamics: summary bloat under unsubscription and the refresh fix.

The paper elides summary maintenance ("Because of space limitation a
detailed discussion for maintaining the summaries is omitted"), but any
deployment faces it: COARSE rows cannot re-narrow when members leave, and
remote brokers keep dead ids until told otherwise.  This experiment runs
multiple periods of subscribe/unsubscribe churn and tracks:

* **live storage efficiency** — total kept-summary bytes per live
  subscription, which degrades as dead ids and over-wide rows accumulate;
* **dead-id count** — stale entries sitting in remote summaries;
* the same after a **full refresh** (rebuild + re-propagate), which
  restores both to fresh-build levels.

The output is the design justification for
:meth:`repro.broker.system.SummaryPubSub.run_full_refresh` and the
rebuild threshold in :class:`repro.summary.maintenance.MaintainedSummary`.
"""

from __future__ import annotations

import random
from typing import List, Optional, Tuple

from repro.broker.system import SummaryPubSub
from repro.experiments.common import ExperimentResult
from repro.network.backbone import cable_wireless_24
from repro.network.topology import Topology
from repro.workload.config import WorkloadConfig
from repro.workload.generator import WorkloadGenerator

__all__ = ["run"]


def _dead_ids(system: SummaryPubSub) -> int:
    """Stale subscription ids present in kept summaries across brokers."""
    live = {
        sid
        for broker in system.brokers.values()
        for sid in broker.store.ids()
    }
    dead = 0
    for broker in system.brokers.values():
        dead += sum(
            1 for sid in broker.kept_summary.all_ids() if sid not in live
        )
    return dead


def run(
    topology: Optional[Topology] = None,
    periods: int = 6,
    arrivals_per_period: int = 8,
    churn_fraction: float = 0.5,
    subsumption: float = 0.5,
    quick: bool = True,
    seed: int = 0,
) -> ExperimentResult:
    topology = topology if topology is not None else cable_wireless_24()
    if not quick:
        periods, arrivals_per_period = 10, 20
    generator = WorkloadGenerator(
        WorkloadConfig(subsumption=subsumption), seed=seed
    )
    # Pinned to the classic full-summary path: this experiment documents
    # the bloat-then-refresh dynamics that motivate delta propagation —
    # delta mode ships removals incrementally, so dead ids would never
    # accumulate (see repro.experiments.propagation_bytes for the
    # delta-mode contrast).
    system = SummaryPubSub(
        topology, generator.schema,
        propagation_mode="full", suppress_covered=False,
    )
    rng = random.Random(seed)
    live: List[Tuple[int, object]] = []  # (broker, sid)

    result = ExperimentResult(
        name="Churn dynamics",
        description=(
            f"{periods} periods of churn on {topology.num_brokers} brokers "
            f"({arrivals_per_period} arrivals/broker/period, "
            f"{int(churn_fraction * 100)}% as many departures)."
        ),
        columns=["period", "live_subs", "dead_ids", "bytes_per_live", "phase"],
    )

    def snapshot(period_label, phase):
        live_count = sum(len(b.store) for b in system.brokers.values())
        storage = system.total_summary_storage()
        result.add_row(
            period=period_label,
            live_subs=live_count,
            dead_ids=_dead_ids(system),
            bytes_per_live=round(storage / max(1, live_count), 1),
            phase=phase,
        )

    for period in range(1, periods + 1):
        for broker_id in topology.brokers:
            for subscription in generator.subscriptions(arrivals_per_period):
                sid = system.subscribe(broker_id, subscription)
                live.append((broker_id, sid))
        departures = int(arrivals_per_period * topology.num_brokers * churn_fraction)
        rng.shuffle(live)
        for _ in range(min(departures, max(0, len(live) - 1))):
            broker_id, sid = live.pop()
            system.unsubscribe(broker_id, sid)
        system.run_propagation_period()
        snapshot(period, "churning")

    system.run_full_refresh()
    snapshot(periods, "refreshed")

    result.notes.append(
        "dead ids and bytes/live grow monotonically under churn; the full "
        "refresh returns dead ids to 0 and bytes/live to fresh-build level."
    )
    return result


def main() -> None:  # pragma: no cover - CLI convenience
    print(run(quick=False))


if __name__ == "__main__":  # pragma: no cover
    main()
