"""Command-line entry point reproducing every paper figure and table.

Usage::

    repro-experiments                # everything, quick mode
    repro-experiments --full         # paper-scale parameters
    repro-experiments fig8 fig10     # a subset
    python -m repro.experiments.runner fig9

Quick mode shrinks sweeps/trials but preserves every qualitative claim;
full mode uses the paper's parameters (sigma up to 1000, 24,000 events for
figure 10) and takes several minutes.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, List

from repro.experiments import (
    churn,
    federation,
    fig8_bandwidth,
    fig9_prop_hops,
    fig10_event_hops,
    fig11_storage,
    latency,
    propagation_bytes,
    robustness,
    scale,
    scenarios,
    sensitivity,
    tables,
    traced_run,
)
from repro.experiments.common import ExperimentResult

__all__ = ["main", "run_all", "EXPERIMENTS"]

EXPERIMENTS: Dict[str, Callable[[bool], ExperimentResult]] = {
    "table1": lambda quick: tables.table1_symbols(),
    "table2": lambda quick: tables.table2_values(),
    "fig8": lambda quick: fig8_bandwidth.run(quick=quick),
    "fig9": lambda quick: fig9_prop_hops.run(quick=quick),
    "fig10": lambda quick: fig10_event_hops.run(quick=quick),
    "fig11": lambda quick: fig11_storage.run(quick=quick),
    "sec524": lambda quick: tables.computational_demands(
        sizes=(200, 400, 800) if quick else (200, 400, 800, 1600, 3200)
    ),
    "sensitivity": lambda quick: sensitivity.run(quick=quick),
    "latency": lambda quick: latency.run(quick=quick),
    "scale": lambda quick: scale.run(quick=quick),
    "robustness": lambda quick: robustness.run(quick=quick),
    "churn": lambda quick: churn.run(quick=quick),
    "propbytes": lambda quick: propagation_bytes.run(quick=quick),
    "federation": lambda quick: federation.run(quick=quick),
    "traced": lambda quick: traced_run.run(quick=quick),
    "scenarios": lambda quick: scenarios.run(quick=quick),
}


def run_all(names: List[str], quick: bool) -> List[ExperimentResult]:
    results = []
    for name in names:
        try:
            experiment = EXPERIMENTS[name]
        except KeyError:
            raise SystemExit(
                f"unknown experiment {name!r}; choices: {', '.join(EXPERIMENTS)}"
            ) from None
        results.append(experiment(quick))
    return results


def main(argv: List[str] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Reproduce the paper's figures and tables."
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        default=list(EXPERIMENTS),
        help=f"which to run (default: all). Choices: {', '.join(EXPERIMENTS)}",
    )
    parser.add_argument(
        "--full",
        action="store_true",
        help="paper-scale parameters (slower; default is quick mode)",
    )
    args = parser.parse_args(argv)
    names = args.experiments or list(EXPERIMENTS)
    for result in run_all(names, quick=not args.full):
        print(result)
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
