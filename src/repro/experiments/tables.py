"""Tables 1-2 and the section 5.2.4 computational-demands study.

Table 1 defines the cost-model symbols and table 2 their experimental
values — reproduced here as a printable table backed by
:class:`repro.workload.config.WorkloadConfig`, so the values the code
actually uses are the ones displayed.

Section 5.2.4 has no figure; it reports the matching-time model
(T1 + T2 = O(N)) and expects summary matching to be faster than
subscription-centric matching.  :func:`computational_demands` measures
both matchers at growing subscription counts and reports the analytic T1
alongside, so the O(N) claim and the constant-factor claim are both
checkable.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.analysis.complexity import linear_fit_r2, measure_matching_scaling
from repro.analysis.cost_model import expected_structure_counts, matching_step1_cost
from repro.experiments.common import ExperimentResult
from repro.workload.config import WorkloadConfig

__all__ = ["table1_symbols", "table2_values", "computational_demands"]


def table1_symbols() -> ExperimentResult:
    """Table 1: parameter definitions."""
    result = ExperimentResult(
        name="Table 1",
        description="Cost-model parameter definitions.",
        columns=["symbol", "meaning"],
    )
    for symbol, meaning in (
        ("nt", "total attribute names in the event/subscription type"),
        ("S", "average outstanding subscriptions per broker"),
        ("sigma", "average new per-broker subscriptions per period"),
        ("nas", "arithmetic attributes per subscription"),
        ("nsr", "rows in AACS_SR per arithmetic attribute"),
        ("ne", "rows in AACS_E per arithmetic attribute"),
        ("La", "subscription-id list entries per arithmetic attribute"),
        ("nss", "string attributes per subscription"),
        ("nr", "rows in SACS per string attribute"),
        ("Ls", "subscription-id list entries per string attribute"),
        ("ssv", "average string value size (bytes)"),
        ("sst", "storage size of an arithmetic value (bytes)"),
        ("sid", "storage size of a subscription id (bytes)"),
        ("E", "average incoming events per broker"),
        ("nae", "arithmetic attributes per event"),
        ("nse", "string attributes per event"),
    ):
        result.add_row(symbol=symbol, meaning=meaning)
    return result


def table2_values(config: Optional[WorkloadConfig] = None) -> ExperimentResult:
    """Table 2: the values used, read from the live configuration."""
    config = config if config is not None else WorkloadConfig()
    result = ExperimentResult(
        name="Table 2",
        description="Parameter values used by the experiments.",
        columns=["symbol", "value"],
    )
    for symbol, value in (
        ("S", config.outstanding),
        ("nt", config.nt),
        ("nsr", config.nsr),
        ("sst, sid", f"{config.sst}, {config.sid}"),
        ("ssv", config.ssv),
        ("sigma", "10 .. 1000"),
        ("subsumption", "0.1, 0.25, 0.5, 0.75, 0.9"),
        ("attrs/subscription", config.attributes_per_subscription),
        ("arithmetic : string", f"{config.nas} : {config.nss}"),
        ("subscription size", f"~{config.subscription_size} bytes"),
    ):
        result.add_row(symbol=symbol, value=value)
    return result


def computational_demands(
    sizes: Sequence[int] = (200, 400, 800, 1600),
    events_per_size: int = 30,
    config: Optional[WorkloadConfig] = None,
    seed: int = 0,
) -> ExperimentResult:
    """Section 5.2.4: measured matching time vs the analytic T1 model."""
    config = config if config is not None else WorkloadConfig()
    points = measure_matching_scaling(
        sizes, events_per_size=events_per_size, config=config, seed=seed
    )
    result = ExperimentResult(
        name="Section 5.2.4",
        description="Event matching cost: summary vs subscription-centric.",
        columns=["N", "summary_us", "naive_us", "speedup", "T1_model"],
    )
    for point in points:
        counts = expected_structure_counts(config, point.subscriptions)
        t1 = matching_step1_cost(
            nae=config.nas,
            nsr=counts.nsr,
            ne=counts.ne,
            la=counts.la,
            nse=config.nss,
            nr=counts.nr,
            ls=counts.ls,
        )
        result.add_row(
            N=point.subscriptions,
            summary_us=point.summary_seconds * 1e6,
            naive_us=point.naive_seconds * 1e6,
            speedup=point.speedup,
            T1_model=t1,
        )
    r2 = linear_fit_r2(
        [(p.subscriptions, p.summary_seconds) for p in points]
    )
    result.notes.append(f"summary matching time vs N linear fit R^2 = {r2:.3f} (O(N) claim)")
    return result
