"""A traced end-to-end run — the observability smoke experiment.

Drives one small but complete system lifecycle with a live
:class:`~repro.obs.tracing.Tracer` attached (and the
:class:`~repro.obs.audit.SummaryAuditor` in paranoid mode, so the run
doubles as an invariant sweep): subscribe a Table-2 workload, run a
propagation period, publish a batch of events, unsubscribe a slice of the
subscriptions — deliberately including unsubscribes *between*
``begin_period``-time pendings and the next period — then run a full
refresh and a second publish wave.

Outputs:

* an :class:`~repro.experiments.common.ExperimentResult` with the
  per-stage timing table (what ``repro-experiments traced`` prints),
* optionally a JSONL span export plus the rendered trace report — the CI
  trace-artifact job calls :func:`main` with ``--trace-out/--report-out``.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Tuple

from repro.analysis.tracereport import TraceReport, build_trace_report
from repro.broker.system import SummaryPubSub
from repro.experiments.common import ExperimentResult
from repro.network.backbone import cable_wireless_24
from repro.obs.tracing import Tracer
from repro.workload.config import WorkloadConfig
from repro.workload.generator import WorkloadGenerator

__all__ = ["run", "run_traced_system", "main"]


def run_traced_system(
    quick: bool = True, paranoid: bool = True, seed: int = 0
) -> Tuple[SummaryPubSub, Tracer]:
    """Execute the lifecycle; returns the finished system and its tracer."""
    sigma = 10 if quick else 50
    events = 20 if quick else 200
    topology = cable_wireless_24()
    config = WorkloadConfig(sigma=sigma)
    generator = WorkloadGenerator(config, seed=seed)
    tracer = Tracer()
    system = SummaryPubSub(
        topology,
        generator.schema,
        matcher="compiled",
        tracer=tracer,
        paranoid=paranoid,
    )

    # Phase 1: subscribe sigma per broker and propagate.
    sids = []
    subscriptions = []
    for broker_id in topology.brokers:
        for subscription in generator.subscriptions(sigma):
            sids.append((broker_id, system.subscribe(broker_id, subscription)))
            subscriptions.append(subscription)
    system.run_propagation_period()

    # Phase 2: publish a first event wave (every broker takes a turn).
    # Every other event is aimed at a stored subscription so the trace
    # exercises the notify -> re-check -> delivery tail, not just the
    # BROCLI search.
    brokers = sorted(topology.brokers)
    for index in range(events):
        if index % 2 and subscriptions:
            event = generator.matching_event(
                subscriptions[(index * 13) % len(subscriptions)]
            )
        else:
            event = generator.event()
        system.publish(brokers[index % len(brokers)], event)

    # Phase 3: churn — drop every third subscription (exercises the
    # unsubscribe auditing path), then full-refresh and publish again.
    for broker_id, sid in sids[::3]:
        system.unsubscribe(broker_id, sid)
    system.run_full_refresh()
    for index in range(events // 2):
        system.publish(brokers[(index * 7) % len(brokers)], generator.event())

    return system, tracer


def run(quick: bool = True) -> ExperimentResult:
    """The ``traced`` experiment: stage timing table of one traced run."""
    system, tracer = run_traced_system(quick=quick)
    report = build_trace_report(tracer)
    result = ExperimentResult(
        name="traced",
        description=(
            "Per-stage timings of one traced end-to-end run "
            "(publish -> hop -> match -> re-check -> delivery; "
            "propagation periods)"
        ),
        columns=["stage", "count", "total_us", "mean_us", "p95_us"],
    )
    for stats in report.stages:
        result.add_row(
            stage=stats.kind,
            count=stats.count,
            total_us=stats.total_us,
            mean_us=stats.mean_us,
            p95_us=stats.p95_us,
        )
    auditor = system.auditor
    if auditor is not None:
        result.notes.append(
            f"paranoid mode on: {auditor.audits_run} invariant audits, "
            f"zero violations"
        )
    result.notes.append(f"{len(tracer)} spans recorded")
    return result


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Run a small traced end-to-end system and export the trace."
    )
    parser.add_argument("--full", action="store_true", help="larger run")
    parser.add_argument(
        "--trace-out", type=Path, default=None,
        help="write the span JSONL here (CI artifact)",
    )
    parser.add_argument(
        "--report-out", type=Path, default=None,
        help="write the rendered trace report here (CI artifact)",
    )
    args = parser.parse_args(argv)
    system, tracer = run_traced_system(quick=not args.full)
    report: TraceReport = build_trace_report(tracer)
    if args.trace_out is not None:
        tracer.export_jsonl(args.trace_out)
        print(f"trace: {args.trace_out} ({len(tracer)} spans)")
    if args.report_out is not None:
        args.report_out.write_text(report.render() + "\n", encoding="utf-8")
        print(f"report: {args.report_out}")
    print(report.render())
    auditor = system.auditor
    if auditor is not None:
        print(f"paranoid audits: {auditor.audits_run}, zero violations")
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI shim
    sys.exit(main())
