"""Steady-state propagation bytes: churn-proportional vs sigma-proportional.

EXPERIMENTS.md documents the one divergence from the paper's figure 8:
propagation bytes cannot flatten while every period re-ships full
per-subscription id lists, because those lists grow linearly in the
resident population sigma.  Delta propagation breaks the coupling — a
period's :class:`~repro.wire.messages.SummaryDeltaMessage` carries only
what *changed* (new rows + compressed id blocks + removal ids), so
steady-state bytes scale with the churn rate and are independent of how
many subscriptions already live in the system.

This experiment measures exactly that claim.  For each resident
population it builds the population, lets it propagate (unmeasured), then
runs a fixed-rate churn regime — the same arrivals/departures per broker
per period at every population size — and reports bytes per period:

* **delta mode** — periods ship delta frames; removals ride the frames,
  so no refresh is needed and bytes track churn only;
* **full mode** — periods ship the classic full-summary frames *plus one
  full refresh per period*, the honest baseline: without the refresh the
  removals of steady churn never leave remote kept summaries (the bloat
  dynamics :mod:`repro.experiments.churn` documents), so a comparable
  steady state forces re-shipping whole stores, and bytes track sigma.

The acceptance gate (ROADMAP open item 2): doubling the resident
population changes per-period delta bytes by < 10 % while the full-mode
baseline roughly doubles.  ``quick=True`` keeps the sweep small for CI;
``quick=False`` runs the committed 50k -> 100k row pair.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Tuple

from repro.broker.system import SummaryPubSub
from repro.experiments.common import ExperimentResult
from repro.network.backbone import cable_wireless_24
from repro.network.topology import Topology
from repro.workload.config import WorkloadConfig
from repro.workload.generator import WorkloadGenerator

__all__ = ["run", "steady_state_bytes"]


def steady_state_bytes(
    topology: Topology,
    mode: str,
    residents_per_broker: int,
    churn_per_broker: int,
    periods: int,
    subsumption: float,
    seed: int,
) -> Tuple[int, float]:
    """Build a resident population, churn it at a fixed rate, and return
    ``(total_residents, propagation_bytes_per_period)`` for ``mode``."""
    generator = WorkloadGenerator(
        WorkloadConfig(subsumption=subsumption), seed=seed
    )
    # Suppression off on both sides: covered-id suppression shrinks both
    # modes and would confound the churn-vs-sigma scaling being measured.
    system = SummaryPubSub(
        topology, generator.schema,
        propagation_mode=mode, suppress_covered=False,
    )
    rng = random.Random(seed)
    live: List[Tuple[int, object]] = []
    for broker_id in topology.brokers:
        for subscription in generator.subscriptions(residents_per_broker):
            live.append((broker_id, system.subscribe(broker_id, subscription)))
    # Establish steady state (unmeasured): residents propagate once.
    system.run_propagation_period()
    before = system.propagation_metrics.bytes_sent
    for _ in range(periods):
        for broker_id in topology.brokers:
            for subscription in generator.subscriptions(churn_per_broker):
                live.append(
                    (broker_id, system.subscribe(broker_id, subscription))
                )
        for _ in range(churn_per_broker * topology.num_brokers):
            index = rng.randrange(len(live))
            live[index], live[-1] = live[-1], live[index]
            broker_id, sid = live.pop()
            system.unsubscribe(broker_id, sid)
        system.run_propagation_period()
        if mode == "full":
            # Full mode has no incremental removal path; matching the
            # delta mode's steady state (no dead-id accumulation) costs a
            # whole-store refresh every period.
            system.run_full_refresh()
    per_period = (system.propagation_metrics.bytes_sent - before) / periods
    return len(live), per_period


def run(
    topology: Optional[Topology] = None,
    residents_values: Optional[Sequence[int]] = None,
    churn_per_broker: int = 8,
    periods: int = 3,
    subsumption: float = 0.5,
    quick: bool = True,
    seed: int = 0,
) -> ExperimentResult:
    topology = topology if topology is not None else cable_wireless_24()
    if residents_values is None:
        if quick:
            residents_values = (50, 100)
        else:
            # The committed acceptance pair: ~50k and ~100k resident
            # subscriptions on the 24-broker backbone.
            residents_values = (
                50_000 // topology.num_brokers,
                100_000 // topology.num_brokers,
            )

    result = ExperimentResult(
        name="Steady-state propagation bytes (delta vs full)",
        description=(
            f"Fixed churn ({churn_per_broker} arrivals + {churn_per_broker} "
            f"departures per broker per period, {periods} periods) on "
            f"{topology.num_brokers} brokers; full mode includes the "
            f"per-period whole-store refresh it needs to match delta "
            f"mode's no-dead-id steady state."
        ),
        columns=[
            "total_subs",
            "delta_bytes_per_period",
            "full_bytes_per_period",
            "full_over_delta",
        ],
    )
    for residents in residents_values:
        totals = {}
        bytes_per_period = {}
        for mode in ("delta", "full"):
            totals[mode], bytes_per_period[mode] = steady_state_bytes(
                topology, mode, residents, churn_per_broker, periods,
                subsumption, seed,
            )
        assert totals["delta"] == totals["full"]
        result.add_row(
            total_subs=totals["delta"],
            delta_bytes_per_period=round(bytes_per_period["delta"]),
            full_bytes_per_period=round(bytes_per_period["full"]),
            full_over_delta=round(
                bytes_per_period["full"] / max(1.0, bytes_per_period["delta"]), 1
            ),
        )
    if len(result.rows) >= 2:
        first, last = result.rows[0], result.rows[-1]
        population_growth = last["total_subs"] / first["total_subs"]
        delta_growth = (
            last["delta_bytes_per_period"] / first["delta_bytes_per_period"]
        )
        full_growth = (
            last["full_bytes_per_period"] / first["full_bytes_per_period"]
        )
        result.notes.append(
            f"population x{population_growth:.2f}: delta bytes/period "
            f"x{delta_growth:.3f} (churn-proportional), full bytes/period "
            f"x{full_growth:.2f} (sigma-proportional)."
        )
    return result


def main() -> None:  # pragma: no cover - CLI convenience
    print(run(quick=False))


if __name__ == "__main__":  # pragma: no cover
    main()
