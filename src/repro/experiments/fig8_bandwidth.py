"""Figure 8 — network bandwidth for subscription propagation.

Sweep: sigma (new subscriptions per broker per period) from 10 to 1000, at
subsumption probabilities 10% and 90%, on the 24-node backbone.  Series:

* ``broadcast``  — the paper's analytic baseline formula
  ``(brokers-1) x avg hops x brokers x sigma x subscription size``;
* ``siena@q``    — the probabilistic subsumption model (Monte-Carlo,
  per-subscription pruned flooding over per-origin spanning trees);
* ``summary@q``  — the real summary system: sigma subscriptions per broker
  are generated (at the matching subsumption level), summarized, and
  propagated by Algorithm 2 over the simulated network; bytes are the
  encoded sizes of the actual SummaryMessages.

Paper's claims to reproduce: both beat broadcast by orders of magnitude;
summaries beat Siena by ~4-8x; the summary lines are nearly flat in sigma
(scalability).
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.analysis.cost_model import baseline_bandwidth
from repro.broker.system import SummaryPubSub
from repro.experiments.common import ExperimentResult
from repro.network.backbone import cable_wireless_24
from repro.network.topology import Topology
from repro.siena.probmodel import SienaProbModel
from repro.workload.config import WorkloadConfig
from repro.workload.generator import WorkloadGenerator

__all__ = ["run", "measure_summary_bandwidth", "QUICK_SIGMAS", "FULL_SIGMAS"]

QUICK_SIGMAS: Tuple[int, ...] = (10, 100, 1000)
FULL_SIGMAS: Tuple[int, ...] = (10, 50, 100, 250, 500, 750, 1000)


def measure_summary_bandwidth(
    topology: Topology,
    sigma: int,
    subsumption: float,
    seed: int = 0,
) -> Tuple[int, float]:
    """(bytes for one propagation period, mean encoded subscription size)."""
    config = WorkloadConfig(sigma=sigma, subsumption=subsumption)
    generator = WorkloadGenerator(config, seed=seed)
    system = SummaryPubSub(topology, generator.schema)
    sample_bytes = 0
    sample_count = 0
    for broker_id in topology.brokers:
        for subscription in generator.subscriptions(sigma):
            system.subscribe(broker_id, subscription)
            if sample_count < 200:
                sample_bytes += system.wire.subscription_size(subscription)
                sample_count += 1
    snapshot = system.run_propagation_period()
    return snapshot["bytes_sent"], sample_bytes / max(1, sample_count)


def run(
    topology: Optional[Topology] = None,
    sigmas: Optional[Sequence[int]] = None,
    subsumptions: Sequence[float] = (0.1, 0.9),
    quick: bool = True,
    seed: int = 0,
) -> ExperimentResult:
    topology = topology if topology is not None else cable_wireless_24()
    sigmas = tuple(sigmas) if sigmas is not None else (QUICK_SIGMAS if quick else FULL_SIGMAS)
    trials = 1 if quick else 3

    columns = ["sigma", "broadcast"]
    for q in subsumptions:
        columns += [f"siena@{int(q * 100)}%", f"summary@{int(q * 100)}%"]
    result = ExperimentResult(
        name="Figure 8",
        description=(
            "Total bytes for all brokers to propagate their subscriptions "
            f"in one period ({topology.num_brokers} brokers)."
        ),
        columns=columns,
    )

    average_hops = topology.average_path_length()
    for sigma in sigmas:
        row = {"sigma": sigma}
        # A representative subscription size for the model-based series,
        # measured from the same generator the summary system uses.
        _, sub_size = measure_summary_bandwidth(topology, 1, subsumptions[0], seed)
        row["broadcast"] = baseline_bandwidth(
            topology.num_brokers, average_hops, sigma, round(sub_size)
        )
        for q in subsumptions:
            model = SienaProbModel(topology, max_subsumption=q, seed=seed)
            row[f"siena@{int(q * 100)}%"] = model.propagation_bandwidth(
                sigma, round(sub_size), trials=trials
            )
            summary_bytes, _ = measure_summary_bandwidth(topology, sigma, q, seed)
            row[f"summary@{int(q * 100)}%"] = summary_bytes
        result.add_row(**row)

    result.notes.append(
        "broadcast uses the paper's analytic formula; siena is the paper's "
        "probabilistic subsumption model; summary is measured on encoded "
        "Algorithm-2 messages."
    )
    return result


def main() -> None:  # pragma: no cover - CLI convenience
    print(run(quick=False))


if __name__ == "__main__":  # pragma: no cover
    main()
