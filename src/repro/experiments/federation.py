"""Multi-ISP federation (section 6's "multi-ISP, global CDNs"), measured.

Runs the Table-2 workload on a three-ISP federated overlay and splits
every metric by the federation map: how much of the propagation and
event-routing traffic crosses the (expensive, scarce) inter-ISP peering
links versus staying inside a member backbone.

The structural claims to check:

* the algorithms run unchanged (one id space, the paper's "changing the
  c3 field" remark);
* propagation still takes fewer hops than brokers, and its inter-ISP
  share stays small — Algorithm 2 crosses a peering link at most once per
  gateway per period, with the whole ISP's knowledge already merged;
* event routing, by contrast, is peering-heavy: Algorithm 3's direct
  jumps (to the highest-degree unexamined broker, and to matched owners)
  routinely span ISPs and pay the full multi-link path each time.  That
  asymmetry is the federation-era motivation for the paper's virtual
  degrees / locality ideas — a topology-aware ``_next_router`` would
  prefer exhausting the local ISP first.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.broker.system import SummaryPubSub
from repro.experiments.common import ExperimentResult
from repro.network.federation import Federation, three_isp_federation
from repro.network.metrics import NetworkMetrics
from repro.workload.config import WorkloadConfig
from repro.workload.generator import WorkloadGenerator

__all__ = ["run", "split_traffic"]


def split_traffic(metrics: NetworkMetrics, federation: Federation) -> Tuple[int, int]:
    """(intra-ISP bytes, inter-ISP bytes) from the per-pair table."""
    intra = 0
    inter = 0
    for (src, dst), size in metrics.per_pair_bytes.items():
        if federation.is_inter_isp(src, dst):
            inter += size
        else:
            intra += size
    return intra, inter


def _loaded_system(topology, federation, sigma, subsumption, seed, locality):
    from repro.ext.locality import enable_locality

    generator = WorkloadGenerator(
        WorkloadConfig(sigma=sigma, subsumption=subsumption), seed=seed
    )
    system = SummaryPubSub(topology, generator.schema)
    subscriptions = []
    for broker_id in topology.brokers:
        for subscription in generator.subscriptions(sigma):
            system.subscribe(broker_id, subscription)
            subscriptions.append(subscription)
    system.run_propagation_period()
    if locality:
        enable_locality(system, federation)
    return system, generator, subscriptions


def run(
    sizes: Tuple[int, int, int] = (16, 24, 12),
    sigma: int = 5,
    subsumption: float = 0.5,
    events: int = 30,
    quick: bool = True,
    seed: int = 0,
) -> ExperimentResult:
    if not quick:
        sigma, events = 20, 200
    import random

    topology, federation = three_isp_federation(sizes, seed=seed)
    result = ExperimentResult(
        name="Multi-ISP federation",
        description=(
            f"Three-ISP overlay ({'+'.join(map(str, sizes))} brokers), "
            f"traffic split at the peering links."
        ),
        columns=["phase", "intra_bytes", "inter_bytes", "inter_share%"],
    )

    def add_row(phase, intra, inter):
        total = intra + inter
        result.add_row(
            phase=phase,
            intra_bytes=intra,
            inter_bytes=inter,
            **{"inter_share%": round(100.0 * inter / total, 1) if total else 0.0},
        )

    prop_hops = None
    for locality in (False, True):
        system, generator, subscriptions = _loaded_system(
            topology, federation, sigma, subsumption, seed, locality
        )
        if not locality:
            prop_hops = system.propagation_metrics.hops
            add_row(
                "propagation", *split_traffic(system.propagation_metrics, federation)
            )
        rng = random.Random(seed)
        for _ in range(events):
            event = generator.matching_event(rng.choice(subscriptions))
            system.publish(rng.randrange(topology.num_brokers), event)
        phase = "events+locality" if locality else "events"
        add_row(phase, *split_traffic(system.event_metrics, federation))

    result.notes.append(
        f"propagation hops {prop_hops} < {topology.num_brokers} brokers; "
        f"the locality router (repro.ext.locality) exhausts each ISP before "
        f"crossing a peering link."
    )
    return result


def main() -> None:  # pragma: no cover - CLI convenience
    print(run(quick=False))


if __name__ == "__main__":  # pragma: no cover
    main()
