"""Shared infrastructure for the figure/table reproduction drivers.

Every experiment module exposes ``run(...) -> ExperimentResult`` returning
the same rows/series the paper's figure reports, plus a ``main()`` that
prints them as an aligned text table.  ``quick=True`` (the default for
tests and benches) shrinks sweep sizes while preserving every qualitative
claim; ``quick=False`` runs the paper-scale parameters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Union

__all__ = ["ExperimentResult", "format_table", "geometric_ratio"]

Cell = Union[int, float, str]


@dataclass
class ExperimentResult:
    """Rows of one reproduced figure/table."""

    name: str
    description: str
    columns: List[str]
    rows: List[Dict[str, Cell]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add_row(self, **cells: Cell) -> None:
        missing = set(self.columns) - set(cells)
        if missing:
            raise ValueError(f"row missing columns: {sorted(missing)}")
        self.rows.append(dict(cells))

    def column(self, name: str) -> List[Cell]:
        return [row[name] for row in self.rows]

    def __str__(self) -> str:
        return format_table(self)


def _format_cell(value: Cell) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1e6:
            return f"{value:.3g}"
        if abs(value) >= 100:
            return f"{value:.0f}"
        return f"{value:.2f}"
    return str(value)


def format_table(result: ExperimentResult) -> str:
    """Render an :class:`ExperimentResult` as an aligned text table."""
    header = list(result.columns)
    body = [[_format_cell(row[col]) for col in header] for row in result.rows]
    widths = [
        max(len(header[i]), *(len(line[i]) for line in body)) if body else len(header[i])
        for i in range(len(header))
    ]
    lines = [f"== {result.name} ==", result.description]
    lines.append("  ".join(h.ljust(w) for h, w in zip(header, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for line in body:
        lines.append("  ".join(cell.rjust(w) for cell, w in zip(line, widths)))
    for note in result.notes:
        lines.append(f"note: {note}")
    return "\n".join(lines)


def geometric_ratio(numerators: Sequence[float], denominators: Sequence[float]) -> float:
    """Geometric mean of pointwise ratios — how figures summarize 'X times
    better' claims across a sweep."""
    if len(numerators) != len(denominators) or not numerators:
        raise ValueError("need equal-length, non-empty series")
    product = 1.0
    for numerator, denominator in zip(numerators, denominators):
        if denominator <= 0 or numerator <= 0:
            raise ValueError("ratios need positive values")
        product *= numerator / denominator
    return product ** (1.0 / len(numerators))
