"""Figure 11 — total subscription storage across all brokers.

Sweep: outstanding subscriptions per broker (S) from 10 to 1000, at
subsumption probabilities 10% and 90%.  Series:

* ``broadcast``  — every broker stores every subscription:
  ``brokers x (brokers x S) x subscription size``;
* ``siena@q``    — probabilistic model: a broker stores its own plus every
  foreign subscription that survived pruning on its way in;
* ``summary@q``  — measured: total encoded size of the kept (multi-broker)
  summaries across all brokers after a full propagation of S
  subscriptions per broker.

Paper's claims to reproduce: summaries beat Siena by ~2-5x; at low
subsumption Siena approaches the broadcast baseline.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.broker.system import SummaryPubSub
from repro.experiments.common import ExperimentResult
from repro.network.backbone import cable_wireless_24
from repro.network.topology import Topology
from repro.siena.probmodel import SienaProbModel
from repro.workload.config import WorkloadConfig
from repro.workload.generator import WorkloadGenerator

__all__ = ["run", "measure_summary_storage", "QUICK_SIZES", "FULL_SIZES"]

QUICK_SIZES: Tuple[int, ...] = (10, 100, 1000)
FULL_SIZES: Tuple[int, ...] = (10, 50, 100, 250, 500, 750, 1000)


def measure_summary_storage(
    topology: Topology,
    outstanding: int,
    subsumption: float,
    seed: int = 0,
) -> Tuple[int, float]:
    """(total kept-summary bytes, mean encoded subscription size)."""
    config = WorkloadConfig(outstanding=outstanding, subsumption=subsumption)
    generator = WorkloadGenerator(config, seed=seed)
    system = SummaryPubSub(topology, generator.schema)
    sample_bytes = 0
    sample_count = 0
    for broker_id in topology.brokers:
        for subscription in generator.subscriptions(outstanding):
            system.subscribe(broker_id, subscription)
            if sample_count < 200:
                sample_bytes += system.wire.subscription_size(subscription)
                sample_count += 1
    system.run_propagation_period()
    return system.total_summary_storage(), sample_bytes / max(1, sample_count)


def run(
    topology: Optional[Topology] = None,
    sizes: Optional[Sequence[int]] = None,
    subsumptions: Sequence[float] = (0.1, 0.9),
    quick: bool = True,
    seed: int = 0,
) -> ExperimentResult:
    topology = topology if topology is not None else cable_wireless_24()
    sizes = tuple(sizes) if sizes is not None else (QUICK_SIZES if quick else FULL_SIZES)
    trials = 1 if quick else 3

    columns = ["S", "broadcast"]
    for q in subsumptions:
        columns += [f"siena@{int(q * 100)}%", f"summary@{int(q * 100)}%"]
    result = ExperimentResult(
        name="Figure 11",
        description=(
            "Total subscription storage (bytes) across all "
            f"{topology.num_brokers} brokers."
        ),
        columns=columns,
    )

    n = topology.num_brokers
    for outstanding in sizes:
        row = {"S": outstanding}
        _, sub_size = measure_summary_storage(topology, 1, subsumptions[0], seed)
        row["broadcast"] = n * (n * outstanding) * round(sub_size)
        for q in subsumptions:
            model = SienaProbModel(topology, max_subsumption=q, seed=seed)
            row[f"siena@{int(q * 100)}%"] = model.storage_bytes(
                outstanding, round(sub_size), trials=trials
            )
            summary_bytes, _ = measure_summary_storage(topology, outstanding, q, seed)
            row[f"summary@{int(q * 100)}%"] = summary_bytes
        result.add_row(**row)

    result.notes.append(
        "summary storage is the encoded size of every broker's kept "
        "multi-broker summary; siena/broadcast store raw subscriptions."
    )
    return result


def main() -> None:  # pragma: no cover - CLI convenience
    print(run(quick=False))


if __name__ == "__main__":  # pragma: no cover
    main()
