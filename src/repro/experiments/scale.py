"""Broker-count scaling (section 6: "larger-scale networks").

The paper's evaluation fixes 24 brokers and points at multi-ISP/global-CDN
scales as future work ("basically, this only requires changing the c3
field of subscription ids").  This experiment sweeps the broker count on
scale-free backbones and checks that the paper's structural results are
size-independent:

* summary propagation hops stay below ``n`` (each broker sends once);
* Siena's flood cost grows ~quadratically (``n x (n-1)`` at subsumption 0);
* the bandwidth ratio between the two stays in the figure-8 band;
* the id codec widths grow logarithmically as section 3.2 prescribes.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.broker.system import SummaryPubSub
from repro.experiments.common import ExperimentResult
from repro.model.ids import IdCodec
from repro.network.backbone import scale_free_backbone
from repro.siena.probmodel import SienaProbModel
from repro.workload.config import WorkloadConfig
from repro.workload.generator import WorkloadGenerator

__all__ = ["run", "QUICK_SIZES", "FULL_SIZES"]

QUICK_SIZES = (13, 24, 48)
FULL_SIZES = (13, 24, 48, 96, 192)


def run(
    sizes: Optional[Sequence[int]] = None,
    sigma: int = 10,
    subsumption: float = 0.5,
    quick: bool = True,
    seed: int = 0,
) -> ExperimentResult:
    sizes = tuple(sizes) if sizes is not None else (QUICK_SIZES if quick else FULL_SIZES)
    result = ExperimentResult(
        name="Broker-count scaling",
        description=(
            f"Scale-free backbones, sigma={sigma}, subsumption={subsumption}."
        ),
        columns=[
            "n", "summary_hops", "siena_hops", "bw_ratio", "c1_bits", "id_bytes",
        ],
    )
    for n in sizes:
        topology = scale_free_backbone(n, seed=seed)
        config = WorkloadConfig(sigma=sigma, subsumption=subsumption)
        generator = WorkloadGenerator(config, seed=seed)
        system = SummaryPubSub(topology, generator.schema)
        sample_bytes = 0
        sample_count = 0
        for broker_id in topology.brokers:
            for subscription in generator.subscriptions(sigma):
                system.subscribe(broker_id, subscription)
                if sample_count < 100:
                    sample_bytes += system.wire.subscription_size(subscription)
                    sample_count += 1
        snapshot = system.run_propagation_period()
        model = SienaProbModel(topology, subsumption, seed=seed)
        siena_hops = model.mean_propagation_hops(trials=5 if quick else 30)
        siena_bytes = model.propagation_bandwidth(
            sigma, round(sample_bytes / max(1, sample_count)), trials=1
        )
        codec = IdCodec(n, 1 << 20, config.nt)
        result.add_row(
            n=n,
            summary_hops=snapshot["hops"],
            siena_hops=round(siena_hops, 1),
            bw_ratio=round(siena_bytes / max(1, snapshot["bytes_sent"]), 2),
            c1_bits=codec.c1_bits,
            id_bytes=codec.byte_size,
        )
    result.notes.append(
        "summary_hops < n at every size; c1 grows as ceil(log2(n)) per "
        "section 3.2."
    )
    return result


def main() -> None:  # pragma: no cover - CLI convenience
    print(run(quick=False))


if __name__ == "__main__":  # pragma: no cover
    main()
