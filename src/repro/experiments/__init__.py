"""Experiment drivers — one module per paper figure/table.

See DESIGN.md's per-experiment index for the figure -> module -> bench
mapping, and EXPERIMENTS.md for recorded paper-vs-measured results.
"""

from repro.experiments import (  # noqa: F401  (re-exported driver modules)
    churn,
    export,
    federation,
    fig8_bandwidth,
    fig9_prop_hops,
    fig10_event_hops,
    fig11_storage,
    latency,
    propagation_bytes,
    robustness,
    scale,
    scenarios,
    sensitivity,
    tables,
    traced_run,
)
from repro.experiments.common import ExperimentResult, format_table, geometric_ratio

__all__ = [
    "ExperimentResult",
    "churn",
    "export",
    "federation",
    "latency",
    "propagation_bytes",
    "robustness",
    "scale",
    "scenarios",
    "sensitivity",
    "fig8_bandwidth",
    "fig9_prop_hops",
    "fig10_event_hops",
    "fig11_storage",
    "format_table",
    "geometric_ratio",
    "tables",
    "traced_run",
]
