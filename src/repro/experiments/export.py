"""Result export: CSV and JSON serialization of experiment tables.

Figures are regenerated programmatically (``repro-experiments``), but
downstream analysis — plotting, regression tracking across commits,
comparison against the paper's reported points — wants machine-readable
output.  ``export_csv``/``export_json`` write any
:class:`~repro.experiments.common.ExperimentResult`, and
``write_report`` dumps a whole run into a directory, one file per
experiment plus a manifest.
"""

from __future__ import annotations

import csv
import io
import json
from pathlib import Path
from typing import Dict, Iterable, List, Union

from repro.experiments.common import ExperimentResult

__all__ = ["export_csv", "export_json", "write_report"]

PathLike = Union[str, Path]


def export_csv(result: ExperimentResult) -> str:
    """The result's rows as CSV text (header row first)."""
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=result.columns, lineterminator="\n")
    writer.writeheader()
    for row in result.rows:
        writer.writerow({column: row[column] for column in result.columns})
    return buffer.getvalue()


def export_json(result: ExperimentResult) -> str:
    """The full result (metadata + rows + notes) as pretty JSON."""
    payload = {
        "name": result.name,
        "description": result.description,
        "columns": result.columns,
        "rows": result.rows,
        "notes": result.notes,
    }
    return json.dumps(payload, indent=2, sort_keys=False)


def _slug(name: str) -> str:
    return "".join(ch.lower() if ch.isalnum() else "-" for ch in name).strip("-")


def write_report(results: Iterable[ExperimentResult], directory: PathLike) -> List[Path]:
    """Write one ``<slug>.csv`` + ``<slug>.json`` per result, plus a
    ``manifest.json`` listing everything written.  Returns the paths."""
    target = Path(directory)
    target.mkdir(parents=True, exist_ok=True)
    written: List[Path] = []
    manifest: List[Dict[str, str]] = []
    for result in results:
        slug = _slug(result.name)
        csv_path = target / f"{slug}.csv"
        json_path = target / f"{slug}.json"
        csv_path.write_text(export_csv(result))
        json_path.write_text(export_json(result))
        written.extend([csv_path, json_path])
        manifest.append(
            {"name": result.name, "csv": csv_path.name, "json": json_path.name}
        )
    manifest_path = target / "manifest.json"
    manifest_path.write_text(json.dumps(manifest, indent=2))
    written.append(manifest_path)
    return written
