"""Figure 10 — mean hop counts in distributed event processing.

Sweep: event popularity (fraction of brokers matching the event) in
{10, 25, 50, 75, 90}%.  The paper routes 24,000 events (1000 per broker)
with the matched brokers drawn at random per event.  Series:

* ``summary`` — measured on the real system: every broker plants a probe
  subscription, Algorithm 2 propagates the summaries once, then each event
  (constructed to match exactly its drawn broker set) is published and
  routed by Algorithm 3; hops are the BROCLI forwarding chain plus the
  owner notifications.
* ``siena``   — reverse-path routing cost in the probabilistic model: the
  union of the publisher's spanning-tree paths to the matched brokers.

Paper's claims to reproduce: the summary approach wins for popularities up
to ~75%; at very high popularity Siena's reverse paths win because the
event saturates the tree anyway.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.broker.system import SummaryPubSub
from repro.experiments.common import ExperimentResult
from repro.network.backbone import cable_wireless_24
from repro.network.topology import Topology
from repro.siena.probmodel import SienaProbModel
from repro.workload.config import TABLE2_POPULARITIES
from repro.workload.popularity import (
    draw_matched_sets,
    popularity_event,
    popularity_schema,
    probe_subscription,
)

__all__ = ["run", "build_probe_system", "measure_summary_event_hops"]


def build_probe_system(topology: Topology) -> SummaryPubSub:
    """A summary system with one popularity probe per broker, propagated."""
    system = SummaryPubSub(topology, popularity_schema())
    for broker_id in topology.brokers:
        system.subscribe(broker_id, probe_subscription(broker_id))
    system.run_propagation_period()
    return system


def measure_summary_event_hops(
    system: SummaryPubSub,
    popularity: float,
    events_per_broker: int,
    seed: int = 0,
) -> float:
    """Mean Algorithm-3 hops per event at one popularity level."""
    topology = system.topology
    total_hops = 0
    total_events = 0
    for publisher in topology.brokers:
        matched_sets = draw_matched_sets(
            topology.num_brokers,
            popularity,
            events_per_broker,
            seed=seed * 1000 + publisher,
        )
        for index, matched in enumerate(matched_sets):
            event = popularity_event(matched)
            outcome = system.publish(publisher, event)
            if outcome.matched_brokers != matched:
                raise AssertionError(
                    f"probe event matched {sorted(outcome.matched_brokers)}, "
                    f"expected {sorted(matched)}"
                )
            total_hops += outcome.hops
            total_events += 1
    return total_hops / total_events


def run(
    topology: Optional[Topology] = None,
    popularities: Sequence[float] = TABLE2_POPULARITIES,
    quick: bool = True,
    seed: int = 0,
) -> ExperimentResult:
    topology = topology if topology is not None else cable_wireless_24()
    events_per_broker = 5 if quick else 1000

    result = ExperimentResult(
        name="Figure 10",
        description=(
            f"Mean hops to route an event to all matched brokers "
            f"({topology.num_brokers} brokers, "
            f"{events_per_broker * topology.num_brokers} events per point)."
        ),
        columns=["popularity%", "summary", "siena"],
    )
    system = build_probe_system(topology)
    model = SienaProbModel(topology, max_subsumption=0.0, seed=seed)
    for popularity in popularities:
        result.add_row(
            **{
                "popularity%": int(popularity * 100),
                "summary": measure_summary_event_hops(
                    system, popularity, events_per_broker, seed
                ),
                "siena": model.mean_event_hops(
                    events_per_broker, popularity, seed=seed
                ),
            }
        )
    result.notes.append(
        "summary hops = BROCLI forwarding chain + owner notifications, "
        "measured; siena hops = union of reverse tree paths to matched "
        "brokers."
    )
    return result


def main() -> None:  # pragma: no cover - CLI convenience
    print(run(quick=False))


if __name__ == "__main__":  # pragma: no cover
    main()
