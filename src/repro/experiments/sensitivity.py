"""Topology sensitivity — the paper's "results are similar in all cases".

Section 5.2 states the evaluation "used a number of real and artificial
topologies" and shows the backbone numbers because the others look alike.
This driver makes that claim checkable: it re-runs the core comparisons
(propagation bandwidth and hops, event-routing hops at moderate
popularity) across a topology zoo — the reconstructed backbone, trees of
several shapes, a scale-free synthetic backbone, and a random mesh — and
reports the summary-vs-Siena ratios per topology.  The *ratios* are what
must be stable; absolute numbers legitimately track topology size.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Sequence, Tuple

from repro.broker.system import SummaryPubSub
from repro.experiments.common import ExperimentResult
from repro.network.backbone import cable_wireless_24, scale_free_backbone
from repro.network.topology import Topology, paper_example_tree
from repro.siena.probmodel import SienaProbModel
from repro.workload.config import WorkloadConfig
from repro.workload.generator import WorkloadGenerator
from repro.workload.popularity import (
    draw_matched_sets,
    popularity_event,
    popularity_schema,
    probe_subscription,
)

__all__ = ["run", "TOPOLOGY_ZOO"]

#: name -> factory for the sensitivity sweep.
TOPOLOGY_ZOO: Dict[str, Callable[[], Topology]] = {
    "cw-backbone-24": cable_wireless_24,
    "paper-tree-13": paper_example_tree,
    "star-24": lambda: Topology.star(24),
    "line-24": lambda: Topology.line(24),
    "random-tree-24": lambda: Topology.random_tree(24, seed=6),
    "random-mesh-24": lambda: Topology.random_connected(24, extra_links=12, seed=6),
    "scale-free-24": lambda: scale_free_backbone(24, seed=6),
}


def _bandwidth_ratio(topology: Topology, sigma: int, subsumption: float) -> float:
    """Siena bytes / summary bytes for one propagation period."""
    config = WorkloadConfig(sigma=sigma, subsumption=subsumption)
    generator = WorkloadGenerator(config, seed=43)
    system = SummaryPubSub(topology, generator.schema)
    sub_bytes = 0
    count = 0
    for broker_id in topology.brokers:
        for subscription in generator.subscriptions(sigma):
            system.subscribe(broker_id, subscription)
            if count < 100:
                sub_bytes += system.wire.subscription_size(subscription)
                count += 1
    summary_bytes = system.run_propagation_period()["bytes_sent"]
    model = SienaProbModel(topology, subsumption, seed=43)
    siena_bytes = model.propagation_bandwidth(
        sigma, round(sub_bytes / max(1, count)), trials=1
    )
    return siena_bytes / max(1, summary_bytes)


def _hop_numbers(topology: Topology, subsumption: float) -> Tuple[int, float]:
    """(summary propagation hops, Siena mean propagation hops)."""
    config = WorkloadConfig(sigma=1)
    generator = WorkloadGenerator(config, seed=43)
    system = SummaryPubSub(topology, generator.schema)
    for broker_id in topology.brokers:
        system.subscribe(broker_id, generator.subscription())
    hops = system.run_propagation_period()["hops"]
    model = SienaProbModel(topology, subsumption, seed=43)
    return hops, model.mean_propagation_hops(trials=10)


def _event_hops(topology: Topology, popularity: float, events: int) -> Tuple[float, float]:
    """(summary mean event hops, Siena mean event hops) at one popularity."""
    system = SummaryPubSub(topology, popularity_schema())
    for broker_id in topology.brokers:
        system.subscribe(broker_id, probe_subscription(broker_id))
    system.run_propagation_period()
    total = 0
    count = 0
    for publisher in topology.brokers:
        for matched in draw_matched_sets(
            topology.num_brokers, popularity, events, seed=publisher
        ):
            total += system.publish(publisher, popularity_event(matched)).hops
            count += 1
    model = SienaProbModel(topology, 0.0, seed=43)
    return total / count, model.mean_event_hops(events, popularity, seed=43)


def run(
    topologies: Optional[Sequence[str]] = None,
    sigma: int = 20,
    subsumption: float = 0.5,
    popularity: float = 0.25,
    quick: bool = True,
) -> ExperimentResult:
    names = list(topologies) if topologies else list(TOPOLOGY_ZOO)
    events = 2 if quick else 20
    result = ExperimentResult(
        name="Topology sensitivity",
        description=(
            "Summary-vs-Siena ratios across the topology zoo "
            f"(sigma={sigma}, subsumption={subsumption}, "
            f"popularity={int(popularity * 100)}%)."
        ),
        columns=[
            "topology", "n", "bw_ratio", "prop_hops", "siena_prop_hops",
            "event_hops", "siena_event_hops",
        ],
    )
    for name in names:
        topology = TOPOLOGY_ZOO[name]()
        bw_ratio = _bandwidth_ratio(topology, sigma, subsumption)
        prop_hops, siena_prop = _hop_numbers(topology, subsumption)
        event_hops, siena_event = _event_hops(topology, popularity, events)
        result.add_row(
            topology=name,
            n=topology.num_brokers,
            bw_ratio=round(bw_ratio, 2),
            prop_hops=prop_hops,
            siena_prop_hops=round(siena_prop, 1),
            event_hops=round(event_hops, 2),
            siena_event_hops=round(siena_event, 2),
        )
    result.notes.append(
        "the paper's claim is that the *relative* results hold across "
        "topologies: bw_ratio > 1 everywhere and prop_hops <= n (strictly "
        "below n whenever some broker has no equal-or-higher-degree "
        "neighbor left to contact — every topology here except the "
        "degenerate line, where all 24 brokers pair up and send)."
    )
    return result


def main() -> None:  # pragma: no cover - CLI convenience
    print(run(quick=False))


if __name__ == "__main__":  # pragma: no cover
    main()
