"""Transport-fault robustness: delivery ratio under loss and duplication.

The paper (like Siena) assumes reliable broker channels.  This experiment
quantifies the assumption on the real system — and, since the reliability
layer landed, how much of it the ACK/retransmit transport buys back:

* **loss**: each message is dropped with probability p.  A dropped EVENT
  message severs the remaining BROCLI chain (the search is serial), while
  a dropped NOTIFY loses one owner — so the unprotected delivery ratio
  falls faster than ``1 - p``.
* **reliability**: the same workload over
  :class:`~repro.network.reliable.ReliableNetwork` wrapping the lossy
  transport, at configurable retry budgets.  Delivery climbs back towards
  1.0 (a transfer only fails when *every* transmission of it drops) at
  the cost of ACK + retransmission bytes, which the sweep reports as the
  overhead line item.
* **duplication**: each message is duplicated with probability p.  With
  publish-id de-duplication in the broker layer, the delivery ratio must
  stay exactly 1.0 and consumers must see no duplicates — with and
  without the reliable transport (whose retransmissions are just another
  at-least-once duplicate source).

The RNG seed can be pinned via the ``REPRO_FAULT_SEED`` environment
variable (used by CI to sweep several seeds); an explicit ``seed``
argument always wins.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from repro.broker.system import SummaryPubSub
from repro.experiments.common import ExperimentResult
from repro.network.backbone import cable_wireless_24
from repro.network.faults import LossyNetwork
from repro.network.reliable import RetryPolicy
from repro.network.topology import Topology
from repro.workload.popularity import (
    draw_matched_sets,
    popularity_event,
    popularity_schema,
    probe_subscription,
)

__all__ = [
    "run",
    "measure_delivery_ratio",
    "measure_delivery",
    "DeliveryStats",
    "fault_seed",
]

#: Environment variable CI uses to sweep fault-injection RNG seeds.
SEED_ENV = "REPRO_FAULT_SEED"


def fault_seed(default: int = 0) -> int:
    """The fault-injection seed: ``REPRO_FAULT_SEED`` or ``default``."""
    return int(os.environ.get(SEED_ENV, default))


@dataclass(frozen=True)
class DeliveryStats:
    """What one fault-injected workload delivered and what it cost."""

    delivered: int
    expected: int
    duplicates: int
    #: event-phase reliability accounting (0 without a reliable transport)
    retransmits: int
    acks: int
    reliability_bytes: int
    send_failures: int
    #: BROCLI searches re-routed around an unreachable broker
    reroutes: int
    bytes_sent: int

    @property
    def ratio(self) -> float:
        return self.delivered / self.expected if self.expected else 1.0

    @property
    def overhead_fraction(self) -> float:
        """Reliability bytes as a fraction of all event-phase bytes."""
        return self.reliability_bytes / self.bytes_sent if self.bytes_sent else 0.0


def measure_delivery(
    topology: Topology,
    drop_probability: float,
    duplicate_probability: float,
    events: int,
    popularity: float = 0.25,
    seed: Optional[int] = None,
    retries: Optional[int] = None,
) -> DeliveryStats:
    """Run the popularity workload over a faulty transport.

    ``retries=None`` runs bare (the paper's reliable-channel assumption,
    violated); an integer wraps the lossy transport in a
    :class:`ReliableNetwork` with that retransmission budget.
    """
    seed = fault_seed() if seed is None else seed
    reliability = None if retries is None else RetryPolicy(retries=retries)
    system = SummaryPubSub(
        topology,
        popularity_schema(),
        network_cls=LossyNetwork,
        network_options={
            "drop_probability": drop_probability,
            "duplicate_probability": duplicate_probability,
            "seed": seed,
        },
        reliability=reliability,
    )
    sids = {}
    for broker_id in topology.brokers:
        sids[broker_id] = system.subscribe(broker_id, probe_subscription(broker_id))
    system.run_propagation_period()

    delivered = 0
    expected = 0
    duplicates = 0
    matched_sets = draw_matched_sets(topology.num_brokers, popularity, events, seed)
    for index, matched in enumerate(matched_sets):
        outcome = system.publish(index % topology.num_brokers, popularity_event(matched))
        got = [d.sid for d in outcome.deliveries]
        duplicates += len(got) - len(set(got))
        delivered += len(set(got))
        expected += len(matched)
    metrics = system.event_metrics
    return DeliveryStats(
        delivered=delivered,
        expected=expected,
        duplicates=duplicates,
        retransmits=metrics.retransmits,
        acks=metrics.acks,
        reliability_bytes=metrics.reliability_bytes,
        send_failures=metrics.send_failures,
        reroutes=system.router.event_reroutes,
        bytes_sent=metrics.bytes_sent,
    )


def measure_delivery_ratio(
    topology: Topology,
    drop_probability: float,
    duplicate_probability: float,
    events: int,
    popularity: float = 0.25,
    seed: int = 0,
    retries: Optional[int] = None,
) -> Tuple[float, int]:
    """(delivered / expected, duplicate deliveries observed)."""
    stats = measure_delivery(
        topology,
        drop_probability,
        duplicate_probability,
        events,
        popularity,
        seed,
        retries=retries,
    )
    return stats.ratio, stats.duplicates


def run(
    topology: Optional[Topology] = None,
    drop_rates: Sequence[float] = (0.0, 0.01, 0.05, 0.1, 0.2),
    retry_budgets: Sequence[int] = (1, 3),
    quick: bool = True,
    seed: Optional[int] = None,
) -> ExperimentResult:
    topology = topology if topology is not None else cable_wireless_24()
    events = 20 if quick else 200
    seed = fault_seed() if seed is None else seed

    retry_columns = [f"reliable@{budget}" for budget in retry_budgets]
    result = ExperimentResult(
        name="Transport robustness",
        description=(
            "Delivery ratio under message loss/duplication, bare vs "
            f"ACK/retransmit transport ({topology.num_brokers} brokers, "
            "25% popularity events)."
        ),
        columns=(
            ["drop%", "delivery_ratio"]
            + retry_columns
            + ["overhead%", "dup_delivery_ratio", "duplicates_seen"]
        ),
    )
    for drop in drop_rates:
        bare = measure_delivery(topology, drop, 0.0, events, seed=seed)
        row = {
            "drop%": round(drop * 100, 1),
            "delivery_ratio": round(bare.ratio, 3),
        }
        overhead = 0.0
        for budget, column in zip(retry_budgets, retry_columns):
            reliable = measure_delivery(
                topology, drop, 0.0, events, seed=seed, retries=budget
            )
            row[column] = round(reliable.ratio, 3)
            overhead = reliable.overhead_fraction
        row["overhead%"] = round(overhead * 100, 1)
        dup_stats = measure_delivery(
            topology, 0.0, min(1.0, drop * 4 + 0.2), events, seed=seed
        )
        row["dup_delivery_ratio"] = round(dup_stats.ratio, 3)
        row["duplicates_seen"] = dup_stats.duplicates
        result.add_row(**row)
    result.notes.append(
        "loss degrades super-linearly (the BROCLI search is serial); "
        "duplication is fully absorbed by publish-id de-duplication."
    )
    result.notes.append(
        "reliable@k wraps the same lossy transport in ReliableNetwork "
        "(k retransmissions, exponential backoff); overhead% is the "
        "ACK+retransmit share of event-phase bytes at the largest budget."
    )
    return result


def main() -> None:  # pragma: no cover - CLI convenience
    print(run(quick=False))


if __name__ == "__main__":  # pragma: no cover
    main()
