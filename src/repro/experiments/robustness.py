"""Transport-fault robustness: delivery ratio under loss and duplication.

The paper (like Siena) assumes reliable broker channels.  This experiment
quantifies the assumption on the real system:

* **loss**: each message is dropped with probability p.  A dropped EVENT
  message severs the remaining BROCLI chain (the search is serial), while
  a dropped NOTIFY loses one owner — so the delivery ratio falls faster
  than ``1 - p``.
* **duplication**: each message is duplicated with probability p.  With
  publish-id de-duplication in the broker layer, the delivery ratio must
  stay exactly 1.0 and consumers must see no duplicates.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.broker.system import SummaryPubSub
from repro.experiments.common import ExperimentResult
from repro.network.backbone import cable_wireless_24
from repro.network.faults import LossyNetwork
from repro.network.topology import Topology
from repro.workload.popularity import (
    draw_matched_sets,
    popularity_event,
    popularity_schema,
    probe_subscription,
)

__all__ = ["run", "measure_delivery_ratio"]


def measure_delivery_ratio(
    topology: Topology,
    drop_probability: float,
    duplicate_probability: float,
    events: int,
    popularity: float = 0.25,
    seed: int = 0,
) -> Tuple[float, int]:
    """(delivered / expected, duplicate deliveries observed)."""
    system = SummaryPubSub(
        topology,
        popularity_schema(),
        network_cls=LossyNetwork,
        network_options={
            "drop_probability": drop_probability,
            "duplicate_probability": duplicate_probability,
            "seed": seed,
        },
    )
    sids = {}
    for broker_id in topology.brokers:
        sids[broker_id] = system.subscribe(broker_id, probe_subscription(broker_id))
    system.run_propagation_period()

    delivered = 0
    expected = 0
    duplicates = 0
    matched_sets = draw_matched_sets(topology.num_brokers, popularity, events, seed)
    for index, matched in enumerate(matched_sets):
        outcome = system.publish(index % topology.num_brokers, popularity_event(matched))
        got = [d.sid for d in outcome.deliveries]
        duplicates += len(got) - len(set(got))
        delivered += len(set(got))
        expected += len(matched)
    return delivered / expected, duplicates


def run(
    topology: Optional[Topology] = None,
    drop_rates: Sequence[float] = (0.0, 0.01, 0.05, 0.1, 0.2),
    quick: bool = True,
    seed: int = 0,
) -> ExperimentResult:
    topology = topology if topology is not None else cable_wireless_24()
    events = 20 if quick else 200

    result = ExperimentResult(
        name="Transport robustness",
        description=(
            "Delivery ratio under message loss/duplication "
            f"({topology.num_brokers} brokers, 25% popularity events)."
        ),
        columns=["drop%", "delivery_ratio", "dup_delivery_ratio", "duplicates_seen"],
    )
    for drop in drop_rates:
        loss_ratio, _ = measure_delivery_ratio(
            topology, drop, 0.0, events, seed=seed
        )
        dup_ratio, duplicates = measure_delivery_ratio(
            topology, 0.0, min(1.0, drop * 4 + 0.2), events, seed=seed
        )
        result.add_row(
            **{
                "drop%": round(drop * 100, 1),
                "delivery_ratio": round(loss_ratio, 3),
                "dup_delivery_ratio": round(dup_ratio, 3),
                "duplicates_seen": duplicates,
            }
        )
    result.notes.append(
        "loss degrades super-linearly (the BROCLI search is serial); "
        "duplication is fully absorbed by publish-id de-duplication."
    )
    return result


def main() -> None:  # pragma: no cover - CLI convenience
    print(run(quick=False))


if __name__ == "__main__":  # pragma: no cover
    main()
