"""Scenario sweep: every named scenario, gated on the delivery oracle.

Runs each scenario from :data:`repro.workload.scenarios.SCENARIOS` and
reports one row per (scenario, substrate): publish/churn volumes, oracle
size, delivery ratio, duplicates, and the chaos-recovery counters.  Quick
mode (the default, used by tests and CI) drives the simulator only —
exact-oracle gates, sub-second per scenario; ``quick=False`` additionally
runs every scenario against the live :class:`LocalCluster`, including the
``failover`` kill/restart drill gated at ratio ≥ 0.99.

The module doubles as the CI smoke entry point::

    python -m repro.experiments.scenarios --scenario churn_storm \
        --substrate sim --report-out churn.json
    python -m repro.experiments.scenarios --scenario failover \
        --substrate live --report-out failover.json

which exits non-zero when a gate fails and writes a small JSON report for
artifact upload.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.experiments.common import ExperimentResult
from repro.workload.scenarios import (
    SCENARIOS,
    ScenarioOutcome,
    run_scenario_sim,
    scenario_config,
)

__all__ = ["run", "run_one", "main", "SIM_GATE", "LIVE_GATE"]

#: The simulator is deterministic and fault-free: the oracle is exact.
SIM_GATE = 1.0
#: The live gate tolerates frames that die with an abruptly killed broker.
LIVE_GATE = 0.99


def run_one(
    name: str, substrate: str, *, shards: Optional[int] = None, **overrides
) -> ScenarioOutcome:
    """Run one named scenario on one substrate and return its outcome.

    ``shards`` (live substrate only) runs every broker in the cluster as a
    :class:`~repro.runtime.sharded.ShardedBrokerRuntime` with that many
    matcher worker processes — the scenario gates are substrate-level
    invariants and must hold identically for the multicore deployment.
    """
    config = scenario_config(name, **overrides)
    if substrate == "sim":
        if shards:
            raise ValueError("shards only applies to the live substrate")
        return run_scenario_sim(config)
    if substrate == "live":
        from repro.runtime.chaos import run_scenario_live

        if shards:
            return run_scenario_live(config, shards=shards)
        return run_scenario_live(config)
    raise ValueError(f"unknown substrate {substrate!r} (sim | live)")


def check_gate(outcome: ScenarioOutcome) -> List[str]:
    """Return the list of gate violations (empty when the outcome passes)."""
    gate = SIM_GATE if outcome.substrate == "sim" else LIVE_GATE
    problems = []
    if outcome.delivery_ratio < gate:
        problems.append(
            f"delivery ratio {outcome.delivery_ratio:.4f} < {gate} "
            f"(missing {len(outcome.missing)} of {len(outcome.expected)})"
        )
    if outcome.duplicates:
        problems.append(f"{outcome.duplicates} duplicate consumer deliveries")
    if outcome.extras:
        problems.append(f"{len(outcome.extras)} deliveries the oracle never asked for")
    if outcome.frames_balance is not None:
        enqueued, processed = outcome.frames_balance
        if enqueued != processed:
            problems.append(
                f"frame arithmetic off: {enqueued} enqueued-net vs {processed} processed"
            )
    return problems


def _add_row(result: ExperimentResult, outcome: ScenarioOutcome) -> None:
    result.add_row(
        scenario=outcome.scenario,
        substrate=outcome.substrate,
        publishes=outcome.publishes,
        churn_ops=outcome.churn_ops,
        expected=len(outcome.expected),
        ratio=outcome.delivery_ratio,
        duplicates=outcome.duplicates,
        fallbacks=outcome.metrics.get("fallback_requests", 0),
    )


def run(quick: bool = True) -> ExperimentResult:
    """Sweep every named scenario; ``quick`` keeps it simulator-only."""
    result = ExperimentResult(
        name="scenarios",
        description=(
            "Named workload scenarios vs the brute-force delivery oracle "
            "(sim exact at 1.0; live chaos gated at ≥ 0.99, zero duplicates)"
        ),
        columns=[
            "scenario", "substrate", "publishes", "churn_ops",
            "expected", "ratio", "duplicates", "fallbacks",
        ],
    )
    failures: List[str] = []
    for name in sorted(SCENARIOS):
        outcome = run_one(name, "sim")
        _add_row(result, outcome)
        failures += [f"{name}/sim: {p}" for p in check_gate(outcome)]
        if not quick:
            outcome = run_one(name, "live")
            _add_row(result, outcome)
            failures += [f"{name}/live: {p}" for p in check_gate(outcome)]
    if failures:
        result.notes.extend(failures)
        raise AssertionError("scenario gates failed: " + "; ".join(failures))
    result.notes.append(
        "sim rows are exact against the no-fault oracle; live rows (full "
        "mode) include the failover kill/restart drill"
    )
    return result


def outcome_report(outcome: ScenarioOutcome) -> dict:
    """JSON-serialisable summary for CI artifacts."""
    return {
        "scenario": outcome.scenario,
        "substrate": outcome.substrate,
        "publishes": outcome.publishes,
        "churn_ops": outcome.churn_ops,
        "skipped_ops": outcome.skipped_ops,
        "expected": len(outcome.expected),
        "delivered": outcome.delivered,
        "delivery_ratio": outcome.delivery_ratio,
        "duplicates": outcome.duplicates,
        "extras": len(outcome.extras),
        "missing": len(outcome.missing),
        "frames_balance": list(outcome.frames_balance)
        if outcome.frames_balance is not None
        else None,
        "metrics": dict(outcome.metrics),
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Run workload scenarios against the delivery oracle."
    )
    parser.add_argument(
        "--scenario",
        action="append",
        choices=sorted(SCENARIOS),
        help="scenario name (repeatable; default: all)",
    )
    parser.add_argument(
        "--substrate",
        choices=("sim", "live"),
        default="sim",
        help="simulator (exact oracle) or live cluster (chaos gate)",
    )
    parser.add_argument(
        "--shards",
        type=int,
        metavar="N",
        help="live substrate only: run brokers as sharded multicore "
        "runtimes with N matcher worker processes each",
    )
    parser.add_argument(
        "--report-out",
        metavar="PATH",
        help="write per-scenario JSON outcomes to this file",
    )
    args = parser.parse_args(argv)
    if args.shards and args.substrate != "live":
        parser.error("--shards requires --substrate live")
    names = args.scenario or sorted(SCENARIOS)

    reports, failures = [], []
    for name in names:
        outcome = run_one(name, args.substrate, shards=args.shards)
        problems = check_gate(outcome)
        reports.append(outcome_report(outcome) | {"gate_failures": problems})
        failures += [f"{name}/{args.substrate}: {p}" for p in problems]
        status = "ok" if not problems else "FAIL"
        print(
            f"{name:>12s} [{args.substrate}] ratio={outcome.delivery_ratio:.4f} "
            f"expected={len(outcome.expected)} dup={outcome.duplicates} {status}"
        )
    if args.report_out:
        with open(args.report_out, "w", encoding="ascii") as fh:
            json.dump(reports, fh, indent=2, sort_keys=True)
    if failures:
        print("gate failures:", "; ".join(failures), file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
