"""Binary wire formats — bandwidth is measured on real encoded bytes."""

from repro.wire.codec import ByteReader, ByteWriter, CodecError, ValueWidth, WireCodec
from repro.wire.worker import (
    MatchReply,
    MatchRequest,
    SnapshotFrame,
    StopFrame,
    WorkerReady,
)
from repro.wire.messages import (
    AckMessage,
    AdvertisementMessage,
    EventMessage,
    Message,
    MessageCodec,
    MessageKind,
    NotifyMessage,
    ReliableDataMessage,
    SubscriptionBatchMessage,
    SummaryMessage,
)

__all__ = [
    "AckMessage",
    "AdvertisementMessage",
    "ByteReader",
    "ByteWriter",
    "CodecError",
    "EventMessage",
    "MatchReply",
    "MatchRequest",
    "Message",
    "MessageCodec",
    "MessageKind",
    "NotifyMessage",
    "ReliableDataMessage",
    "SnapshotFrame",
    "StopFrame",
    "SubscriptionBatchMessage",
    "SummaryMessage",
    "ValueWidth",
    "WireCodec",
    "WorkerReady",
]
