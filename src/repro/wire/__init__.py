"""Binary wire formats — bandwidth is measured on real encoded bytes."""

from repro.wire.codec import ByteReader, ByteWriter, CodecError, ValueWidth, WireCodec
from repro.wire.messages import (
    AdvertisementMessage,
    EventMessage,
    Message,
    MessageCodec,
    MessageKind,
    NotifyMessage,
    SubscriptionBatchMessage,
    SummaryMessage,
)

__all__ = [
    "AdvertisementMessage",
    "ByteReader",
    "ByteWriter",
    "CodecError",
    "EventMessage",
    "Message",
    "MessageCodec",
    "MessageKind",
    "NotifyMessage",
    "SubscriptionBatchMessage",
    "SummaryMessage",
    "ValueWidth",
    "WireCodec",
]
