"""Typed broker-to-broker messages and their wire encoding.

Everything a broker sends to another broker in any of the three systems
(summary-based, Siena-style, broadcast baseline) is one of these messages.
The simulator charges ``MessageCodec.size(message)`` bytes per link
traversal, so bandwidth figures come from real encodings:

* :class:`SummaryMessage` — a (multi-broker) subscription summary plus its
  ``Merged_Brokers`` set (Algorithm 2 payload).
* :class:`SubscriptionBatchMessage` — raw subscriptions with their ids
  (what Siena and the broadcast baseline propagate).
* :class:`EventMessage` — an event plus its ``BROCLI`` broker-check-list
  (Algorithm 3 payload; Siena/baseline send an empty BROCLI).
* :class:`NotifyMessage` — an event delivered to the owning broker along
  with the subscription ids it matched (Algorithm 1, step 3).

The reliability layer (:mod:`repro.network.reliable`) adds two transport
frames so its overhead is charged in real bytes like everything else:

* :class:`ReliableDataMessage` — any of the above wrapped with a transfer
  id the receiver must acknowledge (the varint id is the per-message
  header cost of reliable delivery).
* :class:`AckMessage` — the acknowledgement for one transfer id.

The live runtime (:mod:`repro.runtime`) speaks the same codec over real TCP
connections and adds a small client/peer control plane:

* :class:`HelloMessage` — the mandatory first frame on every connection,
  naming the peer's role (:data:`ROLE_PEER` with its broker id, or
  :data:`ROLE_PRODUCER` / :data:`ROLE_SUBSCRIBER` for client sessions).
* :class:`SubscribeMessage` / :class:`UnsubscribeMessage` — a subscriber
  session's SUB frames, correlated by a client-chosen ``request_id``.
* :class:`SubAckMessage` — the broker's reply carrying the minted
  :class:`~repro.model.ids.SubscriptionId` (or an error string).
* :class:`PingMessage` / :class:`PongMessage` — an in-order barrier: a PONG
  proves every frame the client sent before the PING has been processed,
  and every NOTIFY queued before it has been transmitted.

Producer PUB frames reuse :class:`EventMessage` (empty BROCLI, publish id
0 — the ingress broker mints the real id) and deliveries to subscriber
sessions reuse :class:`NotifyMessage`, so the live wire stays the same
message union the simulator charges bytes for.
"""

from __future__ import annotations

import enum
from collections import OrderedDict
from dataclasses import dataclass
from typing import FrozenSet, Tuple, Union

from repro.model.events import Event
from repro.model.ids import SubscriptionId
from repro.model.subscriptions import Subscription
from repro.summary.summary import BrokerSummary
from repro.wire.codec import ByteReader, ByteWriter, CodecError, WireCodec, _decode_guard

__all__ = [
    "AckMessage",
    "AdvertisementMessage",
    "HelloMessage",
    "MessageKind",
    "PingMessage",
    "PongMessage",
    "ReliableDataMessage",
    "ROLE_PEER",
    "ROLE_PRODUCER",
    "ROLE_SUBSCRIBER",
    "SummaryMessage",
    "SummaryDeltaMessage",
    "SummaryRequestMessage",
    "SubAckMessage",
    "SubscribeMessage",
    "SubscriptionBatchMessage",
    "EventMessage",
    "NotifyMessage",
    "UnsubscribeMessage",
    "Message",
    "MessageCodec",
]


class MessageKind(enum.IntEnum):
    SUMMARY = 0
    SUBSCRIPTION_BATCH = 1
    EVENT = 2
    NOTIFY = 3
    ADVERTISEMENT = 4
    ACK = 5
    RELIABLE_DATA = 6
    # -- live-runtime control plane (repro.runtime) --
    HELLO = 7
    SUBSCRIBE = 8
    SUB_ACK = 9
    UNSUBSCRIBE = 10
    PING = 11
    PONG = 12
    # -- incremental propagation (delta mode) --
    SUMMARY_DELTA = 13
    SUMMARY_REQUEST = 14


#: :class:`HelloMessage` roles — who is on the other end of a connection.
ROLE_PEER = 0  # another broker; ``identity`` is its broker id
ROLE_PRODUCER = 1  # an Event Source client session
ROLE_SUBSCRIBER = 2  # an Event Displayer client session


@dataclass(frozen=True)
class SummaryMessage:
    """Algorithm 2: merged summary + the Merged_Brokers set."""

    summary: BrokerSummary
    merged_brokers: FrozenSet[int]

    kind = MessageKind.SUMMARY


@dataclass(frozen=True)
class SummaryDeltaMessage:
    """One period's incremental summary update (delta propagation mode).

    ``adds`` is the period delta (rows for subscriptions that are new on
    this link), ``removed`` the ids withdrawn since the last delta, and
    ``merged_brokers`` the accompanying Merged_Brokers contribution — the
    same Algorithm-2 payload as :class:`SummaryMessage`, but incremental.

    The generation pair implements per-link delta chaining: the receiver
    applies the delta only when ``base_generation`` equals the generation
    it last acked from this sender; otherwise it answers with a
    :class:`SummaryRequestMessage` and the sender falls back to a full
    :class:`SummaryMessage` (which resets the link to generation 0).
    Id sets inside ``adds`` and ``removed`` ride the compressed container
    encoding of :mod:`repro.summary.idsets`.
    """

    adds: BrokerSummary
    removed: FrozenSet[SubscriptionId]
    merged_brokers: FrozenSet[int]
    base_generation: int
    generation: int

    kind = MessageKind.SUMMARY_DELTA


@dataclass(frozen=True)
class SummaryRequestMessage:
    """A receiver's request for a full summary after rejecting a delta.

    ``generation`` echoes the receiver's current acked generation for the
    link (diagnostic only — any full :class:`SummaryMessage` answer resets
    the link regardless).
    """

    generation: int = 0

    kind = MessageKind.SUMMARY_REQUEST


@dataclass(frozen=True)
class SubscriptionBatchMessage:
    """Raw subscription propagation (Siena and the broadcast baseline)."""

    entries: Tuple[Tuple[SubscriptionId, Subscription], ...]

    kind = MessageKind.SUBSCRIPTION_BATCH

    def __len__(self) -> int:
        return len(self.entries)


@dataclass(frozen=True)
class EventMessage:
    """An event in flight, carrying its BROCLI broker-check-list.

    ``publish_id`` uniquely identifies the originating publish call, so
    brokers can de-duplicate redeliveries on at-least-once transports.
    """

    event: Event
    brocli: FrozenSet[int]
    publish_id: int = 0

    kind = MessageKind.EVENT


@dataclass(frozen=True)
class NotifyMessage:
    """Event + matched ids, forwarded to the broker owning the matches."""

    event: Event
    matched: FrozenSet[SubscriptionId]
    publish_id: int = 0

    kind = MessageKind.NOTIFY


@dataclass(frozen=True)
class AdvertisementMessage:
    """Producer advertisements (section-6 advertisement extension).

    An advertisement is structurally a subscription — a conjunction of
    constraints describing the event space a producer will publish — so the
    payload reuses the (id, subscription) batch layout under its own kind.
    """

    entries: Tuple[Tuple[SubscriptionId, Subscription], ...]

    kind = MessageKind.ADVERTISEMENT

    def __len__(self) -> int:
        return len(self.entries)


@dataclass(frozen=True)
class AckMessage:
    """Transport acknowledgement for one reliable transfer.

    Sent by the receiving endpoint of a :class:`ReliableDataMessage`;
    never wrapped itself (a lost ACK is repaired by the sender's
    retransmission timer, not by acking the ACK).
    """

    transfer_id: int

    kind = MessageKind.ACK


@dataclass(frozen=True)
class ReliableDataMessage:
    """A payload message framed with the reliability header.

    ``transfer_id`` identifies one logical send on one link; the receiver
    acks it and the sender retransmits the same frame until acked or the
    retry budget is exhausted.  Nesting reliability frames is a codec
    error: the payload is always one of the application messages above.
    """

    transfer_id: int
    payload: "Message"

    kind = MessageKind.RELIABLE_DATA


@dataclass(frozen=True)
class HelloMessage:
    """First frame on every live-runtime connection: who is speaking.

    ``role`` is one of :data:`ROLE_PEER` / :data:`ROLE_PRODUCER` /
    :data:`ROLE_SUBSCRIBER`; ``identity`` is the sender's broker id for
    peers and a free client-chosen tag (default 0) for client sessions.
    """

    role: int
    identity: int = 0

    kind = MessageKind.HELLO


@dataclass(frozen=True)
class SubscribeMessage:
    """A subscriber session's SUB frame: register one subscription.

    ``request_id`` correlates the broker's :class:`SubAckMessage` reply on
    a connection that also carries asynchronous NOTIFY frames.
    """

    request_id: int
    subscription: Subscription

    kind = MessageKind.SUBSCRIBE


@dataclass(frozen=True)
class UnsubscribeMessage:
    """A subscriber session's request to withdraw one subscription."""

    request_id: int
    sid: SubscriptionId

    kind = MessageKind.UNSUBSCRIBE


@dataclass(frozen=True)
class SubAckMessage:
    """The broker's reply to SUBSCRIBE/UNSUBSCRIBE.

    On success ``sid`` carries the minted (or withdrawn) subscription id
    and ``error`` is empty; on failure ``sid`` is None and ``error`` says
    why (e.g. id-space exhaustion, unknown sid).
    """

    request_id: int
    sid: "SubscriptionId | None" = None
    error: str = ""

    kind = MessageKind.SUB_ACK

    @property
    def ok(self) -> bool:
        return self.sid is not None and not self.error


@dataclass(frozen=True)
class PingMessage:
    """A client-side barrier probe (see :class:`PongMessage`)."""

    token: int

    kind = MessageKind.PING


@dataclass(frozen=True)
class PongMessage:
    """Reply to one PING.  Because frames are processed in order and the
    reply queues behind any pending NOTIFY frames, receiving the PONG
    proves (a) every frame the client sent before the PING was fully
    processed by the broker, and (b) every notification enqueued for this
    session before the PING was already transmitted."""

    token: int

    kind = MessageKind.PONG


Message = Union[
    SummaryMessage,
    SummaryDeltaMessage,
    SummaryRequestMessage,
    SubscriptionBatchMessage,
    EventMessage,
    NotifyMessage,
    AdvertisementMessage,
    AckMessage,
    ReliableDataMessage,
    HelloMessage,
    SubscribeMessage,
    UnsubscribeMessage,
    SubAckMessage,
    PingMessage,
    PongMessage,
]


#: Bound on the hot-frame encode memo (EVENT/NOTIFY frames only).
HOT_FRAME_CACHE_ENTRIES = 4096

#: Tag -> kind without the (slow) enum constructor on every frame.
_KIND_BY_TAG = {kind.value: kind for kind in MessageKind}


class MessageCodec:
    """Encodes/decodes the message union with a one-byte kind tag."""

    def __init__(self, wire: WireCodec):
        self.wire = wire
        # EVENT and NOTIFY frames are deeply immutable (frozen dataclass
        # over an immutable Event and frozensets), so their encodings can
        # be memoized: the routing layer sizes a frame for the bandwidth
        # ledger and the writer loop encodes the same frame again moments
        # later.  SUMMARY and SUMMARY_DELTA frames hold a *mutable*
        # BrokerSummary (delta frames are built straight from live
        # ``delta_summary`` state) and must never be cached — a stale
        # memo entry would re-send pre-mutation bytes after a size() call.
        self._hot_frames: "OrderedDict[Message, bytes]" = OrderedDict()

    # -- encoding --------------------------------------------------------------

    def encode(self, message: Message) -> bytes:
        if isinstance(message, (EventMessage, NotifyMessage)):
            cache = self._hot_frames
            data = cache.get(message)
            if data is not None:
                cache.move_to_end(message)
                return data
            data = self._encode(message)
            cache[message] = data
            if len(cache) > HOT_FRAME_CACHE_ENTRIES:
                cache.popitem(last=False)
            return data
        return self._encode(message)

    def _encode(self, message: Message) -> bytes:
        writer = ByteWriter()
        writer.byte(int(message.kind))
        # EVENT and NOTIFY first: they dominate the live hot path.
        if isinstance(message, EventMessage):
            writer.varint(message.publish_id)
            self.wire.write_broker_set(writer, message.brocli)
            payload = self.wire.encode_event(message.event)
            writer.varint(len(payload))
            writer.raw(payload)
        elif isinstance(message, NotifyMessage):
            writer.varint(message.publish_id)
            self.wire.write_id_list(writer, message.matched)
            payload = self.wire.encode_event(message.event)
            writer.varint(len(payload))
            writer.raw(payload)
        elif isinstance(message, SummaryMessage):
            self.wire.write_broker_set(writer, set(message.merged_brokers))
            payload = self.wire.encode_summary(message.summary)
            writer.varint(len(payload))
            writer.raw(payload)
        elif isinstance(message, SummaryDeltaMessage):
            writer.varint(message.base_generation)
            writer.varint(message.generation)
            self.wire.write_broker_set(writer, set(message.merged_brokers))
            self.wire.write_compact_id_set(writer, set(message.removed))
            payload = self.wire.encode_summary_compact(message.adds)
            writer.varint(len(payload))
            writer.raw(payload)
        elif isinstance(message, SummaryRequestMessage):
            writer.varint(message.generation)
        elif isinstance(message, (SubscriptionBatchMessage, AdvertisementMessage)):
            writer.varint(len(message.entries))
            for sid, subscription in message.entries:
                writer.raw(self.wire.id_codec.to_bytes(sid))
                self.wire.write_subscription(writer, subscription)
        elif isinstance(message, AckMessage):
            writer.varint(message.transfer_id)
        elif isinstance(message, HelloMessage):
            if message.role not in (ROLE_PEER, ROLE_PRODUCER, ROLE_SUBSCRIBER):
                raise CodecError(f"unknown hello role {message.role}")
            writer.byte(message.role)
            writer.varint(message.identity)
        elif isinstance(message, SubscribeMessage):
            writer.varint(message.request_id)
            self.wire.write_subscription(writer, message.subscription)
        elif isinstance(message, UnsubscribeMessage):
            writer.varint(message.request_id)
            writer.raw(self.wire.id_codec.to_bytes(message.sid))
        elif isinstance(message, SubAckMessage):
            writer.varint(message.request_id)
            if message.sid is not None:
                writer.byte(1)
                writer.raw(self.wire.id_codec.to_bytes(message.sid))
            else:
                writer.byte(0)
                writer.string(message.error)
        elif isinstance(message, (PingMessage, PongMessage)):
            writer.varint(message.token)
        elif isinstance(message, ReliableDataMessage):
            if isinstance(message.payload, (AckMessage, ReliableDataMessage)):
                raise CodecError("reliability frames cannot nest")
            writer.varint(message.transfer_id)
            payload = self.encode(message.payload)
            writer.varint(len(payload))
            writer.raw(payload)
        else:  # pragma: no cover - closed union
            raise CodecError(f"unknown message type {type(message).__name__}")
        return writer.getvalue()

    @_decode_guard
    def decode(self, data: bytes) -> Message:
        reader = ByteReader(data)
        tag = reader.byte()
        kind = _KIND_BY_TAG.get(tag)
        if kind is None:
            raise CodecError(f"unknown message kind {tag}")
        # EVENT and NOTIFY first: they dominate the live hot path.
        if kind is MessageKind.EVENT:
            publish_id = reader.varint()
            brocli = frozenset(self.wire.read_broker_set(reader))
            payload = reader.raw(reader.varint())
            message: Message = EventMessage(
                event=self.wire.decode_event(payload),
                brocli=brocli,
                publish_id=publish_id,
            )
        elif kind is MessageKind.NOTIFY:
            publish_id = reader.varint()
            matched = frozenset(self.wire.read_id_list(reader))
            payload = reader.raw(reader.varint())
            message = NotifyMessage(
                event=self.wire.decode_event(payload),
                matched=matched,
                publish_id=publish_id,
            )
        elif kind is MessageKind.SUMMARY:
            brokers = frozenset(self.wire.read_broker_set(reader))
            payload = reader.raw(reader.varint())
            message = SummaryMessage(
                summary=self.wire.decode_summary(payload), merged_brokers=brokers
            )
        elif kind is MessageKind.SUMMARY_DELTA:
            base_generation = reader.varint()
            generation = reader.varint()
            brokers = frozenset(self.wire.read_broker_set(reader))
            removed = frozenset(self.wire.read_compact_id_set(reader))
            payload = reader.raw(reader.varint())
            message = SummaryDeltaMessage(
                adds=self.wire.decode_summary_compact(payload),
                removed=removed,
                merged_brokers=brokers,
                base_generation=base_generation,
                generation=generation,
            )
        elif kind is MessageKind.SUMMARY_REQUEST:
            message = SummaryRequestMessage(generation=reader.varint())
        elif kind in (MessageKind.SUBSCRIPTION_BATCH, MessageKind.ADVERTISEMENT):
            count = reader.varint()
            entries = []
            for _ in range(count):
                sid = self.wire.id_codec.from_bytes(
                    reader.raw(self.wire.id_codec.byte_size)
                )
                entries.append((sid, self.wire.read_subscription(reader)))
            if kind is MessageKind.SUBSCRIPTION_BATCH:
                message = SubscriptionBatchMessage(entries=tuple(entries))
            else:
                message = AdvertisementMessage(entries=tuple(entries))
        elif kind is MessageKind.ACK:
            message = AckMessage(transfer_id=reader.varint())
        elif kind is MessageKind.HELLO:
            role = reader.byte()
            if role not in (ROLE_PEER, ROLE_PRODUCER, ROLE_SUBSCRIBER):
                raise CodecError(f"unknown hello role {role}")
            message = HelloMessage(role=role, identity=reader.varint())
        elif kind is MessageKind.SUBSCRIBE:
            request_id = reader.varint()
            message = SubscribeMessage(
                request_id=request_id,
                subscription=self.wire.read_subscription(reader),
            )
        elif kind is MessageKind.UNSUBSCRIBE:
            request_id = reader.varint()
            sid = self.wire.id_codec.from_bytes(
                reader.raw(self.wire.id_codec.byte_size)
            )
            message = UnsubscribeMessage(request_id=request_id, sid=sid)
        elif kind is MessageKind.SUB_ACK:
            request_id = reader.varint()
            if reader.byte():
                sid = self.wire.id_codec.from_bytes(
                    reader.raw(self.wire.id_codec.byte_size)
                )
                message = SubAckMessage(request_id=request_id, sid=sid)
            else:
                message = SubAckMessage(
                    request_id=request_id, sid=None, error=reader.string()
                )
        elif kind is MessageKind.PING:
            message = PingMessage(token=reader.varint())
        elif kind is MessageKind.PONG:
            message = PongMessage(token=reader.varint())
        elif kind is MessageKind.RELIABLE_DATA:
            transfer_id = reader.varint()
            payload_bytes = reader.raw(reader.varint())
            inner = self.decode(payload_bytes)
            if isinstance(inner, (AckMessage, ReliableDataMessage)):
                raise CodecError("reliability frames cannot nest")
            message = ReliableDataMessage(transfer_id=transfer_id, payload=inner)
        else:  # pragma: no cover - every tag is handled above
            raise CodecError(f"unknown message kind {tag}")
        if not reader.at_end():
            raise CodecError(f"{reader.remaining} trailing bytes after message")
        return message

    def size(self, message: Message) -> int:
        """Encoded length in bytes — what the simulator charges per hop."""
        return len(self.encode(message))
