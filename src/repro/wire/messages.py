"""Typed broker-to-broker messages and their wire encoding.

Everything a broker sends to another broker in any of the three systems
(summary-based, Siena-style, broadcast baseline) is one of these messages.
The simulator charges ``MessageCodec.size(message)`` bytes per link
traversal, so bandwidth figures come from real encodings:

* :class:`SummaryMessage` — a (multi-broker) subscription summary plus its
  ``Merged_Brokers`` set (Algorithm 2 payload).
* :class:`SubscriptionBatchMessage` — raw subscriptions with their ids
  (what Siena and the broadcast baseline propagate).
* :class:`EventMessage` — an event plus its ``BROCLI`` broker-check-list
  (Algorithm 3 payload; Siena/baseline send an empty BROCLI).
* :class:`NotifyMessage` — an event delivered to the owning broker along
  with the subscription ids it matched (Algorithm 1, step 3).

The reliability layer (:mod:`repro.network.reliable`) adds two transport
frames so its overhead is charged in real bytes like everything else:

* :class:`ReliableDataMessage` — any of the above wrapped with a transfer
  id the receiver must acknowledge (the varint id is the per-message
  header cost of reliable delivery).
* :class:`AckMessage` — the acknowledgement for one transfer id.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import FrozenSet, Tuple, Union

from repro.model.events import Event
from repro.model.ids import SubscriptionId
from repro.model.subscriptions import Subscription
from repro.summary.summary import BrokerSummary
from repro.wire.codec import ByteReader, ByteWriter, CodecError, WireCodec, _decode_guard

__all__ = [
    "AckMessage",
    "AdvertisementMessage",
    "MessageKind",
    "ReliableDataMessage",
    "SummaryMessage",
    "SubscriptionBatchMessage",
    "EventMessage",
    "NotifyMessage",
    "Message",
    "MessageCodec",
]


class MessageKind(enum.IntEnum):
    SUMMARY = 0
    SUBSCRIPTION_BATCH = 1
    EVENT = 2
    NOTIFY = 3
    ADVERTISEMENT = 4
    ACK = 5
    RELIABLE_DATA = 6


@dataclass(frozen=True)
class SummaryMessage:
    """Algorithm 2: merged summary + the Merged_Brokers set."""

    summary: BrokerSummary
    merged_brokers: FrozenSet[int]

    kind = MessageKind.SUMMARY


@dataclass(frozen=True)
class SubscriptionBatchMessage:
    """Raw subscription propagation (Siena and the broadcast baseline)."""

    entries: Tuple[Tuple[SubscriptionId, Subscription], ...]

    kind = MessageKind.SUBSCRIPTION_BATCH

    def __len__(self) -> int:
        return len(self.entries)


@dataclass(frozen=True)
class EventMessage:
    """An event in flight, carrying its BROCLI broker-check-list.

    ``publish_id`` uniquely identifies the originating publish call, so
    brokers can de-duplicate redeliveries on at-least-once transports.
    """

    event: Event
    brocli: FrozenSet[int]
    publish_id: int = 0

    kind = MessageKind.EVENT


@dataclass(frozen=True)
class NotifyMessage:
    """Event + matched ids, forwarded to the broker owning the matches."""

    event: Event
    matched: FrozenSet[SubscriptionId]
    publish_id: int = 0

    kind = MessageKind.NOTIFY


@dataclass(frozen=True)
class AdvertisementMessage:
    """Producer advertisements (section-6 advertisement extension).

    An advertisement is structurally a subscription — a conjunction of
    constraints describing the event space a producer will publish — so the
    payload reuses the (id, subscription) batch layout under its own kind.
    """

    entries: Tuple[Tuple[SubscriptionId, Subscription], ...]

    kind = MessageKind.ADVERTISEMENT

    def __len__(self) -> int:
        return len(self.entries)


@dataclass(frozen=True)
class AckMessage:
    """Transport acknowledgement for one reliable transfer.

    Sent by the receiving endpoint of a :class:`ReliableDataMessage`;
    never wrapped itself (a lost ACK is repaired by the sender's
    retransmission timer, not by acking the ACK).
    """

    transfer_id: int

    kind = MessageKind.ACK


@dataclass(frozen=True)
class ReliableDataMessage:
    """A payload message framed with the reliability header.

    ``transfer_id`` identifies one logical send on one link; the receiver
    acks it and the sender retransmits the same frame until acked or the
    retry budget is exhausted.  Nesting reliability frames is a codec
    error: the payload is always one of the application messages above.
    """

    transfer_id: int
    payload: "Message"

    kind = MessageKind.RELIABLE_DATA


Message = Union[
    SummaryMessage,
    SubscriptionBatchMessage,
    EventMessage,
    NotifyMessage,
    AdvertisementMessage,
    AckMessage,
    ReliableDataMessage,
]


class MessageCodec:
    """Encodes/decodes the message union with a one-byte kind tag."""

    def __init__(self, wire: WireCodec):
        self.wire = wire

    # -- encoding --------------------------------------------------------------

    def encode(self, message: Message) -> bytes:
        writer = ByteWriter()
        writer.byte(int(message.kind))
        if isinstance(message, SummaryMessage):
            self.wire.write_broker_set(writer, set(message.merged_brokers))
            payload = self.wire.encode_summary(message.summary)
            writer.varint(len(payload))
            writer.raw(payload)
        elif isinstance(message, (SubscriptionBatchMessage, AdvertisementMessage)):
            writer.varint(len(message.entries))
            for sid, subscription in message.entries:
                writer.raw(self.wire.id_codec.to_bytes(sid))
                self.wire.write_subscription(writer, subscription)
        elif isinstance(message, EventMessage):
            writer.varint(message.publish_id)
            self.wire.write_broker_set(writer, set(message.brocli))
            payload = self.wire.encode_event(message.event)
            writer.varint(len(payload))
            writer.raw(payload)
        elif isinstance(message, NotifyMessage):
            writer.varint(message.publish_id)
            self.wire.write_id_list(writer, set(message.matched))
            payload = self.wire.encode_event(message.event)
            writer.varint(len(payload))
            writer.raw(payload)
        elif isinstance(message, AckMessage):
            writer.varint(message.transfer_id)
        elif isinstance(message, ReliableDataMessage):
            if isinstance(message.payload, (AckMessage, ReliableDataMessage)):
                raise CodecError("reliability frames cannot nest")
            writer.varint(message.transfer_id)
            payload = self.encode(message.payload)
            writer.varint(len(payload))
            writer.raw(payload)
        else:  # pragma: no cover - closed union
            raise CodecError(f"unknown message type {type(message).__name__}")
        return writer.getvalue()

    @_decode_guard
    def decode(self, data: bytes) -> Message:
        reader = ByteReader(data)
        tag = reader.byte()
        try:
            kind = MessageKind(tag)
        except ValueError:
            raise CodecError(f"unknown message kind {tag}") from None
        if kind is MessageKind.SUMMARY:
            brokers = frozenset(self.wire.read_broker_set(reader))
            payload = reader.raw(reader.varint())
            message: Message = SummaryMessage(
                summary=self.wire.decode_summary(payload), merged_brokers=brokers
            )
        elif kind in (MessageKind.SUBSCRIPTION_BATCH, MessageKind.ADVERTISEMENT):
            count = reader.varint()
            entries = []
            for _ in range(count):
                sid = self.wire.id_codec.from_bytes(
                    reader.raw(self.wire.id_codec.byte_size)
                )
                entries.append((sid, self.wire.read_subscription(reader)))
            if kind is MessageKind.SUBSCRIPTION_BATCH:
                message = SubscriptionBatchMessage(entries=tuple(entries))
            else:
                message = AdvertisementMessage(entries=tuple(entries))
        elif kind is MessageKind.ACK:
            message = AckMessage(transfer_id=reader.varint())
        elif kind is MessageKind.RELIABLE_DATA:
            transfer_id = reader.varint()
            payload_bytes = reader.raw(reader.varint())
            inner = self.decode(payload_bytes)
            if isinstance(inner, (AckMessage, ReliableDataMessage)):
                raise CodecError("reliability frames cannot nest")
            message = ReliableDataMessage(transfer_id=transfer_id, payload=inner)
        elif kind is MessageKind.EVENT:
            publish_id = reader.varint()
            brocli = frozenset(self.wire.read_broker_set(reader))
            payload = reader.raw(reader.varint())
            message = EventMessage(
                event=self.wire.decode_event(payload),
                brocli=brocli,
                publish_id=publish_id,
            )
        else:
            publish_id = reader.varint()
            matched = frozenset(self.wire.read_id_list(reader))
            payload = reader.raw(reader.varint())
            message = NotifyMessage(
                event=self.wire.decode_event(payload),
                matched=matched,
                publish_id=publish_id,
            )
        if not reader.at_end():
            raise CodecError(f"{reader.remaining} trailing bytes after message")
        return message

    def size(self, message: Message) -> int:
        """Encoded length in bytes — what the simulator charges per hop."""
        return len(self.encode(message))
