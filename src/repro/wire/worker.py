"""Acceptor ↔ shard-worker frames for the multicore broker runtime.

A :class:`~repro.runtime.sharded.ShardedBrokerRuntime` keeps the whole
control plane (SUBSCRIBE/SUMMARY/SUMMARY_DELTA, periods, snapshots, the
SIGTERM drain) in the acceptor process and fans only Algorithm 3's step 1
— the kept-summary match — out to worker processes.  These frames are the
complete protocol spoken over each worker's :class:`multiprocessing.Pipe`;
they travel pickled (same-host, same-interpreter trust domain), *not*
through :class:`~repro.wire.codec.MessageCodec` — no byte accounting
applies, they never cross a network link.

Ordering is the correctness mechanism: a pipe is FIFO, so a
:class:`SnapshotFrame` sent before a :class:`MatchRequest` is always
applied before it.  The acceptor broadcasts a fresh snapshot whenever the
kept summary's ``(object, generation)`` moved since the last broadcast and
stamps every request with the fence token of the snapshot it expects; a
worker whose installed token disagrees answers with ``matched=None``
instead of silently matching stale state (see
``docs/architecture.md`` §9 for the invariant).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Optional, Tuple

from repro.model.events import Event
from repro.model.ids import SubscriptionId

__all__ = [
    "MatchReply",
    "MatchRequest",
    "SnapshotFrame",
    "StopFrame",
    "WorkerReady",
]


@dataclass(frozen=True)
class WorkerReady:
    """First frame on every worker pipe: the spawn completed, imports are
    paid for, the worker's recv loop is live.  ``pid`` lets the acceptor
    report per-shard process ids in metrics and error messages."""

    shard: int
    pid: int


@dataclass(frozen=True)
class SnapshotFrame:
    """A read-only kept-summary snapshot for the worker to compile.

    ``payload`` is the pickled :class:`~repro.summary.summary.BrokerSummary`
    — pickled eagerly by the acceptor *before* the frame is handed to the
    send thread, so a concurrent summary mutation on the acceptor's event
    loop can never tear the bytes.  ``fence`` is the monotone per-runtime
    snapshot serial used to fence match requests; it deliberately is NOT
    the summary generation (``reset_merged_state`` swaps the summary object
    and restarts generations, which could collide)."""

    fence: int
    payload: bytes


@dataclass(frozen=True)
class MatchRequest:
    """Match a sub-burst against the snapshot installed under ``fence``.

    ``events`` preserves the acceptor's arrival order for this shard;
    ``request_id`` correlates the reply (replies are FIFO per pipe, the id
    is a cross-check, not a reordering mechanism)."""

    request_id: int
    fence: int
    events: Tuple[Event, ...]


@dataclass(frozen=True)
class MatchReply:
    """Worker answer to one :class:`MatchRequest`.

    ``matched[i]`` is the id set for ``events[i]``.  ``matched=None``
    signals a fence violation: the worker's installed snapshot token
    differs from the request's (or no snapshot arrived yet) — the acceptor
    treats that as a protocol error, never as an empty match."""

    request_id: int
    shard: int
    fence: int
    matched: Optional[Tuple[FrozenSet[SubscriptionId], ...]]
    #: Events matched by this worker since spawn (cumulative, for the
    #: acceptor's per-shard gauges — piggybacked so metrics need no extra
    #: round trip).
    events_matched: int = 0


@dataclass(frozen=True)
class StopFrame:
    """Graceful shutdown: the worker drains nothing further, replies to
    nothing, and exits its loop (process join follows)."""
