"""Binary wire codec for events, subscriptions and summaries.

The paper's headline metric is network bandwidth in bytes, so this
reproduction *encodes* everything that crosses a broker link and charges the
real encoded length — no hand-waved size constants in the simulator itself.
(The analytic model of section 5.1 lives separately in
:mod:`repro.analysis.cost_model`; tests check the two agree.)

Format overview (all integers are unsigned LEB128 varints unless noted):

* strings: ``varint length + utf-8 bytes``
* arithmetic values: IEEE float, big-endian, 4 or 8 bytes per
  :class:`ValueWidth`.  Table 2 uses ``sst = 4`` so experiments run with
  ``F32``; ``F64`` exists for lossless round-trips (and is the default).
* subscription ids: fixed-width packed ``c1|c2|c3`` via
  :class:`repro.model.ids.IdCodec`
* subscriptions: constraints as ``(attr position, operator tag, operand)``
* summaries: per-attribute AACS (sub-range rows then equality rows) and
  SACS (pattern rows) sections

The codec is schema-aware: attribute *positions* (not names) go on the wire,
which is exactly why the paper requires the ordered attribute set to be
known by every broker (section 3, assumption iii).
"""

from __future__ import annotations

import enum
import math
import struct
from collections import OrderedDict
from typing import Dict, List, Set, Tuple

from repro.model.constraints import Constraint, Operator
from repro.model.events import Event
from repro.model.types import AttributeValue
from repro.model.ids import IdCodec, SubscriptionId
from repro.model.schema import Schema
from repro.model.subscriptions import Subscription
from repro.model.types import AttributeType
from repro.summary import idsets
from repro.summary.aacs import AACS
from repro.summary.intervals import Interval
from repro.summary.patterns import (
    ConjunctionPattern,
    GlobPattern,
    NotEqualsPattern,
    StringPattern,
)
from repro.summary.precision import Precision
from repro.summary.sacs import SACS
from repro.summary.summary import BrokerSummary

__all__ = ["ValueWidth", "WireCodec", "ByteWriter", "ByteReader", "CodecError"]


class CodecError(ValueError):
    """Malformed wire data."""


def _decode_guard(fn):
    """Public decoders must fail with CodecError, whatever the garbage.

    Malformed input can surface as UnicodeDecodeError (bad UTF-8),
    ValueError (out-of-range ids, empty intervals), or model-layer
    TypeErrors; callers should only ever have to catch CodecError.
    """

    import functools

    @functools.wraps(fn)
    def guarded(*args, **kwargs):
        try:
            return fn(*args, **kwargs)
        except CodecError:
            raise
        except (ValueError, TypeError, UnicodeDecodeError, OverflowError) as exc:
            raise CodecError(f"malformed wire data: {exc}") from exc

    return guarded


class ValueWidth(enum.Enum):
    """On-wire width of arithmetic values (the paper's ``sst``)."""

    F32 = 4
    F64 = 8

    @property
    def bytes(self) -> int:
        return self.value

    @property
    def struct_format(self) -> str:
        return ">f" if self is ValueWidth.F32 else ">d"


#: One shared bytes object per possible byte value — writing a tag or a
#: single-byte varint (the overwhelmingly common case) allocates nothing.
_BYTE_TABLE = tuple(bytes([value]) for value in range(256))

_STRUCT_F32 = struct.Struct(">f")
_STRUCT_F64 = struct.Struct(">d")


class ByteWriter:
    """An append-only byte buffer with varint/string/float primitives."""

    __slots__ = ("_chunks", "_size")

    def __init__(self) -> None:
        self._chunks: List[bytes] = []
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def getvalue(self) -> bytes:
        return b"".join(self._chunks)

    def raw(self, data: bytes) -> None:
        self._chunks.append(data)
        self._size += len(data)

    def byte(self, value: int) -> None:
        if not 0 <= value <= 0xFF:
            raise CodecError(f"byte out of range: {value}")
        self._chunks.append(_BYTE_TABLE[value])
        self._size += 1

    def varint(self, value: int) -> None:
        if value < 0x80:
            if value < 0:
                raise CodecError(f"varint must be non-negative, got {value}")
            self._chunks.append(_BYTE_TABLE[value])
            self._size += 1
            return
        out = bytearray()
        while True:
            piece = value & 0x7F
            value >>= 7
            if value:
                out.append(piece | 0x80)
            else:
                out.append(piece)
                break
        self.raw(bytes(out))

    def zigzag(self, value: int) -> None:
        self.varint(value << 1 if value >= 0 else ((-value) << 1) - 1)

    def string(self, value: str) -> None:
        data = value.encode("utf-8")
        self.varint(len(data))
        self.raw(data)

    def float_value(self, value: float, width: ValueWidth) -> None:
        if width is ValueWidth.F64:
            self.raw(_STRUCT_F64.pack(value))
            return
        if math.isfinite(value):
            # Clamp to the f32 range rather than silently producing inf.
            limit = 3.4028235e38
            value = max(-limit, min(limit, value))
        self.raw(_STRUCT_F32.pack(value))


class ByteReader:
    """Sequential reader matching :class:`ByteWriter`."""

    __slots__ = ("_data", "_pos")

    def __init__(self, data: bytes):
        self._data = data
        self._pos = 0

    @property
    def remaining(self) -> int:
        return len(self._data) - self._pos

    def at_end(self) -> bool:
        return self._pos >= len(self._data)

    def raw(self, count: int) -> bytes:
        pos = self._pos
        end = pos + count
        if end > len(self._data):
            raise CodecError(
                f"truncated data: wanted {count} bytes, have {len(self._data) - pos}"
            )
        self._pos = end
        return self._data[pos:end]

    def byte(self) -> int:
        pos = self._pos
        data = self._data
        if pos >= len(data):
            raise CodecError("truncated data: wanted 1 bytes, have 0")
        self._pos = pos + 1
        return data[pos]

    def varint(self) -> int:
        data = self._data
        pos = self._pos
        size = len(data)
        result = 0
        shift = 0
        while True:
            if pos >= size:
                raise CodecError("truncated data: wanted 1 bytes, have 0")
            piece = data[pos]
            pos += 1
            result |= (piece & 0x7F) << shift
            if not piece & 0x80:
                self._pos = pos
                return result
            shift += 7
            if shift > 70:
                raise CodecError("varint too long")

    def zigzag(self) -> int:
        raw = self.varint()
        return (raw >> 1) if not raw & 1 else -((raw + 1) >> 1)

    def string(self) -> str:
        length = self.varint()
        return self.raw(length).decode("utf-8")

    def float_value(self, width: ValueWidth) -> float:
        if width is ValueWidth.F64:
            return _STRUCT_F64.unpack(self.raw(8))[0]
        return _STRUCT_F32.unpack(self.raw(4))[0]


_TYPE_TAGS = {
    AttributeType.STRING: 0,
    AttributeType.INTEGER: 1,
    AttributeType.FLOAT: 2,
    AttributeType.DATE: 3,
}
_TYPE_BY_TAG = {tag: typ for typ, tag in _TYPE_TAGS.items()}

_OP_TAGS = {op: tag for tag, op in enumerate(Operator)}
_OP_BY_TAG = {tag: op for op, tag in _OP_TAGS.items()}

_PATTERN_GLOB = 0
_PATTERN_NE = 1
_PATTERN_CONJ = 2

#: Entries kept in each of the per-codec event memo caches.  Events are
#: immutable, so an (event -> bytes) and a (bytes -> event) memo are pure
#: caches; the bound only limits memory on long-running brokers.  Routing
#: re-encodes the same event on every BROCLI hop and every NOTIFY, and
#: re-decodes the identical payload bytes at every receiving broker, so
#: hit rates on the live hot path are high by construction.
EVENT_CACHE_ENTRIES = 4096


class WireCodec:
    """Schema-aware encoder/decoder for every on-wire entity."""

    def __init__(
        self,
        schema: Schema,
        id_codec: IdCodec,
        value_width: ValueWidth = ValueWidth.F64,
    ):
        if id_codec.num_attributes != len(schema):
            raise CodecError(
                f"id codec has {id_codec.num_attributes} attribute bits, "
                f"schema has {len(schema)} attributes"
            )
        self.schema = schema
        self.id_codec = id_codec
        self.value_width = value_width
        self._encoded_events: "OrderedDict[Event, bytes]" = OrderedDict()
        self._decoded_events: "OrderedDict[bytes, Event]" = OrderedDict()

    # -- events --------------------------------------------------------------

    def encode_event(self, event: Event) -> bytes:
        cache = self._encoded_events
        data = cache.get(event)
        if data is not None:
            cache.move_to_end(event)
            return data
        writer = ByteWriter()
        writer.varint(len(event))
        for name, typ, value in event.items():
            writer.varint(self.schema.position(name))
            if typ.is_string:
                writer.string(value)  # type: ignore[arg-type]
            elif typ is AttributeType.INTEGER:
                writer.zigzag(int(value))  # type: ignore[arg-type]
            else:
                writer.float_value(float(value), self.value_width)  # type: ignore[arg-type]
        data = writer.getvalue()
        cache[event] = data
        if len(cache) > EVENT_CACHE_ENTRIES:
            cache.popitem(last=False)
        return data

    @_decode_guard
    def decode_event(self, data: bytes) -> Event:
        cache = self._decoded_events
        event = cache.get(data)
        if event is not None:
            cache.move_to_end(data)
            return event
        reader = ByteReader(data)
        event = self.read_event(reader)
        if not reader.at_end():
            raise CodecError(f"{reader.remaining} trailing bytes after event")
        cache[data] = event
        if len(cache) > EVENT_CACHE_ENTRIES:
            cache.popitem(last=False)
        return event

    def read_event(self, reader: ByteReader) -> Event:
        count = reader.varint()
        attrs: Dict[str, Tuple[AttributeType, AttributeValue]] = {}
        width = self.value_width
        for _ in range(count):
            spec = self._spec_at(reader.varint())
            typ = spec.type
            if typ is AttributeType.STRING:
                value: AttributeValue = reader.string()
            elif typ is AttributeType.INTEGER:
                value = reader.zigzag()
            else:
                value = reader.float_value(width)
            if spec.name in attrs:
                raise CodecError(f"duplicate attribute name in event: {spec.name!r}")
            attrs[spec.name] = (typ, value)
        # Values decoded above are already canonical for their types and
        # the names come from validated schema specs, so the trusted
        # constructor applies.
        return Event.from_typed(attrs)

    # -- subscriptions -----------------------------------------------------------

    def encode_subscription(self, subscription: Subscription) -> bytes:
        writer = ByteWriter()
        self.write_subscription(writer, subscription)
        return writer.getvalue()

    def write_subscription(self, writer: ByteWriter, subscription: Subscription) -> None:
        writer.varint(len(subscription))
        for constraint in subscription:
            writer.varint(self.schema.position(constraint.name))
            writer.byte(_OP_TAGS[constraint.operator])
            if constraint.attr_type.is_string:
                writer.string(constraint.value)  # type: ignore[arg-type]
            elif constraint.attr_type is AttributeType.INTEGER:
                writer.zigzag(int(constraint.value))  # type: ignore[arg-type]
            else:
                writer.float_value(float(constraint.value), self.value_width)  # type: ignore[arg-type]

    @_decode_guard
    def decode_subscription(self, data: bytes) -> Subscription:
        reader = ByteReader(data)
        subscription = self.read_subscription(reader)
        if not reader.at_end():
            raise CodecError(f"{reader.remaining} trailing bytes after subscription")
        return subscription

    def read_subscription(self, reader: ByteReader) -> Subscription:
        count = reader.varint()
        if count == 0:
            raise CodecError("subscription with zero constraints")
        constraints: List[Constraint] = []
        for _ in range(count):
            spec = self._spec_at(reader.varint())
            operator = self._op_at(reader.byte())
            if spec.type.is_string:
                value: object = reader.string()
            elif spec.type is AttributeType.INTEGER:
                value = reader.zigzag()
            else:
                value = reader.float_value(self.value_width)
            constraints.append(
                Constraint(name=spec.name, attr_type=spec.type, operator=operator, value=value)
            )
        return Subscription(constraints)

    # -- subscription ids -----------------------------------------------------------

    def write_id_list(self, writer: ByteWriter, ids: Set[SubscriptionId]) -> None:
        writer.varint(len(ids))
        for sid in sorted(ids):
            writer.raw(self.id_codec.to_bytes(sid))

    def read_id_list(self, reader: ByteReader) -> Set[SubscriptionId]:
        count = reader.varint()
        return {
            self.id_codec.from_bytes(reader.raw(self.id_codec.byte_size))
            for _ in range(count)
        }

    def write_compact_id_set(self, writer: ByteWriter, ids: Set[SubscriptionId]) -> None:
        """Roaring-style containers of sorted varint gaps (delta frames)."""
        idsets.write_id_set(writer, ids, self.id_codec)

    def read_compact_id_set(self, reader: ByteReader) -> Set[SubscriptionId]:
        return idsets.read_id_set(reader, self.id_codec)

    # -- summaries --------------------------------------------------------------------

    def encode_summary(self, summary: BrokerSummary) -> bytes:
        return self._encode_summary(summary, self.write_id_list)

    def encode_summary_compact(self, summary: BrokerSummary) -> bytes:
        """The delta-frame summary layout: identical row structure, but id
        lists ride as compressed containers (:mod:`repro.summary.idsets`).
        The classic :meth:`encode_summary` keeps the fixed-width lists the
        paper's figures charge, so published numbers stay comparable."""
        return self._encode_summary(summary, self.write_compact_id_set)

    def _encode_summary(self, summary: BrokerSummary, write_ids) -> bytes:
        writer = ByteWriter()
        writer.byte(0 if summary.precision is Precision.COARSE else 1)
        arithmetic = summary.arithmetic_structures()
        writer.varint(len(arithmetic))
        for name in sorted(arithmetic, key=self.schema.position):
            writer.varint(self.schema.position(name))
            self._write_aacs(writer, arithmetic[name], write_ids)
        strings = summary.string_structures()
        writer.varint(len(strings))
        for name in sorted(strings, key=self.schema.position):
            writer.varint(self.schema.position(name))
            self._write_sacs(writer, strings[name], write_ids)
        return writer.getvalue()

    @_decode_guard
    def decode_summary(self, data: bytes) -> BrokerSummary:
        return self._decode_summary(data, self.read_id_list)

    @_decode_guard
    def decode_summary_compact(self, data: bytes) -> BrokerSummary:
        return self._decode_summary(data, self.read_compact_id_set)

    def _decode_summary(self, data: bytes, read_ids) -> BrokerSummary:
        reader = ByteReader(data)
        precision = Precision.COARSE if reader.byte() == 0 else Precision.EXACT
        summary = BrokerSummary(self.schema, precision)
        for _ in range(reader.varint()):
            spec = self._spec_at(reader.varint())
            structure = self._read_aacs(reader, precision, read_ids)
            summary._aacs[spec.name] = structure  # codec is a friend module
        for _ in range(reader.varint()):
            spec = self._spec_at(reader.varint())
            summary._sacs[spec.name] = self._read_sacs(reader, precision, read_ids)
        if not reader.at_end():
            raise CodecError(f"{reader.remaining} trailing bytes after summary")
        return summary

    def _write_aacs(self, writer: ByteWriter, structure: AACS, write_ids=None) -> None:
        if write_ids is None:
            write_ids = self.write_id_list
        rows = structure.range_rows()
        writer.varint(len(rows))
        for row in rows:
            self._write_interval(writer, row.interval)
            write_ids(writer, row.ids)
        equalities = structure.equality_rows()
        writer.varint(len(equalities))
        for value, ids in equalities:
            writer.float_value(value, self.value_width)
            write_ids(writer, set(ids))

    def _read_aacs(self, reader: ByteReader, precision: Precision, read_ids=None) -> AACS:
        if read_ids is None:
            read_ids = self.read_id_list
        structure = AACS(precision)
        for _ in range(reader.varint()):
            interval = self._read_interval(reader)
            ids = read_ids(reader)
            structure.insert_interval(interval, ids)
        for _ in range(reader.varint()):
            value = reader.float_value(self.value_width)
            ids = read_ids(reader)
            structure._insert_point(value, ids)
        return structure

    def _write_interval(self, writer: ByteWriter, interval: Interval) -> None:
        flags = (1 if interval.lo_open else 0) | (2 if interval.hi_open else 0)
        writer.byte(flags)
        writer.float_value(interval.lo, self.value_width)
        writer.float_value(interval.hi, self.value_width)

    def _read_interval(self, reader: ByteReader) -> Interval:
        flags = reader.byte()
        lo = reader.float_value(self.value_width)
        hi = reader.float_value(self.value_width)
        try:
            return Interval(lo, hi, bool(flags & 1), bool(flags & 2))
        except ValueError as exc:
            raise CodecError(f"invalid interval on wire: {exc}") from exc

    def _write_sacs(self, writer: ByteWriter, structure: SACS, write_ids=None) -> None:
        if write_ids is None:
            write_ids = self.write_id_list
        rows = structure.rows()
        writer.varint(len(rows))
        for row in rows:
            self._write_pattern(writer, row.pattern)
            write_ids(writer, row.ids)

    def _read_sacs(self, reader: ByteReader, precision: Precision, read_ids=None) -> SACS:
        if read_ids is None:
            read_ids = self.read_id_list
        structure = SACS(precision)
        for _ in range(reader.varint()):
            pattern = self._read_pattern(reader)
            ids = read_ids(reader)
            structure.insert_pattern(pattern, ids)
        return structure

    def _write_pattern(self, writer: ByteWriter, pattern: StringPattern) -> None:
        if isinstance(pattern, GlobPattern):
            writer.byte(_PATTERN_GLOB)
            writer.varint(len(pattern.pieces))
            for piece in pattern.pieces:
                writer.string(piece)
        elif isinstance(pattern, NotEqualsPattern):
            writer.byte(_PATTERN_NE)
            writer.string(pattern.value)
        elif isinstance(pattern, ConjunctionPattern):
            writer.byte(_PATTERN_CONJ)
            writer.varint(len(pattern.parts))
            for part in pattern.parts:
                self._write_pattern(writer, part)
        else:  # pragma: no cover - closed type family
            raise CodecError(f"unknown pattern type {type(pattern).__name__}")

    def _read_pattern(self, reader: ByteReader) -> StringPattern:
        tag = reader.byte()
        if tag == _PATTERN_GLOB:
            count = reader.varint()
            if count == 0:
                raise CodecError("glob pattern with zero pieces")
            return GlobPattern(tuple(reader.string() for _ in range(count)))
        if tag == _PATTERN_NE:
            return NotEqualsPattern(reader.string())
        if tag == _PATTERN_CONJ:
            count = reader.varint()
            parts = [self._read_pattern(reader) for _ in range(count)]
            return ConjunctionPattern(parts)
        raise CodecError(f"unknown pattern tag {tag}")

    # -- broker id sets ------------------------------------------------------------------

    def encode_broker_set(self, brokers: Set[int]) -> bytes:
        writer = ByteWriter()
        self.write_broker_set(writer, brokers)
        return writer.getvalue()

    def write_broker_set(self, writer: ByteWriter, brokers: Set[int]) -> None:
        writer.varint(len(brokers))
        for broker in sorted(brokers):
            writer.varint(broker)

    def read_broker_set(self, reader: ByteReader) -> Set[int]:
        return {reader.varint() for _ in range(reader.varint())}

    # -- helpers ------------------------------------------------------------------

    def _spec_at(self, position: int):
        specs = self.schema.specs
        if not 0 <= position < len(specs):
            raise CodecError(f"attribute position {position} out of schema range")
        return specs[position]

    @staticmethod
    def _op_at(tag: int) -> Operator:
        try:
            return _OP_BY_TAG[tag]
        except KeyError:
            raise CodecError(f"unknown operator tag {tag}") from None

    # -- size helpers (no allocation of the full buffer needed) --------------------

    def summary_size(self, summary: BrokerSummary) -> int:
        return len(self.encode_summary(summary))

    def event_size(self, event: Event) -> int:
        return len(self.encode_event(event))

    def subscription_size(self, subscription: Subscription) -> int:
        return len(self.encode_subscription(subscription))
