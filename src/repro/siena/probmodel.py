"""The paper's probabilistic Siena evaluation model (section 5.2).

The paper did not run the real Siena code; it modeled subsumption
statistically:

* "at each broker B, with a probability equal to the subscription
  subsumption probability, B did not forward each subscription it received
  to each of its neighbors";
* "not all brokers have the same subsumption probability ... each broker's
  subsumption probability is determined as the maximum subsumption
  probability times the fraction of this broker's degree over the maximum
  degree";
* propagation follows, per origin broker, a minimum (BFS) spanning tree:
  "for every broker B a minimum spanning tree is formed and the
  subscriptions are forwarded from neighbor to neighbor from B until they
  have reached all brokers or until they are subsumed";
* events are "routed following the reverse path put in place by the
  subscription's propagation" — to a set of matched brokers drawn by the
  event-popularity parameter.

This module reproduces exactly that model so figures 8-11 compare like
with like.  The functional covering-based Siena lives in
:mod:`repro.siena.system` and is used by the correctness test suite.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Iterable, List, Set, Tuple

from repro.network.topology import Topology

__all__ = ["SienaProbModel", "PropagationSample"]


@dataclass
class PropagationSample:
    """Outcome of propagating one subscription from one origin broker."""

    origin: int
    forwards: List[Tuple[int, int]]  # (src, dst) broker-to-broker sends
    reached: Set[int]  # brokers that received the subscription

    @property
    def hops(self) -> int:
        return len(self.forwards)


class SienaProbModel:
    """Monte-Carlo model of Siena's subsumption-pruned flooding."""

    def __init__(self, topology: Topology, max_subsumption: float, seed: int = 0):
        if not 0.0 <= max_subsumption <= 1.0:
            raise ValueError("subsumption probability must be in [0, 1]")
        self.topology = topology
        self.max_subsumption = max_subsumption
        self._rng = random.Random(seed)
        self._trees: Dict[int, Dict[int, List[int]]] = {}

    # -- per-broker probability (degree-scaled) ----------------------------------

    def broker_probability(self, broker: int) -> float:
        """p_B = max_probability x degree(B) / max_degree."""
        return (
            self.max_subsumption
            * self.topology.degree(broker)
            / self.topology.max_degree
        )

    def _tree(self, origin: int) -> Dict[int, List[int]]:
        tree = self._trees.get(origin)
        if tree is None:
            tree = self._trees[origin] = self.topology.bfs_tree(origin)
        return tree

    # -- subscription propagation -----------------------------------------------------

    def propagate_one(self, origin: int) -> PropagationSample:
        """Forward one subscription from ``origin`` down its BFS tree.

        The origin always sends to its tree children (it cannot subsume its
        own client's subscription); every other broker drops each outgoing
        forward independently with its subsumption probability.
        """
        tree = self._tree(origin)
        forwards: List[Tuple[int, int]] = []
        reached: Set[int] = {origin}
        frontier: List[int] = [origin]
        while frontier:
            node = frontier.pop()
            drop_probability = 0.0 if node == origin else self.broker_probability(node)
            for child in tree[node]:
                if drop_probability and self._rng.random() < drop_probability:
                    continue  # subsumed here: the whole subtree is pruned
                forwards.append((node, child))
                reached.add(child)
                frontier.append(child)
        return PropagationSample(origin=origin, forwards=forwards, reached=reached)

    def propagation_round(self) -> List[PropagationSample]:
        """One subscription from every broker (figure 9's unit)."""
        return [self.propagate_one(origin) for origin in self.topology.brokers]

    def mean_propagation_hops(self, trials: int = 20) -> float:
        """Mean total broker-to-broker forwards for propagating one
        subscription from each broker (figure 9's y-axis).  At subsumption
        0 this is exactly ``n x (n - 1)`` on any connected overlay."""
        total = 0
        for _ in range(trials):
            total += sum(sample.hops for sample in self.propagation_round())
        return total / trials

    def propagation_bandwidth(
        self, sigma: int, subscription_size: int, trials: int = 5
    ) -> float:
        """Mean total bytes for every broker to propagate ``sigma``
        subscriptions of ``subscription_size`` bytes (figure 8's Siena
        series).  Per-subscription pruning decisions are independent."""
        total = 0
        for _ in range(trials):
            for origin in self.topology.brokers:
                for _sub in range(sigma):
                    total += self.propagate_one(origin).hops * subscription_size
        return total / trials

    def storage_bytes(
        self, outstanding: int, subscription_size: int, trials: int = 5
    ) -> float:
        """Mean total bytes of subscriptions stored across all brokers when
        every broker owns ``outstanding`` subscriptions (figure 11's Siena
        series).  A broker stores its own plus every foreign subscription
        that reached it."""
        total = 0
        for _ in range(trials):
            stored = 0
            for origin in self.topology.brokers:
                for _sub in range(outstanding):
                    stored += len(self.propagate_one(origin).reached)
            total += stored * subscription_size
        return total / trials

    # -- event routing ------------------------------------------------------------------

    def event_routing_hops(self, publisher: int, matched: Iterable[int]) -> int:
        """Hops to route one event from ``publisher`` to every matched
        broker along reverse subscription paths.

        Reverse paths from the publisher coincide with the publisher's BFS
        tree branches toward each matched broker; shared path prefixes
        carry the event once, so the cost is the size of the union of the
        tree-path edges (the induced Steiner subtree).
        """
        parents = self.topology.bfs_parents(publisher)
        edges: Set[Tuple[int, int]] = set()
        for target in matched:
            node = target
            while node != publisher:
                parent = parents[node]
                edge = (parent, node)
                if edge in edges:
                    break  # the rest of the path is already paid for
                edges.add(edge)
                node = parent
        return len(edges)

    def mean_event_hops(
        self,
        events_per_broker: int,
        popularity: float,
        seed: int = 0,
    ) -> float:
        """Mean event-routing hops with ``popularity`` x n matched brokers
        drawn uniformly per event (figure 10's Siena series)."""
        if not 0.0 < popularity <= 1.0:
            raise ValueError("popularity must be in (0, 1]")
        rng = random.Random(seed)
        n = self.topology.num_brokers
        matched_count = max(1, round(popularity * n))
        total = 0
        events = 0
        for publisher in self.topology.brokers:
            for _ in range(events_per_broker):
                matched = rng.sample(range(n), matched_count)
                total += self.event_routing_hops(publisher, matched)
                events += 1
        return total / events
