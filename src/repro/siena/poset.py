"""Covering-minimized subscription sets (Siena's routing-table building block).

Siena's propagation rule — "a subscription is not forwarded by a broker to
another broker if the former has already forwarded to the latter a
subscription that subsumes this one" — needs, per peer, the set of
subscriptions already forwarded, minimized under covering.
:class:`CoveringSet` is that set: inserting a covered subscription is a
no-op (returns False), and inserting a more general one evicts the members
it covers.
"""

from __future__ import annotations

from typing import Iterator, List, Set, Tuple

from repro.model.events import Event
from repro.model.subscriptions import Subscription
from repro.siena.covering import subscription_covers

__all__ = ["CoveringSet"]


class CoveringSet:
    """A set of subscriptions with no member covering another.

    Members are indexed by their constrained-attribute signature: a
    subscription can only cover another whose attribute set is a superset
    of its own, so covering checks touch only the signature groups that
    pass the (cheap) subset test.  With Table-2 workloads this prunes the
    quadratic pairwise scan by one to two orders of magnitude.
    """

    __slots__ = ("_groups", "_count")

    def __init__(self) -> None:
        self._groups: dict = {}  # FrozenSet[str] -> List[Subscription]
        self._count = 0

    def __len__(self) -> int:
        return self._count

    def __iter__(self) -> Iterator[Subscription]:
        for group in self._groups.values():
            yield from group

    @property
    def members(self) -> Tuple[Subscription, ...]:
        return tuple(self)

    def covers(self, subscription: Subscription) -> bool:
        """Whether an existing member subsumes ``subscription``."""
        names = subscription.attribute_names
        for signature, group in self._groups.items():
            if signature <= names:
                if any(subscription_covers(member, subscription) for member in group):
                    return True
        return False

    def add(self, subscription: Subscription) -> bool:
        """Insert unless covered.  Returns True when the set changed (the
        subscription became a member, possibly evicting covered members)."""
        if self.covers(subscription):
            return False
        names = subscription.attribute_names
        for signature in list(self._groups):
            if names <= signature:
                group = self._groups[signature]
                survivors = [
                    member
                    for member in group
                    if not subscription_covers(subscription, member)
                ]
                self._count -= len(group) - len(survivors)
                if survivors:
                    self._groups[signature] = survivors
                else:
                    del self._groups[signature]
        self._groups.setdefault(names, []).append(subscription)
        self._count += 1
        return True

    def matches_event(self, event: Event) -> bool:
        """Whether any member matches — Siena forwards an event towards a
        peer iff the peer's covering set matches it."""
        return any(member.matches(event) for member in self)

    def __repr__(self) -> str:
        return f"CoveringSet({self._count} members)"
