"""Covering-minimized subscription sets (Siena's routing-table building block).

Siena's propagation rule — "a subscription is not forwarded by a broker to
another broker if the former has already forwarded to the latter a
subscription that subsumes this one" — needs, per peer, the set of
subscriptions already forwarded, minimized under covering.
:class:`CoveringSet` is that set: inserting a covered subscription is a
no-op (returns False), and inserting a more general one evicts the members
it covers.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.model.events import Event
from repro.model.ids import SubscriptionId
from repro.model.subscriptions import Subscription
from repro.siena.covering import subscription_covers

__all__ = ["CoveringSet", "SidCoveringIndex"]


class CoveringSet:
    """A set of subscriptions with no member covering another.

    Members are indexed by their constrained-attribute signature: a
    subscription can only cover another whose attribute set is a superset
    of its own, so covering checks touch only the signature groups that
    pass the (cheap) subset test.  With Table-2 workloads this prunes the
    quadratic pairwise scan by one to two orders of magnitude.
    """

    __slots__ = ("_groups", "_count")

    def __init__(self) -> None:
        self._groups: dict = {}  # FrozenSet[str] -> List[Subscription]
        self._count = 0

    def __len__(self) -> int:
        return self._count

    def __iter__(self) -> Iterator[Subscription]:
        for group in self._groups.values():
            yield from group

    @property
    def members(self) -> Tuple[Subscription, ...]:
        return tuple(self)

    def covers(self, subscription: Subscription) -> bool:
        """Whether an existing member subsumes ``subscription``."""
        names = subscription.attribute_names
        for signature, group in self._groups.items():
            if signature <= names:
                if any(subscription_covers(member, subscription) for member in group):
                    return True
        return False

    def add(self, subscription: Subscription) -> bool:
        """Insert unless covered.  Returns True when the set changed (the
        subscription became a member, possibly evicting covered members)."""
        if self.covers(subscription):
            return False
        names = subscription.attribute_names
        for signature in list(self._groups):
            if names <= signature:
                group = self._groups[signature]
                survivors = [
                    member
                    for member in group
                    if not subscription_covers(subscription, member)
                ]
                self._count -= len(group) - len(survivors)
                if survivors:
                    self._groups[signature] = survivors
                else:
                    del self._groups[signature]
        self._groups.setdefault(names, []).append(subscription)
        self._count += 1
        return True

    def matches_event(self, event: Event) -> bool:
        """Whether any member matches — Siena forwards an event towards a
        peer iff the peer's covering set matches it."""
        return any(member.matches(event) for member in self)

    def __repr__(self) -> str:
        return f"CoveringSet({self._count} members)"


class SidCoveringIndex:
    """A covering frontier keyed by subscription id.

    The suppression path of :class:`~repro.broker.broker.SummaryBroker`
    needs what :class:`CoveringSet` cannot give it: *which member* covers
    a new subscription (so the covered id can be re-homed when its coverer
    unsubscribes) and removal of one member by id without rebuilding the
    whole structure.

    Unlike :class:`CoveringSet`, adding a more general subscription does
    NOT evict the members it covers.  Members only ever leave via
    :meth:`remove` (an unsubscribe).  A non-minimal frontier is sound —
    every member is summarized and propagated, extra members only cost a
    few redundant summary entries — and it is what makes removal strictly
    local: dropping member F can only affect the subscriptions F itself
    covered, never reshuffle unrelated members.  (Eviction is exactly how
    the old ``HybridBroker`` let its ``suppressed`` counter drift: evicted
    members stayed summarized while silently leaving the frontier.)
    """

    __slots__ = ("_groups", "_members")

    def __init__(self) -> None:
        # FrozenSet[str] -> List[(sid, subscription)]
        self._groups: dict = {}
        self._members: Dict[SubscriptionId, Subscription] = {}

    def __len__(self) -> int:
        return len(self._members)

    def __contains__(self, sid: SubscriptionId) -> bool:
        return sid in self._members

    def items(self) -> Iterator[Tuple[SubscriptionId, Subscription]]:
        return iter(self._members.items())

    @property
    def sids(self) -> Set[SubscriptionId]:
        return set(self._members)

    def subscription_of(self, sid: SubscriptionId) -> Optional[Subscription]:
        return self._members.get(sid)

    def find_coverer(self, subscription: Subscription) -> Optional[SubscriptionId]:
        """The id of a member subsuming ``subscription`` (None when
        uncovered).  Deterministic for a fixed insertion history: groups
        and members are scanned in insertion order, first hit wins."""
        names = subscription.attribute_names
        for signature, group in self._groups.items():
            if signature <= names:
                for sid, member in group:
                    if subscription_covers(member, subscription):
                        return sid
        return None

    def add(self, sid: SubscriptionId, subscription: Subscription) -> None:
        """Insert a frontier member (the caller decides coverage first)."""
        if sid in self._members:
            raise ValueError(f"duplicate frontier member {sid}")
        self._members[sid] = subscription
        self._groups.setdefault(subscription.attribute_names, []).append(
            (sid, subscription)
        )

    def remove(self, sid: SubscriptionId) -> Optional[Subscription]:
        """Remove one member by id; returns its subscription (None if absent)."""
        subscription = self._members.pop(sid, None)
        if subscription is None:
            return None
        signature = subscription.attribute_names
        group = self._groups[signature]
        survivors = [entry for entry in group if entry[0] != sid]
        if survivors:
            self._groups[signature] = survivors
        else:
            del self._groups[signature]
        return subscription

    def __repr__(self) -> str:
        return f"SidCoveringIndex({len(self._members)} members)"
