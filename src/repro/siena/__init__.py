"""Siena-style comparator: real covering engine + the paper's probabilistic
evaluation model."""

from repro.siena.broker import LOCAL_INTERFACE, SienaBroker
from repro.siena.covering import constraint_covers, subscription_covers
from repro.siena.poset import CoveringSet
from repro.siena.probmodel import PropagationSample, SienaProbModel
from repro.siena.system import SienaPubSub

__all__ = [
    "LOCAL_INTERFACE",
    "CoveringSet",
    "PropagationSample",
    "SienaBroker",
    "SienaProbModel",
    "SienaPubSub",
    "constraint_covers",
    "subscription_covers",
]
