"""Subscription subsumption (covering), as used by Siena.

Paper section 2.2: "an attribute-value constraint of a subscription is said
to be subsumed by that of another subscription if the values are the same
(equality operator) or if it is contained (prefix/suffix/containment
operators).  A subscription is said to be subsumed by another, if all
attribute constraints of the former are subsumed by the attribute
constraints of the latter."

We implement covering on *event languages*: ``covers(general, specific)``
is True only when every event matching ``specific`` also matches
``general``.  Two consequences worth spelling out:

* ``general`` must not constrain an attribute that ``specific`` leaves
  unconstrained — ``specific`` would admit events missing (or free in)
  that attribute.
* per attribute, the *conjunction* of the specific constraints must imply
  the conjunction of the general ones; for arithmetic attributes this is
  exact interval-set containment, for string attributes a sound pattern
  check (Siena-style covering is itself conservative, so soundness is the
  contract that matters: a ``True`` may never lose events).
"""

from __future__ import annotations

from functools import lru_cache
from typing import Sequence, Tuple

from repro.model.constraints import Constraint
from repro.model.subscriptions import Subscription
from repro.summary.intervals import IntervalSet, intervals_for_conjunction
from repro.summary.patterns import StringPattern, pattern_for_constraint

__all__ = ["constraint_covers", "subscription_covers"]


# Covering runs pairwise over large subscription populations (a Siena
# broker checks each arriving subscription against everything already
# forwarded), so the constraint->canonical-form translations are cached.
# The cached values are treated as immutable by every caller here.
@lru_cache(maxsize=65536)
def _conjunction_intervals(constraints: Tuple[Constraint, ...]) -> IntervalSet:
    return intervals_for_conjunction(constraints)


@lru_cache(maxsize=65536)
def _constraint_pattern(constraint: Constraint) -> StringPattern:
    return pattern_for_constraint(constraint)


def constraint_covers(general: Constraint, specific: Constraint) -> bool:
    """Whether every value satisfying ``specific`` satisfies ``general``.

    Both constraints must be on the same attribute family; comparing
    constraints of different attributes is a caller bug.
    """
    if general.attr_type.is_string != specific.attr_type.is_string:
        raise ValueError(
            f"cannot compare {general.attr_type.value} and "
            f"{specific.attr_type.value} constraints"
        )
    if general.attr_type.is_string:
        return pattern_for_constraint(general).covers(pattern_for_constraint(specific))
    general_set = intervals_for_conjunction([general])
    specific_set = intervals_for_conjunction([specific])
    return general_set.covers_set(specific_set)


def subscription_covers(general: Subscription, specific: Subscription) -> bool:
    """Whether every event matching ``specific`` matches ``general``."""
    if not general.attribute_names <= specific.attribute_names:
        # ``specific`` admits events that are free in (or lack) some
        # attribute that ``general`` constrains.
        return False
    for name in general.attribute_names:
        specific_constraints = specific.constraints_on(name)
        general_constraints = general.constraints_on(name)
        if general_constraints[0].attr_type.is_string:
            if not _string_conjunction_covers(general_constraints, specific_constraints):
                return False
        else:
            general_set = _conjunction_intervals(general_constraints)
            specific_set = _conjunction_intervals(specific_constraints)
            if not general_set.covers_set(specific_set):
                return False
    return True


def _string_conjunction_covers(
    general: Sequence[Constraint], specific: Sequence[Constraint]
) -> bool:
    """Sound check that conj(specific) implies conj(general) on one
    attribute: every general pattern must cover at least one specific
    pattern (the specific conjunction's language is inside each of its
    members, hence inside any pattern covering a member)."""
    general_patterns = [_constraint_pattern(c) for c in general]
    specific_patterns: Sequence[StringPattern] = [
        _constraint_pattern(c) for c in specific
    ]
    return all(
        any(gp.covers(sp) for sp in specific_patterns) for gp in general_patterns
    )
