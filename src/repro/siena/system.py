"""The functional Siena-style pub/sub system facade.

Mirrors :class:`repro.broker.system.SummaryPubSub` API-for-API so
experiments and tests can swap systems.  Differences, by design:

* brokers exchange *raw subscriptions* (covering-pruned), not summaries;
* events follow the reverse paths set up by subscriptions;
* routing runs on a spanning tree of the given overlay (Siena's
  interface-exclusion routing requires an acyclic topology — handed a
  cyclic overlay we BFS-root a tree at the highest-degree broker, which is
  what a Siena deployment's static configuration would do).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set, Tuple

import networkx as nx

from repro.broker.system import Delivery, PublishResult
from repro.model.events import Event
from repro.model.ids import IdCodec, SubscriptionId
from repro.model.schema import Schema
from repro.model.subscriptions import Subscription
from repro.network.metrics import NetworkMetrics
from repro.network.simulator import Network
from repro.network.topology import Topology
from repro.siena.broker import LOCAL_INTERFACE, SienaBroker
from repro.wire.codec import ValueWidth, WireCodec
from repro.wire.messages import (
    EventMessage,
    Message,
    MessageCodec,
    SubscriptionBatchMessage,
)

__all__ = ["SienaPubSub"]

DEFAULT_MAX_SUBSCRIPTIONS = 1 << 20


class _Dispatcher:
    def __init__(self, system: "SienaPubSub", broker_id: int):
        self._system = system
        self._broker_id = broker_id

    def receive(self, src: int, message: Message) -> None:
        self._system._dispatch(self._broker_id, src, message)


class SienaPubSub:
    """Covering-based comparator system on a (tree) overlay."""

    def __init__(
        self,
        topology: Topology,
        schema: Schema,
        value_width: ValueWidth = ValueWidth.F32,
        max_subscriptions: int = DEFAULT_MAX_SUBSCRIPTIONS,
    ):
        self.full_topology = topology
        self.topology = self._routing_tree(topology)
        self.schema = schema
        self.id_codec = IdCodec(
            num_brokers=topology.num_brokers,
            max_subscriptions=max_subscriptions,
            num_attributes=len(schema),
        )
        self.wire = WireCodec(schema, self.id_codec, value_width)
        self.message_codec = MessageCodec(self.wire)

        self.propagation_metrics = NetworkMetrics()
        self.event_metrics = NetworkMetrics()
        self.network = Network(self.topology, self.message_codec, self.propagation_metrics)

        self._delivery_log: List[Delivery] = []
        self.brokers: Dict[int, SienaBroker] = {}
        for broker_id in self.topology.brokers:
            broker = SienaBroker(
                broker_id,
                schema,
                neighbors=self.topology.neighbors(broker_id),
                on_delivery=self._record_delivery,
            )
            self.brokers[broker_id] = broker
            self.network.attach(broker_id, _Dispatcher(self, broker_id))

    @staticmethod
    def _routing_tree(topology: Topology) -> Topology:
        if topology.is_tree():
            return topology
        root = max(topology.brokers, key=lambda b: (topology.degree(b), -b))
        edges = list(nx.bfs_edges(topology.graph, root))
        return Topology.from_edges(edges)

    # -- client operations -------------------------------------------------------

    def subscribe(self, broker_id: int, subscription: Subscription) -> SubscriptionId:
        self.schema.validate_subscription(subscription)
        return self.brokers[broker_id].subscribe(subscription)

    def unsubscribe(self, broker_id: int, sid: SubscriptionId) -> bool:
        return self.brokers[broker_id].unsubscribe(sid)

    def run_propagation_period(self) -> Dict[str, int]:
        """Flood every broker's pending subscriptions (covering-pruned)."""
        self.network.metrics = self.propagation_metrics
        for broker in self.brokers.values():
            outgoing: Dict[int, List[Tuple[SubscriptionId, Subscription]]] = {}
            for sid, subscription in broker.pending:
                for target in broker.accept_subscription(LOCAL_INTERFACE, subscription):
                    outgoing.setdefault(target, []).append((sid, subscription))
            broker.pending = []
            for target, entries in sorted(outgoing.items()):
                self.network.send(
                    broker.broker_id,
                    target,
                    SubscriptionBatchMessage(entries=tuple(entries)),
                )
        self.network.run()
        return self.propagation_metrics.snapshot()

    def publish(self, broker_id: int, event: Event) -> PublishResult:
        self.schema.validate_event(event)
        self.network.metrics = self.event_metrics
        before = self.event_metrics.snapshot()
        mark = len(self._delivery_log)
        for target in self.brokers[broker_id].route_event(LOCAL_INTERFACE, event):
            self.network.send(
                broker_id, target, EventMessage(event=event, brocli=frozenset())
            )
        self.network.run()
        after = self.event_metrics.snapshot()
        return PublishResult(
            deliveries=self._delivery_log[mark:],
            hops=after["hops"] - before["hops"],
            messages=after["messages"] - before["messages"],
            bytes_sent=after["bytes_sent"] - before["bytes_sent"],
        )

    # -- measurement helpers ------------------------------------------------------

    def total_table_storage(self) -> int:
        """Total bytes of routing-table subscriptions across all brokers —
        Siena's side of the figure-11 storage comparison."""
        total = 0
        for broker in self.brokers.values():
            for covering_set in broker.table.values():
                for subscription in covering_set:
                    total += self.wire.subscription_size(subscription)
        return total

    def ground_truth_matches(self, event: Event) -> Set[Tuple[int, SubscriptionId]]:
        matches: Set[Tuple[int, SubscriptionId]] = set()
        for broker_id, broker in self.brokers.items():
            for sid, subscription in broker.store.items():
                if subscription.matches(event):
                    matches.add((broker_id, sid))
        return matches

    @property
    def delivery_log(self) -> List[Delivery]:
        return list(self._delivery_log)

    # -- internals -------------------------------------------------------------------

    def _record_delivery(self, broker_id: int, sid: SubscriptionId, event: Event) -> None:
        self._delivery_log.append(Delivery(broker=broker_id, sid=sid, event=event))

    def _dispatch(self, dst: int, src: int, message: Message) -> None:
        broker = self.brokers[dst]
        if isinstance(message, SubscriptionBatchMessage):
            outgoing: Dict[int, List[Tuple[SubscriptionId, Subscription]]] = {}
            for sid, subscription in message.entries:
                for target in broker.accept_subscription(src, subscription):
                    outgoing.setdefault(target, []).append((sid, subscription))
            for target, entries in sorted(outgoing.items()):
                self.network.send(dst, target, SubscriptionBatchMessage(tuple(entries)))
        elif isinstance(message, EventMessage):
            for target in broker.route_event(src, message.event):
                self.network.send(
                    dst, target, EventMessage(event=message.event, brocli=frozenset())
                )
        else:
            raise TypeError(
                f"Siena broker cannot handle {type(message).__name__}"
            )

    def __repr__(self) -> str:
        total = sum(len(broker.store) for broker in self.brokers.values())
        return f"SienaPubSub({self.topology.num_brokers} brokers, {total} subscriptions)"
