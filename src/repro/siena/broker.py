"""A functional Siena-style broker: covering-based routing tables.

This is the *real* comparator (subscription covering, not the probabilistic
evaluation model — that lives in :mod:`repro.siena.probmodel`):

* **Subscription propagation**: a subscription received from interface
  ``I`` (a neighbor, or the local clients) is recorded in the routing
  table under ``I`` and forwarded to every other neighbor ``J`` unless a
  subscription already forwarded to ``J`` covers it.
* **Event routing**: an event arriving from ``I`` is delivered to matching
  local subscriptions and forwarded to every other neighbor ``J`` whose
  table entry (subscriptions that *arrived from* ``J``) matches the event —
  the reverse-path rule: matched events "follow the paths setup by
  subscriptions".

Siena's interface-exclusion routing is loop-free only on acyclic
topologies; :class:`repro.siena.system.SienaPubSub` runs brokers on a
spanning tree when handed a cyclic overlay (as real Siena deployments do).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.broker.broker import DeliveryCallback
from repro.model.events import Event
from repro.model.ids import SubscriptionId
from repro.model.schema import Schema
from repro.model.subscriptions import Subscription
from repro.siena.poset import CoveringSet
from repro.summary.maintenance import SubscriptionStore

__all__ = ["SienaBroker", "LOCAL_INTERFACE"]

#: Interface id for the broker's own clients (never a valid broker id).
LOCAL_INTERFACE = -1


class SienaBroker:
    """State of one broker in the Siena-style comparator."""

    def __init__(
        self,
        broker_id: int,
        schema: Schema,
        neighbors: List[int],
        on_delivery: Optional[DeliveryCallback] = None,
    ):
        self.broker_id = broker_id
        self.schema = schema
        self.neighbors = list(neighbors)
        self.on_delivery = on_delivery
        self.store = SubscriptionStore(schema, broker_id)

        #: Routing table: interface -> subscriptions that arrived from it.
        self.table: Dict[int, CoveringSet] = {
            LOCAL_INTERFACE: CoveringSet(),
            **{neighbor: CoveringSet() for neighbor in self.neighbors},
        }
        #: Per-neighbor record of what we already forwarded (pruning state).
        self.forwarded: Dict[int, CoveringSet] = {
            neighbor: CoveringSet() for neighbor in self.neighbors
        }
        #: Subscriptions accepted since the last propagation flush.
        self.pending: List[Tuple[SubscriptionId, Subscription]] = []

        self.deliveries: List[Tuple[SubscriptionId, Event]] = []
        #: Raw subscription entries currently stored (table rows) — the
        #: storage metric counts these.
        self.stored_subscriptions = 0

    # -- subscription side ------------------------------------------------------

    def subscribe(self, subscription: Subscription) -> SubscriptionId:
        sid = self.store.subscribe(subscription)
        self.pending.append((sid, subscription))
        return sid

    def unsubscribe(self, sid: SubscriptionId) -> bool:
        # Siena unsubscription propagation is out of scope for the paper's
        # comparison; local removal keeps delivery exact here.
        return self.store.unsubscribe(sid) is not None

    def accept_subscription(
        self, interface: int, subscription: Subscription
    ) -> List[int]:
        """Record a subscription from ``interface``; return the neighbors it
        must be forwarded to (covering-pruned)."""
        if interface not in self.table:
            raise ValueError(
                f"broker {self.broker_id} has no interface {interface}"
            )
        if self.table[interface].add(subscription):
            self.stored_subscriptions += 1
        targets: List[int] = []
        for neighbor in self.neighbors:
            if neighbor == interface:
                continue
            if self.forwarded[neighbor].add(subscription):
                targets.append(neighbor)
        return targets

    # -- event side ----------------------------------------------------------------

    def route_event(self, interface: int, event: Event) -> List[int]:
        """Deliver locally and return the neighbors to forward to.

        ``interface`` is where the event came from (``LOCAL_INTERFACE``
        when published here); it is excluded from forwarding.
        """
        # Local delivery: check raw subscriptions (exact).
        for sid, subscription in sorted(self.store.items()):
            if subscription.matches(event):
                self.deliveries.append((sid, event))
                if self.on_delivery is not None:
                    self.on_delivery(self.broker_id, sid, event)
        targets: List[int] = []
        for neighbor in self.neighbors:
            if neighbor == interface:
                continue
            if self.table[neighbor].matches_event(event):
                targets.append(neighbor)
        return targets

    def __repr__(self) -> str:
        return (
            f"SienaBroker(id={self.broker_id}, local={len(self.store)}, "
            f"stored={self.stored_subscriptions})"
        )
