"""Advertisements in the summary paradigm (section 2.2 + section 6).

The paper sidesteps Siena's advertisement mechanism in its comparison but
notes "this mechanism can be employed by our system as well".  This module
employs it:

* an **advertisement** is, structurally, a subscription — a conjunction of
  constraints describing the event space a producer will publish;
* producers register advertisements at their broker, which floods them
  (advertisements are few and long-lived; the flood is charged like any
  other traffic);
* a broker receiving a client subscription first checks it against every
  known advertisement: a subscription **intersecting no advertised event
  space can never fire**, so it is stored for delivery but neither
  summarized nor propagated — its id never costs a byte anywhere;
* when a *new* advertisement arrives, dormant subscriptions that now
  intersect are promoted and propagate at the next period.

The intersection test is sound-conservative (it may say "possibly
intersecting" when a cleverer prover could refute it, but never the
reverse), so correctness is preserved: for arithmetic attributes it is
exact interval intersection; for strings it uses
:func:`repro.summary.patterns.patterns_disjoint`.

Publishing is checked against the publisher broker's local advertisements
(``enforce=True``, the default): an unadvertised event is the producer's
contract violation, reported as :class:`AdvertisementError`.  With
``enforce=False`` unadvertised events are routed normally — but dormant
subscriptions may then legitimately miss them, which is exactly the
semantics advertisements define.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.broker.broker import SummaryBroker
from repro.broker.system import PublishResult, SummaryPubSub
from repro.model.constraints import Constraint
from repro.model.events import Event
from repro.model.ids import SubscriptionId
from repro.model.subscriptions import Subscription
from repro.summary.intervals import intervals_for_conjunction
from repro.summary.patterns import pattern_for_constraint, patterns_disjoint
from repro.wire.messages import AdvertisementMessage, Message

__all__ = [
    "Advertisement",
    "AdvertisementError",
    "AdvertisingBroker",
    "AdvertisingPubSub",
    "constraints_intersect",
    "subscription_intersects_advertisement",
]

#: An advertisement is structurally a subscription: a constraint
#: conjunction over the events the producer will publish.
Advertisement = Subscription


class AdvertisementError(RuntimeError):
    """A producer published an event outside its advertised space."""


# -- intersection ------------------------------------------------------------


def constraints_intersect(
    first: Sequence[Constraint], second: Sequence[Constraint]
) -> bool:
    """Sound test that two constraint conjunctions on ONE attribute admit a
    common value.  True may be conservative; False is a proof."""
    if first[0].attr_type.is_string != second[0].attr_type.is_string:
        raise ValueError("cannot intersect constraints of different families")
    if first[0].attr_type.is_string:
        for a in first:
            pattern_a = pattern_for_constraint(a)
            for b in second:
                if patterns_disjoint(pattern_a, pattern_for_constraint(b)):
                    return False
        return True
    joint = intervals_for_conjunction(list(first) + list(second))
    return not joint.is_empty


def subscription_intersects_advertisement(
    subscription: Subscription, advertisement: Advertisement
) -> bool:
    """Whether some event conforming to ``advertisement`` could match
    ``subscription``.

    Only attributes constrained by *both* sides can conflict: an attribute
    the advertisement leaves free can take any value the subscription
    wants, and vice versa (events may carry extra attributes).
    """
    for name in subscription.attribute_names & advertisement.attribute_names:
        if not constraints_intersect(
            subscription.constraints_on(name), advertisement.constraints_on(name)
        ):
            return False
    return True


# -- the advertising broker -----------------------------------------------------


class AdvertisingBroker(SummaryBroker):
    """A summary broker with an advertisement registry and dormant set."""

    def __init__(self, *args, **kwargs):
        # Advertisement filtering is its own suppression mechanism (the
        # dormant set); the covering frontier would sit unused beside it
        # and trip the suppression-accounting audit.
        kwargs.setdefault("suppress_covered", False)
        super().__init__(*args, **kwargs)
        #: All advertisements known here, keyed by their flooded id.
        self.advertisements: Dict[SubscriptionId, Advertisement] = {}
        #: Local advertisements (what our producers may publish).
        self.local_advertisements: Dict[SubscriptionId, Advertisement] = {}
        #: Subscriptions stored but not summarized (no advertisement match).
        self.dormant: Dict[SubscriptionId, Subscription] = {}
        self._next_adv_id = 0

    # -- advertisements ------------------------------------------------------

    def mint_advertisement_id(self) -> SubscriptionId:
        adv_id = SubscriptionId(
            broker=self.broker_id,
            local_id=self._next_adv_id,
            attr_mask=1,  # advertisements don't participate in c3 matching
        )
        self._next_adv_id += 1
        return adv_id

    def register_advertisement(
        self, adv_id: SubscriptionId, advertisement: Advertisement, local: bool
    ) -> List[Tuple[SubscriptionId, Subscription]]:
        """Record an advertisement; returns dormant subscriptions it wakes."""
        self.advertisements[adv_id] = advertisement
        if local:
            self.local_advertisements[adv_id] = advertisement
        promoted: List[Tuple[SubscriptionId, Subscription]] = []
        for sid in sorted(self.dormant):
            subscription = self.dormant[sid]
            if subscription_intersects_advertisement(subscription, advertisement):
                promoted.append((sid, subscription))
        for sid, subscription in promoted:
            del self.dormant[sid]
            self.kept_summary.add(subscription, sid)
            self.pending.append((sid, subscription))
        return promoted

    def event_is_advertised(self, event: Event) -> bool:
        """Whether the event conforms to some local advertisement."""
        return any(
            advertisement.matches(event)
            for advertisement in self.local_advertisements.values()
        )

    # -- subscription side, advertisement-filtered ------------------------------

    def subscribe(self, subscription: Subscription) -> SubscriptionId:
        sid = self.store.subscribe(subscription)
        if any(
            subscription_intersects_advertisement(subscription, advertisement)
            for advertisement in self.advertisements.values()
        ):
            self.pending.append((sid, subscription))
        else:
            self.dormant[sid] = subscription
        return sid

    def unsubscribe(self, sid: SubscriptionId) -> bool:
        self.dormant.pop(sid, None)
        return super().unsubscribe(sid)


class AdvertisingPubSub(SummaryPubSub):
    """The summary system with advertisement-filtered propagation."""

    def __init__(self, *args, enforce: bool = True, **kwargs):
        self.enforce = enforce
        super().__init__(*args, **kwargs)

    def _create_broker(self, broker_id: int) -> SummaryBroker:
        return AdvertisingBroker(
            broker_id,
            self.schema,
            self.precision,
            on_delivery=self._record_delivery,
            matcher=self.matcher,
            max_subscriptions=self.max_subscriptions,
        )

    # -- producer operations ------------------------------------------------------

    def advertise(
        self, broker_id: int, advertisement: Advertisement
    ) -> SubscriptionId:
        """Register a producer's advertisement and flood it to all brokers."""
        self.schema.validate_subscription(advertisement)
        broker: AdvertisingBroker = self.brokers[broker_id]  # type: ignore[assignment]
        adv_id = broker.mint_advertisement_id()
        broker.register_advertisement(adv_id, advertisement, local=True)
        self.network.metrics = self.propagation_metrics
        message = AdvertisementMessage(entries=((adv_id, advertisement),))
        for other in self.topology.brokers:
            if other != broker_id:
                self.network.send(broker_id, other, message)
        self.network.run()
        return adv_id

    def publish(self, broker_id: int, event: Event) -> PublishResult:
        if self.enforce:
            broker: AdvertisingBroker = self.brokers[broker_id]  # type: ignore[assignment]
            if not broker.event_is_advertised(event):
                raise AdvertisementError(
                    f"broker {broker_id} has no advertisement covering {event!r}"
                )
        return super().publish(broker_id, event)

    # -- measurement ---------------------------------------------------------------

    def total_dormant(self) -> int:
        return sum(
            len(broker.dormant)  # type: ignore[attr-defined]
            for broker in self.brokers.values()
        )

    # -- dispatch ---------------------------------------------------------------------

    def _dispatch(self, dst: int, src: int, message: Message) -> None:
        if isinstance(message, AdvertisementMessage):
            broker: AdvertisingBroker = self.brokers[dst]  # type: ignore[assignment]
            for adv_id, advertisement in message.entries:
                broker.register_advertisement(adv_id, advertisement, local=False)
            return
        super()._dispatch(dst, src, message)
