"""Locality-aware event routing for federated overlays.

The federation experiment (`repro-experiments federation`) shows the
asymmetry of the base algorithms on a multi-ISP overlay: Algorithm 2's
propagation crosses the scarce peering links sparingly, but Algorithm 3's
BROCLI forwarding jumps to the *globally* highest-degree unexamined
broker, bouncing the event across ISPs and paying the multi-link peering
path each time.

:class:`LocalityRouter` fixes the forwarding rule with one change:
among unexamined brokers, prefer those in the forwarding broker's own ISP
(highest degree within it); only when the local ISP is exhausted does the
search jump to another ISP — once, to its best hub, after which the
search stays inside *that* ISP, and so on.  Owner notifications are
unchanged (they must reach whatever ISP the owner lives in), so the
savings show up in the EVENT-message share of inter-ISP bytes.

Correctness is untouched: the search still visits brokers until BROCLI is
complete, only in a different order.
"""

from __future__ import annotations

from typing import FrozenSet

from repro.broker.routing import EventRouter
from repro.broker.system import SummaryPubSub
from repro.network.federation import Federation

__all__ = ["LocalityRouter", "enable_locality"]


class LocalityRouter(EventRouter):
    """Algorithm 3 with exhaust-the-local-ISP-first forwarding."""

    def __init__(self, network, brokers, federation: Federation):
        super().__init__(network, brokers)
        self.federation = federation

    def _next_router(self, brocli: FrozenSet[int], origin: int) -> int:
        topology = self.network.topology
        remaining = [b for b in topology.brokers if b not in brocli]
        assert remaining, "caller guarantees BROCLI is incomplete"
        home = self.federation.isp_of(origin)
        local = [b for b in remaining if self.federation.isp_of(b) == home]
        candidates = local if local else remaining
        return max(candidates, key=lambda b: (topology.degree(b), -b))


def enable_locality(system: SummaryPubSub, federation: Federation) -> SummaryPubSub:
    """Swap a system's router for the locality-aware variant, in place."""
    system.router = LocalityRouter(system.network, system.brokers, federation)
    system.router.tracer = system.tracer  # keep the replacement traced
    return system
