"""Section-6 extensions: advertisements, virtual degrees, dynamic
schemata, and hybrid summarization+subsumption."""

from repro.ext.advertisements import (
    Advertisement,
    AdvertisementError,
    AdvertisingBroker,
    AdvertisingPubSub,
    constraints_intersect,
    subscription_intersects_advertisement,
)
from repro.ext.dynamic_schema import DynamicSchema, VersionedIdCodec
from repro.ext.hybrid import HybridBroker, HybridPubSub
from repro.ext.locality import LocalityRouter, enable_locality
from repro.ext.virtual_degrees import (
    VirtualDegreeRouter,
    enable_virtual_degrees,
    hub_load_spread,
)

__all__ = [
    "Advertisement",
    "AdvertisementError",
    "AdvertisingBroker",
    "AdvertisingPubSub",
    "DynamicSchema",
    "HybridBroker",
    "HybridPubSub",
    "LocalityRouter",
    "VersionedIdCodec",
    "VirtualDegreeRouter",
    "constraints_intersect",
    "enable_locality",
    "enable_virtual_degrees",
    "hub_load_spread",
    "subscription_intersects_advertisement",
]
