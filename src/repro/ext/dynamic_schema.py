"""Dynamically-changing attribute schemata (paper section 6).

The base system fixes the attribute set up front (section 3's assumption
(ii)); the conclusions note that supporting schema growth "basically only
requires changing the c3 field of subscription ids".  This module
implements that:

* :class:`DynamicSchema` — an append-only, versioned attribute registry.
  Adding an attribute bumps the version; positions (and therefore existing
  ``c3`` masks) never change, so every previously-issued subscription id
  stays valid.
* :class:`VersionedIdCodec` — wire ids prefixed with the schema version
  they were minted under; the decoder uses that version's ``c3`` width, so
  brokers that have already learned about new attributes can still decode
  ids minted by brokers that have not (and vice versa).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.model.attributes import AttributeSpec
from repro.model.ids import IdCodec, SubscriptionId
from repro.model.schema import Schema
from repro.wire.codec import ByteReader, ByteWriter, CodecError

__all__ = ["DynamicSchema", "VersionedIdCodec"]


class DynamicSchema:
    """An append-only attribute registry with versioned Schema snapshots."""

    def __init__(self, initial: Schema):
        self._specs: List[AttributeSpec] = list(initial.specs)
        self._snapshots: List[Schema] = [initial]

    @property
    def version(self) -> int:
        """Current schema version (0 = the initial schema)."""
        return len(self._snapshots) - 1

    @property
    def current(self) -> Schema:
        return self._snapshots[-1]

    def at_version(self, version: int) -> Schema:
        if not 0 <= version < len(self._snapshots):
            raise ValueError(f"unknown schema version {version}")
        return self._snapshots[version]

    def add_attribute(self, spec: AttributeSpec) -> int:
        """Register a new attribute; returns its (stable) position.

        Existing positions are untouched, so c3 masks minted under any
        earlier version remain correct under every later one.
        """
        if any(existing.name == spec.name for existing in self._specs):
            raise ValueError(f"attribute {spec.name!r} already in schema")
        self._specs.append(spec)
        snapshot = Schema(self._specs)
        self._snapshots.append(snapshot)
        return len(self._specs) - 1

    def upgrade_mask(self, mask: int, from_version: int) -> int:
        """A c3 mask from an older version, as seen by the current schema.

        Positions are stable, so the mask value is unchanged — this method
        exists to make that invariant explicit (and to validate range).
        """
        old_width = len(self.at_version(from_version))
        if mask >= (1 << old_width):
            raise ValueError(
                f"mask {mask:#x} too wide for schema version {from_version}"
            )
        return mask


class VersionedIdCodec:
    """Packs subscription ids with the schema version they were minted at."""

    def __init__(self, dynamic: DynamicSchema, num_brokers: int, max_subscriptions: int):
        self.dynamic = dynamic
        self.num_brokers = num_brokers
        self.max_subscriptions = max_subscriptions
        self._codecs: Dict[int, IdCodec] = {}

    def codec_for(self, version: int) -> IdCodec:
        codec = self._codecs.get(version)
        if codec is None:
            codec = self._codecs[version] = IdCodec(
                num_brokers=self.num_brokers,
                max_subscriptions=self.max_subscriptions,
                num_attributes=len(self.dynamic.at_version(version)),
            )
        return codec

    def encode(self, sid: SubscriptionId, version: int) -> bytes:
        writer = ByteWriter()
        writer.varint(version)
        writer.raw(self.codec_for(version).to_bytes(sid))
        return writer.getvalue()

    def decode(self, data: bytes) -> Tuple[SubscriptionId, int]:
        reader = ByteReader(data)
        version = reader.varint()
        if version > self.dynamic.version:
            raise CodecError(
                f"id minted under schema version {version}, but only "
                f"{self.dynamic.version} is known here"
            )
        codec = self.codec_for(version)
        sid = codec.from_bytes(reader.raw(codec.byte_size))
        if not reader.at_end():
            raise CodecError(f"{reader.remaining} trailing bytes after versioned id")
        return sid, version
