"""Virtual degrees — load balancing for event processing (paper section 6).

Algorithm 3 always forwards an event to the *highest-degree* broker not yet
in BROCLI, so the maximum-degree hubs sit on every event's forwarding chain
and become hotspots.  The paper's ongoing-work remedy: "we employ 'virtual
degrees' for the maximum-degree nodes, reducing their load, while
continuing, however, to offer significant improvements" — trading a little
event-processing time for load distribution.

Implementation: the router ranks candidate brokers by a per-event *virtual*
degree instead of the real one.  Brokers whose real degree is within
``tolerance`` of the best remaining candidate form the hub class for that
decision, and a deterministic per-event rotation (a hash of the event and
the candidate id) picks among them.  Different events therefore start their
search at different hubs of the same class; because same-class hubs hold
different merged-summary clusters the chain can lengthen slightly — exactly
the trade-off the paper describes.  ``benchmarks/test_ablation_virtual_degrees.py``
quantifies both sides.
"""

from __future__ import annotations

import hashlib
from typing import Dict, FrozenSet

from repro.broker.routing import EventRouter
from repro.broker.system import SummaryPubSub
from repro.model.events import Event

__all__ = ["VirtualDegreeRouter", "enable_virtual_degrees", "hub_load_spread"]


class VirtualDegreeRouter(EventRouter):
    """An :class:`EventRouter` with per-event hub rotation."""

    def __init__(self, network, brokers, tolerance: int = 1):
        super().__init__(network, brokers)
        if tolerance < 0:
            raise ValueError("tolerance must be non-negative")
        self.tolerance = tolerance
        self._current_event: Event = None  # type: ignore[assignment]

    # The event being processed is needed by the ranking; process_event is
    # the single entry point for both publishes and forwards.
    def process_event(self, broker, event, brocli_in, publish_id=0):
        self._current_event = event
        super().process_event(broker, event, brocli_in, publish_id)

    def _next_router(self, brocli: FrozenSet[int], origin: int) -> int:
        topology = self.network.topology
        remaining = [b for b in topology.brokers if b not in brocli]
        assert remaining, "caller guarantees BROCLI is incomplete"
        best_degree = max(topology.degree(b) for b in remaining)
        hub_class = [
            b for b in remaining if topology.degree(b) >= best_degree - self.tolerance
        ]
        key = _event_key(self._current_event)
        return max(hub_class, key=lambda b: (_rotation(key, b), -b))


def _event_key(event: Event) -> bytes:
    digest = hashlib.blake2b(digest_size=8)
    for name, _type, value in sorted(event.items()):
        digest.update(name.encode())
        digest.update(repr(value).encode())
    return digest.digest()


def _rotation(key: bytes, broker: int) -> int:
    digest = hashlib.blake2b(key, digest_size=4, salt=broker.to_bytes(8, "big"))
    return int.from_bytes(digest.digest(), "big")


def enable_virtual_degrees(system: SummaryPubSub, tolerance: int = 1) -> SummaryPubSub:
    """Swap a system's router for the virtual-degree variant, in place."""
    system.router = VirtualDegreeRouter(system.network, system.brokers, tolerance)
    system.router.tracer = system.tracer  # keep the replacement traced
    return system


def hub_load_spread(system: SummaryPubSub) -> Dict[int, int]:
    """Events examined per broker — the hotspot metric the extension
    targets (compare ``max(...)`` across routers)."""
    return {
        broker_id: broker.events_examined
        for broker_id, broker in system.brokers.items()
    }
