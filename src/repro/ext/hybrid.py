"""Hybrid summarization + subsumption (paper section 6).

The conclusions mention ongoing work "combining summarization and
subsumption".  The natural combination: before a new subscription enters
the summary (and therefore the propagated id lists), check whether an
already-summarized *local* subscription covers it.  If so, the newcomer
needs no summary entry of its own — any event matching it also matches its
coverer, so the coverer's id will bring the event home, where delivery
re-checks the raw store anyway.

Effects measured by ``benchmarks/test_ablation_hybrid.py``:

* propagated summaries carry fewer ids (bandwidth/storage shrink further
  when the workload has covering structure);
* matching work at remote brokers drops (shorter id lists);
* correctness is unchanged *because* home delivery checks every raw local
  subscription against the event, not just the notified candidate ids.

Churn safety: unsubscribing a *covering* subscription would strand the
subscriptions it suppressed (they have no remote presence), so frontier
removals rebuild the covering frontier and queue newly-uncovered
subscriptions for propagation at the next period.
"""

from __future__ import annotations

from typing import List, Set, Tuple

from repro.broker.broker import SummaryBroker
from repro.broker.system import SummaryPubSub
from repro.model.events import Event
from repro.model.ids import SubscriptionId
from repro.model.subscriptions import Subscription
from repro.siena.poset import CoveringSet

__all__ = ["HybridBroker", "HybridPubSub"]


class HybridBroker(SummaryBroker):
    """A summary broker that suppresses covered subscriptions."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        #: The covering frontier of subscriptions that DID enter the summary.
        self.summarized = CoveringSet()
        self._summarized_sids: Set[SubscriptionId] = set()

    @property
    def suppressed(self) -> int:
        """Local subscriptions absorbed by the frontier (not propagated)."""
        return len(self.store) - len(self._summarized_sids)

    def subscribe(self, subscription: Subscription) -> SubscriptionId:
        sid = self.store.subscribe(subscription)
        if self.summarized.covers(subscription):
            # Covered: stored for delivery, never summarized or propagated.
            return sid
        self.summarized.add(subscription)
        self._summarized_sids.add(sid)
        self.pending.append((sid, subscription))
        return sid

    def unsubscribe(self, sid: SubscriptionId) -> bool:
        was_frontier = sid in self._summarized_sids
        if not super().unsubscribe(sid):
            return False
        if was_frontier:
            self._summarized_sids.discard(sid)
            self._rebuild_frontier()
        return True

    def _rebuild_frontier(self) -> None:
        """Recompute the covering frontier after a frontier removal; any
        subscription that becomes uncovered is queued for propagation."""
        self.summarized = CoveringSet()
        promoted: List[Tuple[SubscriptionId, Subscription]] = []
        for sid, subscription in sorted(self.store.items()):
            if self.summarized.covers(subscription):
                continue
            self.summarized.add(subscription)
            if sid not in self._summarized_sids:
                self._summarized_sids.add(sid)
                promoted.append((sid, subscription))
        for sid, subscription in promoted:
            # Re-enter the local kept summary immediately (local events must
            # match before the next period) and propagate at the next period.
            self.kept_summary.add(subscription, sid)
            self.pending.append((sid, subscription))

    def deliver(
        self, sids: Set[SubscriptionId], event: Event, publish_id: int = 0
    ) -> Set[SubscriptionId]:
        """Hybrid delivery ignores the candidate ids and checks the whole
        raw store: suppressed subscriptions have no remote ids, so the
        notification for their coverer must fan out to them here."""
        if publish_id:
            if publish_id in self._delivered_publishes:
                self._delivered_publishes.move_to_end(publish_id)  # LRU touch
                self.duplicates_suppressed += 1
                return set()
            self._remember(self._delivered_publishes, publish_id)
        confirmed: Set[SubscriptionId] = set()
        for sid, subscription in self.store.items():
            if subscription.matches(event):
                confirmed.add(sid)
        self.false_positive_notifies += len(sids - confirmed)
        for sid in sorted(confirmed):
            self.deliveries.append((sid, event))
            if self.on_delivery is not None:
                self.on_delivery(self.broker_id, sid, event)
        return confirmed


class HybridPubSub(SummaryPubSub):
    """The summary system with the covering prefilter enabled."""

    def _create_broker(self, broker_id: int) -> SummaryBroker:
        return HybridBroker(
            broker_id,
            self.schema,
            self.precision,
            on_delivery=self._record_delivery,
            matcher=self.matcher,
            dedup_capacity=self.dedup_capacity,
            max_subscriptions=self.max_subscriptions,
        )

    def total_suppressed(self) -> int:
        return sum(broker.suppressed for broker in self.brokers.values())  # type: ignore[attr-defined]
