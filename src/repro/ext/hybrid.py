"""Hybrid summarization + subsumption (paper section 6).

The conclusions mention ongoing work "combining summarization and
subsumption".  The natural combination: before a new subscription enters
the summary (and therefore the propagated id lists), check whether an
already-summarized *local* subscription covers it.  If so, the newcomer
needs no summary entry of its own — any event matching it also matches its
coverer, so the coverer's id will bring the event home, where delivery
re-checks the raw store anyway.

This prefilter proved its worth as an ``ext`` prototype and has since been
folded into :class:`~repro.broker.broker.SummaryBroker` itself (the
``suppress_covered`` flag, on by default).  The fold-in also fixed two
defects of the prototype kept here for the ablation benchmarks:

* the old ``_rebuild_frontier`` rescanned the *entire* store on every
  frontier unsubscribe — the core path re-homes only the ids the departed
  member actually covered (:meth:`SummaryBroker._frontier_remove`), and
* the old ``suppressed`` counter (``len(store) - len(_summarized_sids)``)
  drifted when :class:`~repro.siena.poset.CoveringSet` silently *evicted*
  frontier members covered by a later, more general arrival — the evicted
  sid stayed in ``_summarized_sids`` while its subscription left the
  frontier.  The core path counts covered ids directly
  (``len(_coverer_of)``) over a no-eviction
  :class:`~repro.siena.poset.SidCoveringIndex`, so the counter is exact
  by construction (asserted against recomputed ground truth in
  ``tests/ext/test_hybrid.py``).

These classes remain as thin aliases so existing experiment/benchmark
code (``benchmarks/test_ablation_hybrid.py``) keeps working; the ablation
contrast is now expressed as ``suppress_covered=True`` (hybrid) versus
``suppress_covered=False`` (plain).
"""

from __future__ import annotations

from repro.broker.broker import SummaryBroker
from repro.broker.system import SummaryPubSub

__all__ = ["HybridBroker", "HybridPubSub"]


class HybridBroker(SummaryBroker):
    """A summary broker with covered-id suppression forced on.

    Kept for backwards compatibility: suppression now lives in
    :class:`SummaryBroker` (``suppress_covered=True`` by default); this
    subclass merely pins the flag so ablation code that instantiates
    ``HybridBroker`` directly keeps its meaning even if the default ever
    changes.
    """

    def __init__(self, *args, **kwargs):
        kwargs["suppress_covered"] = True
        super().__init__(*args, **kwargs)


class HybridPubSub(SummaryPubSub):
    """The summary system with the covering prefilter enabled."""

    def __init__(self, *args, **kwargs):
        kwargs["suppress_covered"] = True
        super().__init__(*args, **kwargs)

    def _create_broker(self, broker_id: int) -> SummaryBroker:
        return HybridBroker(
            broker_id,
            self.schema,
            self.precision,
            on_delivery=self._record_delivery,
            matcher=self.matcher,
            dedup_capacity=self.dedup_capacity,
            max_subscriptions=self.max_subscriptions,
        )
