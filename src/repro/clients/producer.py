"""Producers — the Event Sources of the paper's figure-1 architecture.

"An Event Source produces events, say, in response to changes to a real
world variable that it monitors."  A :class:`Producer` attaches to one
broker and publishes events (objects or keyword values); on an
advertisement-enabled system it can also declare its event space first.
"""

from __future__ import annotations

from typing import Optional, Union

from repro.broker.system import PublishResult, SummaryPubSub
from repro.model.events import Event
from repro.model.ids import SubscriptionId
from repro.model.parser import parse_subscription
from repro.model.subscriptions import Subscription

__all__ = ["Producer"]


class Producer:
    """An Event Source attached to one broker."""

    def __init__(
        self,
        system: SummaryPubSub,
        broker_id: int,
        name: Optional[str] = None,
    ):
        if broker_id not in system.topology.brokers:
            raise ValueError(f"no broker {broker_id} in the system")
        self.system = system
        self.broker_id = broker_id
        self.name = name if name is not None else f"producer@{broker_id}"
        self.published = 0

    def publish(self, event: Optional[Event] = None, **values) -> PublishResult:
        """Publish an :class:`Event`, or build one from keyword values."""
        if event is None:
            if not values:
                raise ValueError("publish needs an Event or keyword values")
            event = Event.of(**values)
        elif values:
            raise ValueError("pass an Event or keyword values, not both")
        result = self.system.publish(self.broker_id, event)
        self.published += 1
        return result

    def advertise(self, space: Union[Subscription, str]) -> SubscriptionId:
        """Declare the event space this producer will publish.

        Only meaningful on an advertisement-enabled system
        (:class:`repro.ext.advertisements.AdvertisingPubSub`); on a plain
        system this raises, loudly, rather than silently doing nothing.
        """
        advertise = getattr(self.system, "advertise", None)
        if advertise is None:
            raise TypeError(
                "this system does not support advertisements; build an "
                "AdvertisingPubSub to use Producer.advertise"
            )
        if isinstance(space, str):
            space = parse_subscription(self.system.schema, space)
        return advertise(self.broker_id, space)

    def __repr__(self) -> str:
        return f"Producer({self.name!r}, broker {self.broker_id}, {self.published} published)"
