"""Consumers — the Event Displayers of the paper's figure-1 architecture.

"If a user's subscription matches an event, it is forwarded to the Event
Displayer for that user.  The Event Displayer is responsible for alerting
the user."  A :class:`Consumer` attaches to one broker, registers the
user's interests (objects or the textual constraint notation), and either
invokes a callback per matching event or queues them in an inbox.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple, Union

from repro.broker.system import Delivery, SummaryPubSub
from repro.model.composite import Query, parse_query
from repro.model.events import Event
from repro.model.ids import SubscriptionId
from repro.model.parser import parse_subscription
from repro.model.subscriptions import Subscription

__all__ = ["Consumer", "QueryHandle"]


class QueryHandle:
    """A registered composite (OR) query: one sid per DNF branch."""

    __slots__ = ("query", "sids")

    def __init__(self, query: Query, sids: Tuple[SubscriptionId, ...]):
        self.query = query
        self.sids = sids

    def branch_of(self, sid: SubscriptionId) -> int:
        return self.sids.index(sid)

    def __repr__(self) -> str:
        return f"QueryHandle({len(self.sids)} branches)"

#: Called per matching event: ``callback(consumer, sid, event)``.
ConsumerCallback = Callable[["Consumer", SubscriptionId, Event], None]


class Consumer:
    """A user's Event Displayer attached to one broker."""

    def __init__(
        self,
        system: SummaryPubSub,
        broker_id: int,
        name: Optional[str] = None,
        on_event: Optional[ConsumerCallback] = None,
    ):
        if broker_id not in system.topology.brokers:
            raise ValueError(f"no broker {broker_id} in the system")
        self.system = system
        self.broker_id = broker_id
        self.name = name if name is not None else f"consumer@{broker_id}"
        self.on_event = on_event
        self._subscriptions: Dict[SubscriptionId, Subscription] = {}
        self._queries: Dict[SubscriptionId, QueryHandle] = {}
        self.inbox: List[Tuple[SubscriptionId, Event]] = []
        self._closed = False
        system.add_delivery_listener(self._on_delivery)

    # -- interests -----------------------------------------------------------

    def subscribe(self, interest: Union[Subscription, str]) -> SubscriptionId:
        """Register an interest (a Subscription or its textual form)."""
        self._check_open()
        if isinstance(interest, str):
            interest = parse_subscription(self.system.schema, interest)
        sid = self.system.subscribe(self.broker_id, interest)
        self._subscriptions[sid] = interest
        return sid

    def unsubscribe(self, sid: SubscriptionId) -> bool:
        self._check_open()
        if sid not in self._subscriptions:
            return False
        del self._subscriptions[sid]
        return self.system.unsubscribe(self.broker_id, sid)

    def subscribe_query(self, query: Union[Query, str]) -> QueryHandle:
        """Register an OR query: one subscription per DNF branch, with
        exactly one alert per matching event (first-branch attribution)."""
        self._check_open()
        if isinstance(query, str):
            query = parse_query(self.system.schema, query)
        sids = tuple(self.subscribe(branch) for branch in query.branches)
        handle = QueryHandle(query, sids)
        for sid in sids:
            self._queries[sid] = handle
        return handle

    def unsubscribe_query(self, handle: QueryHandle) -> bool:
        self._check_open()
        found = False
        for sid in handle.sids:
            if self._queries.pop(sid, None) is not None:
                found = True
            self.unsubscribe(sid)
        return found

    @property
    def subscriptions(self) -> Dict[SubscriptionId, Subscription]:
        return dict(self._subscriptions)

    # -- receiving ---------------------------------------------------------------

    def _on_delivery(self, delivery: Delivery) -> None:
        if delivery.broker != self.broker_id or delivery.sid not in self._subscriptions:
            return
        handle = self._queries.get(delivery.sid)
        if handle is not None and not handle.query.is_attributed_to(
            delivery.event, handle.branch_of(delivery.sid)
        ):
            return  # another branch of the same query already alerted
        if self.on_event is not None:
            self.on_event(self, delivery.sid, delivery.event)
        else:
            self.inbox.append((delivery.sid, delivery.event))

    def drain(self) -> List[Tuple[SubscriptionId, Event]]:
        """Take and clear everything currently in the inbox."""
        taken, self.inbox = self.inbox, []
        return taken

    # -- lifecycle -----------------------------------------------------------------

    def close(self, unsubscribe: bool = True) -> None:
        """Detach from the system (idempotent).  By default the user's
        interests are withdrawn too."""
        if self._closed:
            return
        if unsubscribe:
            for sid in list(self._subscriptions):
                self.unsubscribe(sid)
        self.system.remove_delivery_listener(self._on_delivery)
        self._closed = True

    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError(f"{self.name} is closed")

    def __enter__(self) -> "Consumer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"Consumer({self.name!r}, broker {self.broker_id}, "
            f"{len(self._subscriptions)} interests, {len(self.inbox)} queued)"
        )
