"""Client entities of the paper's figure-1 architecture: Event Sources
(producers) and Event Displayers (consumers)."""

from repro.clients.consumer import Consumer
from repro.clients.producer import Producer

__all__ = ["Consumer", "Producer"]
