"""Fault injection: lossy/duplicating transports.

The paper (like Siena) assumes reliable broker-to-broker channels.  This
module quantifies that assumption: :class:`LossyNetwork` drops and/or
duplicates messages with seeded probabilities, so experiments can measure

* **delivery ratio vs drop rate** — how fast Algorithm 3 degrades when
  its forwarding chain or owner notifications go missing (a dropped
  EVENT message severs the whole remaining BROCLI search, which is the
  protocol's known serial weak point), and
* **duplicate tolerance** — with publish-id de-duplication in the broker
  layer, duplicated messages must cause zero duplicate consumer
  deliveries (asserted by tests).

Dropped messages still charge bytes (the sender transmitted them); they
simply never arrive.  Duplicated messages charge bytes **twice** for the
same reason — the sender put two copies on the wire — so measured
bandwidth never undercounts under duplication.

Both probabilities accept the full closed interval ``[0, 1]``:
``drop_probability=1.0`` models a completely dead network (useful with
:class:`~repro.network.reliable.ReliableNetwork` to exercise retry
exhaustion), and ``duplicate_probability=1.0`` duplicates every message.
Out-of-range values raise :class:`ValueError`.

Fault *tolerance* — per-message ACKs and bounded retransmission on top of
this (or any) transport — lives in :mod:`repro.network.reliable`.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.network.metrics import NetworkMetrics
from repro.network.simulator import Network, NetworkError
from repro.network.topology import Topology
from repro.wire.messages import Message, MessageCodec

__all__ = ["LossyNetwork"]


class LossyNetwork(Network):
    """A :class:`Network` that loses and duplicates messages."""

    def __init__(
        self,
        topology: Topology,
        codec: Optional[MessageCodec] = None,
        metrics: Optional[NetworkMetrics] = None,
        drop_probability: float = 0.0,
        duplicate_probability: float = 0.0,
        seed: int = 0,
    ):
        if not 0.0 <= drop_probability <= 1.0:
            raise ValueError("drop probability must be in [0, 1]")
        if not 0.0 <= duplicate_probability <= 1.0:
            raise ValueError("duplicate probability must be in [0, 1]")
        super().__init__(topology, codec, metrics)
        self.drop_probability = drop_probability
        self.duplicate_probability = duplicate_probability
        self._rng = random.Random(seed)
        self.dropped = 0
        self.duplicated = 0

    def send(self, src: int, dst: int, message: Message) -> None:
        if src not in self.topology.brokers or dst not in self.topology.brokers:
            raise NetworkError(f"send between unknown brokers {src} -> {dst}")
        if src == dst:
            raise NetworkError(f"broker {src} attempted to send to itself")
        # The sender always pays for the transmission.
        size = self.codec.size(message) if self.codec is not None else 0
        path_length = self.topology.path_length(src, dst)
        self.metrics.record(src, dst, size, path_length)
        if self.drop_probability and self._rng.random() < self.drop_probability:
            self.dropped += 1
            return
        self._enqueue(dst, src, message)
        if self.duplicate_probability and self._rng.random() < self.duplicate_probability:
            self.duplicated += 1
            # The duplicate is a second transmission: meter it too, or
            # bandwidth figures would undercount under duplication.
            self.metrics.record(src, dst, size, path_length)
            self._enqueue(dst, src, message)

    def _enqueue(self, dst: int, src: int, message: Message) -> None:
        self._pending.append((dst, self._sequence, src, message))
        self._sequence += 1
