"""ISP backbone overlay topologies.

The paper runs its evaluation on "an overlay network topology like that of
the backbone network of U.S. Cable and Wireless plc, having 24 nodes"
(citing a now-dead corporate URL), noting such single-ISP CDN backbones
"number from 20 to 33 backbone nodes".

The exact 2003 C&W map is no longer available, so
:func:`cable_wireless_24` is a *reconstruction*: a 24-city US backbone with
the characteristic shape of that era's ISP networks — a small number of
high-degree hub cities (here Dallas and Atlanta at degree 7, Chicago at 6),
coastal rings, and many degree-2/3 spur cities.  DESIGN.md records this
substitution; the paper itself states its results "are similar in all
cases" across the real and artificial topologies it tried, and the
experiment suite re-checks the headline shapes on trees and random graphs.

:func:`scale_free_backbone` generates comparable synthetic backbones at any
size (preferential attachment — few hubs, many low-degree nodes) for
sensitivity sweeps.
"""

from __future__ import annotations

from typing import Tuple

import networkx as nx

from repro.network.topology import Topology, paper_example_tree

__all__ = [
    "cable_wireless_24",
    "CW24_CITIES",
    "named_topology",
    "scale_free_backbone",
]

#: City labels for the reconstructed backbone, index = broker id.
CW24_CITIES: Tuple[str, ...] = (
    "Seattle",        # 0
    "SanFrancisco",   # 1
    "SanJose",        # 2
    "LosAngeles",     # 3
    "SanDiego",       # 4
    "Phoenix",        # 5
    "Denver",         # 6
    "Dallas",         # 7
    "Houston",        # 8
    "Austin",         # 9
    "KansasCity",     # 10
    "Chicago",        # 11
    "Minneapolis",    # 12
    "StLouis",        # 13
    "Atlanta",        # 14
    "Miami",          # 15
    "Orlando",        # 16
    "WashingtonDC",   # 17
    "Philadelphia",   # 18
    "NewYork",        # 19
    "Boston",         # 20
    "Detroit",        # 21
    "Cleveland",      # 22
    "Raleigh",        # 23
)

_CW24_EDGES: Tuple[Tuple[int, int], ...] = (
    (0, 1),    # Seattle - SanFrancisco
    (0, 6),    # Seattle - Denver
    (0, 11),   # Seattle - Chicago
    (0, 12),   # Seattle - Minneapolis
    (1, 2),    # SanFrancisco - SanJose
    (1, 3),    # SanFrancisco - LosAngeles
    (1, 6),    # SanFrancisco - Denver
    (2, 3),    # SanJose - LosAngeles
    (3, 4),    # LosAngeles - SanDiego
    (3, 5),    # LosAngeles - Phoenix
    (3, 7),    # LosAngeles - Dallas
    (4, 5),    # SanDiego - Phoenix
    (5, 7),    # Phoenix - Dallas
    (6, 7),    # Denver - Dallas
    (6, 10),   # Denver - KansasCity
    (7, 8),    # Dallas - Houston
    (7, 9),    # Dallas - Austin
    (7, 10),   # Dallas - KansasCity
    (7, 14),   # Dallas - Atlanta
    (8, 9),    # Houston - Austin
    (8, 14),   # Houston - Atlanta
    (10, 11),  # KansasCity - Chicago
    (10, 13),  # KansasCity - StLouis
    (11, 12),  # Chicago - Minneapolis
    (11, 13),  # Chicago - StLouis
    (11, 19),  # Chicago - NewYork
    (11, 21),  # Chicago - Detroit
    (13, 14),  # StLouis - Atlanta
    (14, 15),  # Atlanta - Miami
    (14, 16),  # Atlanta - Orlando
    (14, 17),  # Atlanta - WashingtonDC
    (14, 23),  # Atlanta - Raleigh
    (15, 16),  # Miami - Orlando
    (17, 18),  # WashingtonDC - Philadelphia
    (17, 19),  # WashingtonDC - NewYork
    (17, 23),  # WashingtonDC - Raleigh
    (18, 19),  # Philadelphia - NewYork
    (19, 20),  # NewYork - Boston
    (19, 22),  # NewYork - Cleveland
    (20, 22),  # Boston - Cleveland
    (21, 22),  # Detroit - Cleveland
)


def cable_wireless_24() -> Topology:
    """The reconstructed 24-node U.S. backbone used by all experiments."""
    return Topology.from_edges(_CW24_EDGES)


def city_of(broker: int) -> str:
    """Human-readable label for a CW24 broker id."""
    return CW24_CITIES[broker]


def scale_free_backbone(n: int, seed: int = 0, links_per_node: int = 2) -> Topology:
    """A synthetic backbone of ``n`` nodes with hub-dominated degrees.

    Preferential attachment reproduces the degree mix of real ISP
    backbones (a few hubs, a long tail of degree-2 spurs), which is the
    property the degree-driven propagation algorithm is sensitive to.
    """
    if n < 3:
        raise ValueError("a backbone needs at least 3 nodes")
    graph = nx.barabasi_albert_graph(n, links_per_node, seed=seed)
    return Topology(graph)


def named_topology(name: str) -> Topology:
    """Resolve a topology name shared by the CLIs and the scenario driver.

    ``cw24`` (the paper's 24-broker Cable & Wireless backbone), ``tree13``
    (figure 7), ``line<N>``, ``star<N>``, ``scalefree<N>``.
    """
    if name == "cw24":
        return cable_wireless_24()
    if name == "tree13":
        return paper_example_tree()
    for prefix, factory in (
        ("line", Topology.line),
        ("star", Topology.star),
        ("scalefree", scale_free_backbone),
    ):
        if name.startswith(prefix) and name[len(prefix):].isdigit():
            return factory(int(name[len(prefix):]))
    raise ValueError(
        f"unknown topology {name!r} (try cw24, tree13, line4, star8, scalefree16)"
    )
