"""Broker overlay substrate: topologies, backbones, metrics, simulator."""

from repro.network.backbone import (
    CW24_CITIES,
    cable_wireless_24,
    named_topology,
    scale_free_backbone,
)
from repro.network.faults import LossyNetwork
from repro.network.federation import Federation, federate, three_isp_federation
from repro.network.latency import (
    LatencyModel,
    SeededLatency,
    TimedNetwork,
    UniformLatency,
)
from repro.network.metrics import NetworkMetrics
from repro.network.reliable import ReliableNetwork, RetryPolicy
from repro.network.simulator import BrokerHandler, Network, NetworkError
from repro.network.topology import Topology, paper_example_tree

__all__ = [
    "CW24_CITIES",
    "BrokerHandler",
    "LatencyModel",
    "Federation",
    "LossyNetwork",
    "ReliableNetwork",
    "RetryPolicy",
    "SeededLatency",
    "TimedNetwork",
    "UniformLatency",
    "Network",
    "NetworkError",
    "NetworkMetrics",
    "Topology",
    "cable_wireless_24",
    "federate",
    "named_topology",
    "three_isp_federation",
    "paper_example_tree",
    "scale_free_backbone",
]
