"""Broker overlay topologies.

The brokers of the Event Brokering Network form an overlay graph.  The
propagation algorithm (paper section 4.2) is driven entirely by broker
*degrees* in this overlay, and the evaluation measures hop counts over it,
so the topology type exposes exactly those notions: degrees, neighbors,
BFS/spanning trees (for the Siena comparator) and shortest-path lengths
(for charging multi-hop messages).

Brokers are numbered ``0 .. n-1``.  The paper's figure-7 example tree uses
ids 1..13; :func:`paper_example_tree` keeps the paper's numbering shifted
down by one (paper broker *k* is node *k-1*) so docs can cross-reference.
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

import networkx as nx

__all__ = ["Topology", "paper_example_tree"]


class Topology:
    """An immutable, connected, simple broker overlay graph."""

    def __init__(self, graph: nx.Graph):
        if graph.number_of_nodes() == 0:
            raise ValueError("topology must have at least one broker")
        nodes = sorted(graph.nodes)
        if nodes != list(range(len(nodes))):
            raise ValueError("broker ids must be exactly 0..n-1")
        if any(graph.has_edge(node, node) for node in nodes):
            raise ValueError("self-loops are not allowed")
        if graph.number_of_nodes() > 1 and not nx.is_connected(graph):
            raise ValueError("topology must be connected")
        self._graph = nx.freeze(graph.copy())
        self._degrees: Dict[int, int] = dict(self._graph.degree())
        self._path_lengths: Optional[Dict[int, Dict[int, int]]] = None

    # -- basic accessors -------------------------------------------------------

    @property
    def graph(self) -> nx.Graph:
        return self._graph

    @property
    def num_brokers(self) -> int:
        return self._graph.number_of_nodes()

    @property
    def num_links(self) -> int:
        return self._graph.number_of_edges()

    @property
    def brokers(self) -> range:
        return range(self.num_brokers)

    def neighbors(self, broker: int) -> List[int]:
        return sorted(self._graph.neighbors(broker))

    def degree(self, broker: int) -> int:
        return self._degrees[broker]

    @property
    def max_degree(self) -> int:
        return max(self._degrees.values())

    def brokers_by_degree(self, degree: int) -> List[int]:
        return sorted(b for b, d in self._degrees.items() if d == degree)

    def edges(self) -> Iterator[Tuple[int, int]]:
        return iter(self._graph.edges())

    def is_tree(self) -> bool:
        return self.num_links == self.num_brokers - 1

    # -- paths ---------------------------------------------------------------------

    def _lengths(self) -> Dict[int, Dict[int, int]]:
        if self._path_lengths is None:
            self._path_lengths = {
                source: dict(lengths)
                for source, lengths in nx.all_pairs_shortest_path_length(self._graph)
            }
        return self._path_lengths

    def path_length(self, a: int, b: int) -> int:
        """Overlay shortest-path length in links (0 when ``a == b``)."""
        return self._lengths()[a][b]

    def average_path_length(self) -> float:
        """Mean shortest-path length over ordered distinct broker pairs —
        the "average number of hops (from any broker to any other)" in the
        paper's baseline bandwidth formula."""
        n = self.num_brokers
        if n < 2:
            return 0.0
        lengths = self._lengths()
        total = sum(
            dist for source in lengths.values() for dist in source.values()
        )
        return total / (n * (n - 1))

    def bfs_tree(self, root: int) -> Dict[int, List[int]]:
        """Children lists of the BFS (minimum, unweighted) spanning tree
        rooted at ``root`` — Siena propagates along these trees."""
        children: Dict[int, List[int]] = {broker: [] for broker in self.brokers}
        for parent, child in nx.bfs_edges(self._graph, root):
            children[parent].append(child)
        return children

    def bfs_parents(self, root: int) -> Dict[int, int]:
        """Parent pointers of the BFS tree (root excluded)."""
        return {child: parent for parent, child in nx.bfs_edges(self._graph, root)}

    # -- factories -----------------------------------------------------------------

    @classmethod
    def from_edges(cls, edges: Iterable[Tuple[int, int]]) -> "Topology":
        graph = nx.Graph()
        graph.add_edges_from(edges)
        if graph.number_of_nodes():
            graph.add_nodes_from(range(max(graph.nodes) + 1))
        return cls(graph)

    @classmethod
    def line(cls, n: int) -> "Topology":
        return cls(nx.path_graph(n))

    @classmethod
    def star(cls, n: int) -> "Topology":
        """One hub (broker 0) with ``n - 1`` leaves."""
        return cls(nx.star_graph(n - 1))

    @classmethod
    def balanced_tree(cls, branching: int, height: int) -> "Topology":
        return cls(nx.convert_node_labels_to_integers(nx.balanced_tree(branching, height)))

    @classmethod
    def random_tree(cls, n: int, seed: int = 0) -> "Topology":
        """A uniformly random labelled tree (Prüfer sequence)."""
        if n < 1:
            raise ValueError("need at least one broker")
        if n <= 2:
            return cls(nx.path_graph(n))
        rng = random.Random(seed)
        prufer = [rng.randrange(n) for _ in range(n - 2)]
        graph = nx.from_prufer_sequence(prufer)
        return cls(graph)

    @classmethod
    def random_connected(cls, n: int, extra_links: int, seed: int = 0) -> "Topology":
        """A random tree plus ``extra_links`` random chords (stays simple)."""
        base = cls.random_tree(n, seed)
        graph = nx.Graph(base.graph)
        rng = random.Random(seed + 1)
        attempts = 0
        added = 0
        while added < extra_links and attempts < 100 * (extra_links + 1):
            a, b = rng.randrange(n), rng.randrange(n)
            attempts += 1
            if a != b and not graph.has_edge(a, b):
                graph.add_edge(a, b)
                added += 1
        return cls(graph)

    def __repr__(self) -> str:
        return (
            f"Topology({self.num_brokers} brokers, {self.num_links} links, "
            f"max degree {self.max_degree})"
        )


def paper_example_tree() -> Topology:
    """The 13-broker tree of paper figure 7 (paper broker k = node k-1).

    Degrees: node 4 (paper broker 5) has the maximum degree 5; paper
    brokers 8 and 11 have degree 3; 2, 7 and 10 degree 2; the rest are
    leaves — reconstructed from the worked example in section 4.3.
    """
    paper_edges = [
        (1, 2),
        (2, 5),
        (3, 5),
        (4, 5),
        (5, 6),
        (5, 7),
        (7, 8),
        (8, 9),
        (8, 10),
        (10, 11),
        (11, 12),
        (11, 13),
    ]
    return Topology.from_edges((a - 1, b - 1) for a, b in paper_edges)
