"""A synchronous message-passing simulator for broker overlays.

All three systems (summary-based, Siena-style, broadcast baseline) run on
this substrate.  The model is deliberately simple — the paper's metrics
(bytes, hops, broker involvement, storage) are *counting* metrics, so a
round-based delivery model measures them exactly without needing timing:

* a broker handler is any object with ``receive(src, message) -> None``;
* ``send`` encodes the message once (charging real bytes times the overlay
  path length between the endpoints) and enqueues it;
* ``step`` delivers everything currently queued (one "round"); handlers may
  send more, which lands in the next round;
* ``run`` steps until the network is quiet.

Delivery within a round is ordered by (dst, sequence) so runs are
deterministic regardless of dict/hash ordering.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Protocol, Tuple

from repro.network.metrics import NetworkMetrics
from repro.network.topology import Topology
from repro.wire.messages import Message, MessageCodec

__all__ = ["Network", "BrokerHandler", "NetworkError"]


class NetworkError(RuntimeError):
    """Misuse of the simulated network (unknown broker, no handler, ...)."""


class BrokerHandler(Protocol):
    """What the network expects of an attached broker object."""

    def receive(self, src: int, message: Message) -> None:  # pragma: no cover
        ...


class Network:
    """The simulated overlay: topology + codec + metric accounting."""

    def __init__(
        self,
        topology: Topology,
        codec: Optional[MessageCodec] = None,
        metrics: Optional[NetworkMetrics] = None,
    ):
        self.topology = topology
        self.codec = codec
        self.metrics = metrics if metrics is not None else NetworkMetrics()
        self._handlers: Dict[int, BrokerHandler] = {}
        self._pending: List[Tuple[int, int, int, Message]] = []  # (dst, seq, src, msg)
        self._sequence = 0
        self.rounds_run = 0

    # -- wiring ------------------------------------------------------------------

    def attach(self, broker_id: int, handler: BrokerHandler) -> None:
        if broker_id not in self.topology.brokers:
            raise NetworkError(f"broker {broker_id} not in topology")
        if broker_id in self._handlers:
            raise NetworkError(f"broker {broker_id} already attached")
        self._handlers[broker_id] = handler

    def handler(self, broker_id: int) -> BrokerHandler:
        try:
            return self._handlers[broker_id]
        except KeyError:
            raise NetworkError(f"no handler attached for broker {broker_id}") from None

    # -- sending ------------------------------------------------------------------

    def send(self, src: int, dst: int, message: Message) -> None:
        """Queue a message for next-round delivery, charging its bytes."""
        if src not in self.topology.brokers or dst not in self.topology.brokers:
            raise NetworkError(f"send between unknown brokers {src} -> {dst}")
        if src == dst:
            raise NetworkError(f"broker {src} attempted to send to itself")
        size = self.codec.size(message) if self.codec is not None else 0
        path_length = self.topology.path_length(src, dst)
        self.metrics.record(src, dst, size, path_length)
        self._pending.append((dst, self._sequence, src, message))
        self._sequence += 1

    # -- delivery -----------------------------------------------------------------

    @property
    def has_pending(self) -> bool:
        return bool(self._pending)

    def step(self) -> int:
        """Deliver every currently queued message; return how many."""
        batch = sorted(self._pending)
        self._pending = []
        for dst, _seq, src, message in batch:
            self.handler(dst).receive(src, message)
        if batch:
            self.rounds_run += 1
        return len(batch)

    def flush_iteration(self) -> int:
        """Deliver everything already sent (used between Algorithm-2
        iterations).  Messages sent *during* these deliveries stay queued.
        The base (round) network does this in one step; the timed variant
        overrides it to drain its heap in timestamp order."""
        return self.step()

    def run(self, max_rounds: int = 10_000) -> int:
        """Step until quiet.  Returns rounds executed; raises if the
        message flow fails to quiesce (a routing loop)."""
        rounds = 0
        while self.has_pending:
            if rounds >= max_rounds:
                raise NetworkError(
                    f"network did not quiesce within {max_rounds} rounds "
                    f"({len(self._pending)} messages still pending)"
                )
            self.step()
            rounds += 1
        return rounds

    def __repr__(self) -> str:
        return (
            f"Network({self.topology!r}, {len(self._handlers)} handlers, "
            f"{len(self._pending)} pending)"
        )
