"""Multi-ISP federated overlays (paper section 6).

The conclusions point at "larger-scale networks (e.g., multi-ISP, global
CDNs)" as the next deployment target.  Structurally that is a *federation*:
several single-ISP backbones, each like the paper's 24-node overlay,
joined by a few inter-ISP peering links between designated gateway
brokers.

:func:`federate` builds exactly that — it relabels each member topology
into a disjoint id range, adds the peering links, and returns the combined
:class:`~repro.network.topology.Topology` plus a :class:`Federation`
descriptor mapping global broker ids back to (ISP, local id).  The
summary algorithms run unchanged on the federated overlay (that is the
point of the paper's remark that scaling up "basically only requires
changing the c3 field", i.e. widening the id space); the descriptor lets
experiments report intra- vs inter-ISP traffic separately.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.network.backbone import scale_free_backbone
from repro.network.topology import Topology

__all__ = ["Federation", "federate", "three_isp_federation"]


@dataclass(frozen=True)
class Federation:
    """Mapping between global broker ids and (isp, local id) pairs."""

    isp_ranges: Tuple[Tuple[int, int], ...]  # per ISP: (offset, size)
    peering_links: Tuple[Tuple[int, int], ...]  # global-id gateway pairs

    @property
    def num_isps(self) -> int:
        return len(self.isp_ranges)

    def isp_of(self, broker: int) -> int:
        for isp, (offset, size) in enumerate(self.isp_ranges):
            if offset <= broker < offset + size:
                return isp
        raise ValueError(f"broker {broker} not in any ISP range")

    def local_id(self, broker: int) -> int:
        offset, _size = self.isp_ranges[self.isp_of(broker)]
        return broker - offset

    def global_id(self, isp: int, local: int) -> int:
        offset, size = self.isp_ranges[isp]
        if not 0 <= local < size:
            raise ValueError(f"ISP {isp} has no broker {local}")
        return offset + local

    def brokers_of(self, isp: int) -> range:
        offset, size = self.isp_ranges[isp]
        return range(offset, offset + size)

    def is_inter_isp(self, a: int, b: int) -> bool:
        return self.isp_of(a) != self.isp_of(b)

    def gateways(self) -> List[int]:
        seen: Dict[int, None] = {}
        for a, b in self.peering_links:
            seen.setdefault(a)
            seen.setdefault(b)
        return sorted(seen)


def federate(
    members: Sequence[Topology],
    peering: Sequence[Tuple[Tuple[int, int], Tuple[int, int]]],
) -> Tuple[Topology, Federation]:
    """Join member topologies with peering links.

    ``peering`` entries are ``((isp_a, local_a), (isp_b, local_b))`` pairs
    naming the gateway brokers in member-local ids.  The federation must
    end up connected (Topology enforces it).
    """
    if not members:
        raise ValueError("a federation needs at least one member")
    ranges: List[Tuple[int, int]] = []
    offset = 0
    edges: List[Tuple[int, int]] = []
    for member in members:
        ranges.append((offset, member.num_brokers))
        edges.extend((offset + a, offset + b) for a, b in member.edges())
        offset += member.num_brokers
    links: List[Tuple[int, int]] = []
    for (isp_a, local_a), (isp_b, local_b) in peering:
        if isp_a == isp_b:
            raise ValueError("peering links must join different ISPs")
        for isp, local in ((isp_a, local_a), (isp_b, local_b)):
            if not 0 <= isp < len(members):
                raise ValueError(f"no ISP {isp} in the federation")
            if not 0 <= local < members[isp].num_brokers:
                raise ValueError(f"ISP {isp} has no broker {local}")
        link = (ranges[isp_a][0] + local_a, ranges[isp_b][0] + local_b)
        links.append(link)
        edges.append(link)
    topology = Topology.from_edges(edges)
    federation = Federation(
        isp_ranges=tuple(ranges), peering_links=tuple(links)
    )
    return topology, federation


def three_isp_federation(
    sizes: Tuple[int, int, int] = (16, 24, 12), seed: int = 0
) -> Tuple[Topology, Federation]:
    """A ready-made three-ISP global overlay (scale-free members, ring of
    peering links between each member's highest-degree broker)."""
    members = [
        scale_free_backbone(size, seed=seed + index)
        for index, size in enumerate(sizes)
    ]
    hubs = [
        max(member.brokers, key=lambda b, m=member: (m.degree(b), -b))
        for member in members
    ]
    peering = [
        ((0, hubs[0]), (1, hubs[1])),
        ((1, hubs[1]), (2, hubs[2])),
        ((2, hubs[2]), (0, hubs[0])),
    ]
    return federate(members, peering)
