"""Metric accounting for the evaluation (paper section 5).

The paper's primary metrics, and how we count them:

* **Network bandwidth** — "measured as the size (in bytes) a broker
  exchanges with all the others".  A message from ``src`` to ``dst`` is
  charged ``encoded_size x overlay_path_length(src, dst)`` bytes, so a
  direct (non-neighbor) send pays for every underlying link it crosses.
  This matches the baseline formula, which multiplies by the average
  broker-to-broker hop distance.
* **Hops** — "we count as one hop every message that is being sent from a
  broker to another (regardless of whether the two brokers are neighbors
  in the overlay)"; this counts *broker involvement*.  We record both this
  logical count (``hops``) and the underlying link traversals
  (``link_hops``) for completeness.
* **Storage** — accounted separately by the systems (summary/table sizes),
  not by the network layer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

__all__ = ["NetworkMetrics"]


@dataclass
class NetworkMetrics:
    """Mutable counters, one instance per measurement phase."""

    messages: int = 0
    hops: int = 0  # logical: one per broker-to-broker message
    link_hops: int = 0  # underlying overlay links traversed
    bytes_sent: int = 0  # size x path length, summed
    payload_bytes: int = 0  # size only, summed (path-independent)
    per_broker_sent: Dict[int, int] = field(default_factory=dict)
    per_broker_received: Dict[int, int] = field(default_factory=dict)
    per_broker_bytes: Dict[int, int] = field(default_factory=dict)
    #: (src, dst) -> bytes x path-length — lets federations and ablations
    #: classify traffic by endpoint pair (e.g. intra- vs inter-ISP).
    per_pair_bytes: Dict[Tuple[int, int], int] = field(default_factory=dict)

    def record(self, src: int, dst: int, size: int, path_length: int) -> None:
        if size < 0 or path_length < 0:
            raise ValueError("size and path length must be non-negative")
        self.messages += 1
        self.hops += 1
        self.link_hops += path_length
        self.bytes_sent += size * path_length
        self.payload_bytes += size
        self.per_broker_sent[src] = self.per_broker_sent.get(src, 0) + 1
        self.per_broker_received[dst] = self.per_broker_received.get(dst, 0) + 1
        self.per_broker_bytes[src] = self.per_broker_bytes.get(src, 0) + size * path_length
        pair = (src, dst)
        self.per_pair_bytes[pair] = self.per_pair_bytes.get(pair, 0) + size * path_length

    def merge(self, other: "NetworkMetrics") -> None:
        self.messages += other.messages
        self.hops += other.hops
        self.link_hops += other.link_hops
        self.bytes_sent += other.bytes_sent
        self.payload_bytes += other.payload_bytes
        for table_name in (
            "per_broker_sent",
            "per_broker_received",
            "per_broker_bytes",
            "per_pair_bytes",
        ):
            mine = getattr(self, table_name)
            for broker, count in getattr(other, table_name).items():
                mine[broker] = mine.get(broker, 0) + count

    def reset(self) -> None:
        self.messages = 0
        self.hops = 0
        self.link_hops = 0
        self.bytes_sent = 0
        self.payload_bytes = 0
        self.per_broker_sent.clear()
        self.per_broker_received.clear()
        self.per_broker_bytes.clear()
        self.per_pair_bytes.clear()

    def snapshot(self) -> Dict[str, int]:
        return {
            "messages": self.messages,
            "hops": self.hops,
            "link_hops": self.link_hops,
            "bytes_sent": self.bytes_sent,
            "payload_bytes": self.payload_bytes,
        }

    def __repr__(self) -> str:
        return (
            f"NetworkMetrics(messages={self.messages}, hops={self.hops}, "
            f"bytes={self.bytes_sent})"
        )
