"""Metric accounting for the evaluation (paper section 5).

The paper's primary metrics, and how we count them:

* **Network bandwidth** — "measured as the size (in bytes) a broker
  exchanges with all the others".  A message from ``src`` to ``dst`` is
  charged ``encoded_size x overlay_path_length(src, dst)`` bytes, so a
  direct (non-neighbor) send pays for every underlying link it crosses.
  This matches the baseline formula, which multiplies by the average
  broker-to-broker hop distance.
* **Hops** — "we count as one hop every message that is being sent from a
  broker to another (regardless of whether the two brokers are neighbors
  in the overlay)"; this counts *broker involvement*.  We record both this
  logical count (``hops``) and the underlying link traversals
  (``link_hops``) for completeness.
* **Storage** — accounted separately by the systems (summary/table sizes),
  not by the network layer.
* **Reliability overhead** — when the overlay runs on a
  :class:`~repro.network.reliable.ReliableNetwork`, ACKs and
  retransmissions are *also* counted in ``messages``/``bytes_sent`` (they
  really cross the wire) and additionally categorized in the
  ``acks``/``ack_bytes``/``retransmits``/``retransmit_bytes`` counters so
  figure-8/10-style bandwidth numbers can report how much of the traffic
  was spent buying at-least-once delivery.  ``send_failures`` counts
  transfers abandoned after the retry budget ran out.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

__all__ = ["NetworkMetrics"]


@dataclass
class NetworkMetrics:
    """Mutable counters, one instance per measurement phase."""

    messages: int = 0
    hops: int = 0  # logical: one per broker-to-broker message
    link_hops: int = 0  # underlying overlay links traversed
    bytes_sent: int = 0  # size x path length, summed
    payload_bytes: int = 0  # size only, summed (path-independent)
    per_broker_sent: Dict[int, int] = field(default_factory=dict)
    per_broker_received: Dict[int, int] = field(default_factory=dict)
    per_broker_bytes: Dict[int, int] = field(default_factory=dict)
    #: (src, dst) -> bytes x path-length — lets federations and ablations
    #: classify traffic by endpoint pair (e.g. intra- vs inter-ISP).
    per_pair_bytes: Dict[Tuple[int, int], int] = field(default_factory=dict)

    # -- reliability-layer categorization (subset of the totals above) --
    acks: int = 0  # ACK frames transmitted
    ack_bytes: int = 0  # size x path length of those ACKs
    retransmits: int = 0  # data frames re-sent after an ACK timeout
    retransmit_bytes: int = 0  # size x path length of the re-sends
    send_failures: int = 0  # transfers abandoned (retry budget exhausted)

    # -- live-runtime flow control (repro.runtime) --
    #: producer stalls: a send found its peer/session outbound queue full
    #: and had to block until the writer drained (bounded-queue
    #: backpressure doing its job — high counts mean a slow consumer).
    backpressure_stalls: int = 0
    #: socket writes issued by coalescing writer loops (one per drain).
    frame_writes: int = 0
    #: frames that rode those writes — ``coalesced_frames / frame_writes``
    #: is the frames-per-syscall ratio the batched hot path buys.
    coalesced_frames: int = 0
    #: dispatch batches pulled off inbound connections by the runtime.
    match_batches: int = 0
    #: EVENT frames matched inside those batches (``batched_events /
    #: match_batches`` is the average ``batch_size``).
    batched_events: int = 0

    def record(self, src: int, dst: int, size: int, path_length: int) -> None:
        if size < 0 or path_length < 0:
            raise ValueError("size and path length must be non-negative")
        self.messages += 1
        self.hops += 1
        self.link_hops += path_length
        self.bytes_sent += size * path_length
        self.payload_bytes += size
        self.per_broker_sent[src] = self.per_broker_sent.get(src, 0) + 1
        self.per_broker_received[dst] = self.per_broker_received.get(dst, 0) + 1
        self.per_broker_bytes[src] = self.per_broker_bytes.get(src, 0) + size * path_length
        pair = (src, dst)
        self.per_pair_bytes[pair] = self.per_pair_bytes.get(pair, 0) + size * path_length

    def record_ack(self, size: int, path_length: int) -> None:
        """Categorize one transmitted ACK (already charged via record())."""
        self.acks += 1
        self.ack_bytes += size * path_length

    def record_retransmit(self, size: int, path_length: int) -> None:
        """Categorize one retransmission (already charged via record())."""
        self.retransmits += 1
        self.retransmit_bytes += size * path_length

    def record_send_failure(self) -> None:
        self.send_failures += 1

    def record_stall(self) -> None:
        """Count one producer blocked on a full bounded outbound queue."""
        self.backpressure_stalls += 1

    def record_coalesced_write(self, frames: int) -> None:
        """Count one socket write carrying ``frames`` queued frames."""
        self.frame_writes += 1
        self.coalesced_frames += frames

    def record_match_batch(self, events: int) -> None:
        """Count one inbound dispatch batch of ``events`` EVENT frames."""
        self.match_batches += 1
        self.batched_events += events

    @property
    def batch_size(self) -> float:
        """Average EVENT frames matched per dispatch batch."""
        return self.batched_events / self.match_batches if self.match_batches else 0.0

    @property
    def reliability_bytes(self) -> int:
        """Total bytes spent on the reliability layer (ACKs + re-sends)."""
        return self.ack_bytes + self.retransmit_bytes

    def merge(self, other: "NetworkMetrics") -> None:
        self.messages += other.messages
        self.hops += other.hops
        self.link_hops += other.link_hops
        self.bytes_sent += other.bytes_sent
        self.payload_bytes += other.payload_bytes
        self.acks += other.acks
        self.ack_bytes += other.ack_bytes
        self.retransmits += other.retransmits
        self.retransmit_bytes += other.retransmit_bytes
        self.send_failures += other.send_failures
        self.backpressure_stalls += other.backpressure_stalls
        self.frame_writes += other.frame_writes
        self.coalesced_frames += other.coalesced_frames
        self.match_batches += other.match_batches
        self.batched_events += other.batched_events
        for table_name in (
            "per_broker_sent",
            "per_broker_received",
            "per_broker_bytes",
            "per_pair_bytes",
        ):
            mine = getattr(self, table_name)
            for broker, count in getattr(other, table_name).items():
                mine[broker] = mine.get(broker, 0) + count

    def reset(self) -> None:
        self.messages = 0
        self.hops = 0
        self.link_hops = 0
        self.bytes_sent = 0
        self.payload_bytes = 0
        self.acks = 0
        self.ack_bytes = 0
        self.retransmits = 0
        self.retransmit_bytes = 0
        self.send_failures = 0
        self.backpressure_stalls = 0
        self.frame_writes = 0
        self.coalesced_frames = 0
        self.match_batches = 0
        self.batched_events = 0
        self.per_broker_sent.clear()
        self.per_broker_received.clear()
        self.per_broker_bytes.clear()
        self.per_pair_bytes.clear()

    def contribute(self, registry, prefix: str) -> None:
        """Pour this ledger into a :class:`~repro.obs.metrics.MetricsRegistry`.

        Scalar totals become ``{prefix}.{field}`` counters; the per-broker /
        per-pair breakdowns stay out of the flat namespace (they live in the
        raw :meth:`snapshot` and the paper figures) but their cardinalities
        are exposed as gauges so a report can flag surprising fan-out.
        """
        for name, value in self.snapshot().items():
            registry.counter(f"{prefix}.{name}").inc(value)
        registry.gauge(f"{prefix}.active_senders").set(len(self.per_broker_sent))
        registry.gauge(f"{prefix}.active_pairs").set(len(self.per_pair_bytes))

    def snapshot(self) -> Dict[str, int]:
        return {
            "messages": self.messages,
            "hops": self.hops,
            "link_hops": self.link_hops,
            "bytes_sent": self.bytes_sent,
            "payload_bytes": self.payload_bytes,
            "acks": self.acks,
            "ack_bytes": self.ack_bytes,
            "retransmits": self.retransmits,
            "retransmit_bytes": self.retransmit_bytes,
            "send_failures": self.send_failures,
            "backpressure_stalls": self.backpressure_stalls,
            "frame_writes": self.frame_writes,
            "coalesced_frames": self.coalesced_frames,
            "match_batches": self.match_batches,
            "batched_events": self.batched_events,
        }

    def __repr__(self) -> str:
        reliability = ""
        if self.acks or self.retransmits or self.send_failures:
            reliability = (
                f", acks={self.acks}, retransmits={self.retransmits}, "
                f"failures={self.send_failures}"
            )
        return (
            f"NetworkMetrics(messages={self.messages}, hops={self.hops}, "
            f"bytes={self.bytes_sent}{reliability})"
        )
