"""Latency-aware network simulation.

The paper's metrics are counting metrics (bytes/hops), but its discussion
of routing alternatives explicitly trades "event processing time" against
load distribution (section 4.3) — a *time* claim.  This module adds the
substrate to measure it: a discrete-event variant of the simulator where
every message arrives after the sum of per-link delays along its overlay
path, and deliveries are processed in timestamp order.

* :class:`LatencyModel` assigns a delay to each overlay link.
  :class:`UniformLatency` gives every link the same delay;
  :class:`SeededLatency` draws per-link delays once from a seeded range
  (stable across the run, like real heterogeneous backbone links).
* :class:`TimedNetwork` is a drop-in :class:`~repro.network.simulator
  .Network`: same ``send``/``step``/``run``/metrics contract, but ``step``
  delivers the single earliest message and advances ``now``.

Because a direct (non-neighbor) send traverses the whole overlay path, it
costs the full path latency — the BROCLI router's long jumps are therefore
properly penalized in time even though they count as one logical hop.
"""

from __future__ import annotations

import heapq
import random
from typing import Dict, List, Optional, Tuple

from repro.network.metrics import NetworkMetrics
from repro.network.simulator import Network, NetworkError
from repro.network.topology import Topology
from repro.wire.messages import Message, MessageCodec

__all__ = ["LatencyModel", "UniformLatency", "SeededLatency", "TimedNetwork"]


class LatencyModel:
    """Per-link one-way delays (milliseconds)."""

    def link_delay(self, a: int, b: int) -> float:  # pragma: no cover - interface
        raise NotImplementedError

    def path_delay(self, topology: Topology, src: int, dst: int) -> float:
        """Sum of link delays along a shortest overlay path."""
        if src == dst:
            return 0.0
        import networkx as nx

        path = nx.shortest_path(topology.graph, src, dst)
        return sum(
            self.link_delay(a, b) for a, b in zip(path, path[1:])
        )


class UniformLatency(LatencyModel):
    """Every overlay link has the same one-way delay."""

    def __init__(self, milliseconds: float = 10.0):
        if milliseconds <= 0:
            raise ValueError("link delay must be positive")
        self.milliseconds = milliseconds

    def link_delay(self, a: int, b: int) -> float:
        return self.milliseconds


class SeededLatency(LatencyModel):
    """Per-link delays drawn once from [lo, hi], stable under the seed."""

    def __init__(self, lo: float = 2.0, hi: float = 40.0, seed: int = 0):
        if not 0 < lo <= hi:
            raise ValueError("need 0 < lo <= hi")
        self.lo = lo
        self.hi = hi
        self._seed = seed
        self._delays: Dict[Tuple[int, int], float] = {}

    def link_delay(self, a: int, b: int) -> float:
        key = (a, b) if a <= b else (b, a)
        delay = self._delays.get(key)
        if delay is None:
            rng = random.Random(f"{self._seed}:{key[0]}:{key[1]}")
            delay = self._delays[key] = rng.uniform(self.lo, self.hi)
        return delay


class TimedNetwork(Network):
    """A :class:`Network` whose deliveries happen in timestamp order.

    ``now`` is the simulation clock (ms); it advances to each message's
    arrival time as the message is delivered.  Byte/hop accounting is
    identical to the base class.
    """

    def __init__(
        self,
        topology: Topology,
        codec: Optional[MessageCodec] = None,
        metrics: Optional[NetworkMetrics] = None,
        latency: Optional[LatencyModel] = None,
    ):
        super().__init__(topology, codec, metrics)
        self.latency = latency if latency is not None else UniformLatency()
        self.now = 0.0
        self._heap: List[Tuple[float, int, int, int, Message]] = []
        # (arrival, seq, dst, src, message)

    # -- sending ------------------------------------------------------------------

    def send(self, src: int, dst: int, message: Message) -> None:
        if src not in self.topology.brokers or dst not in self.topology.brokers:
            raise NetworkError(f"send between unknown brokers {src} -> {dst}")
        if src == dst:
            raise NetworkError(f"broker {src} attempted to send to itself")
        size = self.codec.size(message) if self.codec is not None else 0
        path_length = self.topology.path_length(src, dst)
        self.metrics.record(src, dst, size, path_length)
        arrival = self.now + self.latency.path_delay(self.topology, src, dst)
        heapq.heappush(self._heap, (arrival, self._sequence, dst, src, message))
        self._sequence += 1

    # -- delivery -----------------------------------------------------------------

    @property
    def has_pending(self) -> bool:
        return bool(self._heap)

    def step(self) -> int:
        """Deliver the earliest pending message (0 or 1), advancing time."""
        if not self._heap:
            return 0
        arrival, _seq, dst, src, message = heapq.heappop(self._heap)
        self.now = max(self.now, arrival)
        self.handler(dst).receive(src, message)
        self.rounds_run += 1
        return 1

    def flush_iteration(self) -> int:
        """Drain every pending message (propagation-iteration barrier)."""
        return self.run()

    def run(self, max_rounds: int = 1_000_000) -> int:
        deliveries = 0
        while self.has_pending:
            if deliveries >= max_rounds:
                raise NetworkError(
                    f"network did not quiesce within {max_rounds} deliveries"
                )
            self.step()
            deliveries += 1
        return deliveries

    def reset_clock(self) -> None:
        """Restart time (between measured operations)."""
        if self.has_pending:
            raise NetworkError("cannot reset the clock with messages in flight")
        self.now = 0.0
