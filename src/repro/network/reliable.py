"""Reliable at-least-once delivery over an unreliable transport.

The paper (like Siena) simply *assumes* reliable broker-to-broker
channels; :mod:`repro.network.faults` quantifies what breaks when the
assumption fails.  This module supplies the missing fault *tolerance*:
:class:`ReliableNetwork` wraps any :class:`~repro.network.simulator
.Network` (most usefully a :class:`~repro.network.faults.LossyNetwork`)
and layers a classic positive-ACK / timeout-retransmit protocol on top.

Protocol
--------

* Every application ``send`` is framed as a
  :class:`~repro.wire.messages.ReliableDataMessage` carrying a fresh
  ``transfer_id`` (the varint id is the real per-message header cost, and
  is charged in encoded bytes like all traffic).
* The receiving endpoint immediately answers with an
  :class:`~repro.wire.messages.AckMessage` for that id, then hands the
  unwrapped payload to the attached broker handler.  ACKs are
  fire-and-forget: a lost ACK is repaired by the *sender's* timer, never
  by acking the ACK.
* The sender keeps the frame in an outstanding table; if no ACK arrives
  within the timeout (measured in simulator rounds) it retransmits, with
  an exponential backoff schedule, up to :class:`RetryPolicy.retries`
  times.  After the budget is exhausted the transfer is dropped and every
  registered *failure listener* is told ``(src, dst, payload)`` — this is
  the hook :class:`~repro.broker.routing.EventRouter` uses to re-route a
  severed BROCLI search around the unreachable broker.

Semantics: **at-least-once**.  When the data frame arrives but its ACK is
lost, the retransmission delivers the payload a second time; upper layers
must therefore be idempotent or de-duplicate.  In this codebase summary
merging is idempotent and the event path de-duplicates on ``publish_id``
(:meth:`SummaryBroker.first_routing_of` / :meth:`SummaryBroker.deliver`),
so consumers still see every event exactly once — asserted by
``tests/experiments/test_delivery_ratio.py``.

Byte accounting is honest end to end: the wrapped inner network charges
the framed size of every (re)transmission and every ACK into the shared
:class:`~repro.network.metrics.NetworkMetrics`; the reliability layer
additionally categorizes that traffic via ``record_ack`` /
``record_retransmit`` so experiments can report the overhead line item.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.network.metrics import NetworkMetrics
from repro.network.simulator import Network, NetworkError
from repro.network.topology import Topology
from repro.wire.messages import (
    AckMessage,
    Message,
    MessageCodec,
    ReliableDataMessage,
)

__all__ = ["ReliableNetwork", "RetryPolicy", "FailureListener"]

#: Called when a transfer is abandoned: ``(src, dst, payload_message)``.
FailureListener = Callable[[int, int, Message], None]


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded-retransmission schedule, expressed in simulator rounds.

    ``retries`` counts *re*-transmissions (0 = send once, never retry).
    The n-th wait is ``timeout_rounds * backoff**n`` rounds, rounded.  The
    synchronous simulator's ACK round-trip is exactly two rounds (data
    delivered in round r+1, ACK in r+2), so ``timeout_rounds=2`` is the
    tightest setting that never retransmits on a healthy link; the
    default of 4 leaves comfortable headroom.
    """

    retries: int = 3
    timeout_rounds: int = 4
    backoff: float = 2.0

    def __post_init__(self) -> None:
        if self.retries < 0:
            raise ValueError("retries must be non-negative")
        if self.timeout_rounds < 1:
            raise ValueError("timeout must be at least one round")
        if self.backoff < 1.0:
            raise ValueError("backoff multiplier must be >= 1")

    def timeout_for(self, attempt: int) -> int:
        """Rounds to wait after the given 0-based transmission attempt."""
        return max(1, int(round(self.timeout_rounds * self.backoff**attempt)))

    def schedule(self) -> List[int]:
        """The full wait schedule, one entry per transmission."""
        return [self.timeout_for(attempt) for attempt in range(self.retries + 1)]


class _Transfer:
    """One in-flight reliable send awaiting its ACK."""

    __slots__ = ("src", "dst", "frame", "attempts", "deadline")

    def __init__(self, src: int, dst: int, frame: ReliableDataMessage, deadline: int):
        self.src = src
        self.dst = dst
        self.frame = frame
        self.attempts = 0  # retransmissions performed so far
        self.deadline = deadline


class _Endpoint:
    """Inner-network handler: acks data frames, unwraps, passes through."""

    __slots__ = ("_network", "_broker_id")

    def __init__(self, network: "ReliableNetwork", broker_id: int):
        self._network = network
        self._broker_id = broker_id

    def receive(self, src: int, message: Message) -> None:
        net = self._network
        if isinstance(message, AckMessage):
            net._handle_ack(message)
            return
        if isinstance(message, ReliableDataMessage):
            net._handle_data(self._broker_id, src, message)
            return
        # Unframed traffic (something bypassed the reliable layer and used
        # the inner network directly) — deliver as-is.
        net.handler(self._broker_id).receive(src, message)


class ReliableNetwork(Network):
    """ACK/retransmit reliability layered over any round-based network.

    Construction mirrors :class:`Network` so it drops into
    ``SummaryPubSub(network_cls=ReliableNetwork, network_options=...)``::

        net = ReliableNetwork(
            topology, codec,
            inner_cls=LossyNetwork,
            inner_options={"drop_probability": 0.05, "seed": 7},
            policy=RetryPolicy(retries=3),
        )

    or wraps an existing transport in place::

        net = ReliableNetwork.wrap(lossy, policy=RetryPolicy(retries=1))

    The wrapper and the inner transport share one metrics object (the
    ``metrics`` property delegates), so phase switching by the system
    facade meters reliability traffic into the correct phase.
    """

    def __init__(
        self,
        topology: Optional[Topology] = None,
        codec: Optional[MessageCodec] = None,
        metrics: Optional[NetworkMetrics] = None,
        *,
        inner: Optional[Network] = None,
        inner_cls: Optional[type] = None,
        inner_options: Optional[Dict] = None,
        policy: Optional[RetryPolicy] = None,
        retries: Optional[int] = None,
        timeout_rounds: Optional[int] = None,
        backoff: Optional[float] = None,
    ):
        if inner is not None:
            if inner_cls is not None or inner_options is not None:
                raise ValueError("pass either inner or inner_cls, not both")
            if isinstance(inner, ReliableNetwork):
                raise ValueError("refusing to stack reliability layers")
        else:
            if topology is None:
                raise ValueError("need a topology (or an inner network)")
            inner = (inner_cls or Network)(
                topology, codec, metrics, **(inner_options or {})
            )
        if policy is None:
            overrides = {
                name: value
                for name, value in (
                    ("retries", retries),
                    ("timeout_rounds", timeout_rounds),
                    ("backoff", backoff),
                )
                if value is not None
            }
            policy = RetryPolicy(**overrides)
        elif retries is not None or timeout_rounds is not None or backoff is not None:
            raise ValueError("pass either policy or its individual fields, not both")
        self.inner = inner
        self.policy = policy
        super().__init__(inner.topology, inner.codec, inner.metrics)
        self._round = 0
        self._next_transfer_id = 1
        self._outstanding: Dict[int, _Transfer] = {}
        self._failure_listeners: List[FailureListener] = []

    @classmethod
    def wrap(cls, inner: Network, policy: Optional[RetryPolicy] = None, **kwargs):
        """Layer reliability over an already-constructed transport."""
        return cls(inner=inner, policy=policy, **kwargs)

    # -- shared metrics ---------------------------------------------------------

    @property
    def metrics(self) -> NetworkMetrics:
        return self.inner.metrics

    @metrics.setter
    def metrics(self, value: NetworkMetrics) -> None:
        self.inner.metrics = value

    # -- wiring ------------------------------------------------------------------

    def attach(self, broker_id: int, handler) -> None:
        super().attach(broker_id, handler)
        self.inner.attach(broker_id, _Endpoint(self, broker_id))

    def add_failure_listener(self, listener: FailureListener) -> None:
        """Register a callback for transfers that exhaust their retries."""
        self._failure_listeners.append(listener)

    # -- sending ------------------------------------------------------------------

    def send(self, src: int, dst: int, message: Message) -> None:
        if isinstance(message, (AckMessage, ReliableDataMessage)):
            raise NetworkError("reliability frames are transport-internal")
        transfer_id = self._next_transfer_id
        self._next_transfer_id += 1
        frame = ReliableDataMessage(transfer_id=transfer_id, payload=message)
        self.inner.send(src, dst, frame)  # validates endpoints, charges bytes
        self._outstanding[transfer_id] = _Transfer(
            src, dst, frame, deadline=self._round + self.policy.timeout_for(0)
        )

    # -- receiving (called by _Endpoint during inner delivery) ---------------------

    def _handle_ack(self, ack: AckMessage) -> None:
        # Late or duplicated ACKs find nothing outstanding; that's fine.
        self._outstanding.pop(ack.transfer_id, None)

    def _handle_data(self, dst: int, src: int, frame: ReliableDataMessage) -> None:
        ack = AckMessage(transfer_id=frame.transfer_id)
        self.inner.send(dst, src, ack)
        self.metrics.record_ack(
            self.codec.size(ack) if self.codec is not None else 0,
            self.topology.path_length(dst, src),
        )
        # Duplicated frames (lossy duplication, or a retransmission racing
        # a lost ACK) are delivered again on purpose: at-least-once.  The
        # broker layer de-duplicates on publish id.
        self.handler(dst).receive(src, frame.payload)

    # -- delivery & timers ---------------------------------------------------------

    @property
    def has_pending(self) -> bool:
        return self.inner.has_pending or bool(self._outstanding)

    def step(self) -> int:
        """One round: deliver the inner batch, then service ACK timers.

        The round counter advances *before* delivery so that sends made
        inside receive handlers (the serial BROCLI chain re-forwarding an
        event, a broker acking a summary) are stamped with the round they
        were initiated in.  That makes the ACK round-trip a uniform two
        rounds for top-level and handler-initiated sends alike — with the
        counter advanced after delivery, chained sends aged one round at
        birth and any ``timeout_rounds <= 2`` retransmitted spuriously on
        perfectly healthy links.
        """
        self._round += 1
        self.rounds_run = self._round
        delivered = self.inner.step()
        self._service_timers()
        return delivered

    def _service_timers(self) -> None:
        expired = [
            transfer
            for transfer in self._outstanding.values()
            if transfer.deadline <= self._round
        ]
        for transfer in expired:
            if transfer.attempts < self.policy.retries:
                transfer.attempts += 1
                transfer.deadline = self._round + self.policy.timeout_for(
                    transfer.attempts
                )
                self.inner.send(transfer.src, transfer.dst, transfer.frame)
                self.metrics.record_retransmit(
                    self.codec.size(transfer.frame) if self.codec is not None else 0,
                    self.topology.path_length(transfer.src, transfer.dst),
                )
            else:
                del self._outstanding[transfer.frame.transfer_id]
                self.metrics.record_send_failure()
                for listener in self._failure_listeners:
                    listener(transfer.src, transfer.dst, transfer.frame.payload)

    def flush_iteration(self) -> int:
        """Propagation-iteration barrier: run until every transfer resolves.

        Algorithm 2's period must not end with summaries still in retry
        limbo (a late retransmission landing after ``finish_period`` would
        arrive outside any period), so the reliable barrier drains fully —
        same contract as :class:`TimedNetwork.flush_iteration`.
        """
        return self.run()

    def run(self, max_rounds: int = 100_000) -> int:
        """Step until quiet *and* no transfer is awaiting an ACK/retry."""
        rounds = 0
        while self.has_pending:
            if rounds >= max_rounds:
                raise NetworkError(
                    f"reliable network did not quiesce within {max_rounds} rounds "
                    f"({len(self._outstanding)} transfers outstanding)"
                )
            self.step()
            rounds += 1
        return rounds

    @property
    def outstanding_transfers(self) -> int:
        """Transfers currently awaiting an ACK (observability hook)."""
        return len(self._outstanding)

    def __repr__(self) -> str:
        return (
            f"ReliableNetwork({self.inner!r}, policy={self.policy}, "
            f"{len(self._outstanding)} outstanding)"
        )
