"""Interval algebra for arithmetic constraint summaries.

An AACS row is a value sub-range (paper figure 4).  This module provides the
underlying interval type with open/closed endpoints and +/-infinity bounds,
plus :class:`IntervalSet` (a sorted disjoint union) and the translation from
constraint conjunctions to intervals:

* ``price > 8.30 AND price < 8.70``  ->  ``(8.30, 8.70)``
* ``price = 8.20``                   ->  the point ``[8.20, 8.20]``
* ``price != 5``                     ->  ``(-inf, 5) U (5, +inf)``

The paper's AACS stores closed ``[min, max]`` rows; we keep endpoint
openness so the EXACT precision mode is truly exact, while COARSE mode may
widen at boundaries (a permitted false positive).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.model.constraints import Constraint, Operator

__all__ = [
    "Interval",
    "IntervalSet",
    "FULL_LINE",
    "interval_for_constraint",
    "intervals_for_conjunction",
]


@dataclass(frozen=True)
class Interval:
    """A non-empty real interval with optionally open endpoints."""

    lo: float
    hi: float
    lo_open: bool = False
    hi_open: bool = False

    def __post_init__(self) -> None:
        if math.isnan(self.lo) or math.isnan(self.hi):
            raise ValueError("interval bounds cannot be NaN")
        if self.lo > self.hi:
            raise ValueError(f"empty interval: lo={self.lo} > hi={self.hi}")
        if self.lo == self.hi and (self.lo_open or self.hi_open):
            raise ValueError("a point interval must be closed on both ends")
        if math.isinf(self.lo) and self.lo > 0:
            raise ValueError("lo cannot be +inf")
        if math.isinf(self.hi) and self.hi < 0:
            raise ValueError("hi cannot be -inf")
        # An infinite endpoint is necessarily open.
        if math.isinf(self.lo) and not self.lo_open:
            object.__setattr__(self, "lo_open", True)
        if math.isinf(self.hi) and not self.hi_open:
            object.__setattr__(self, "hi_open", True)

    # -- predicates --------------------------------------------------------

    @property
    def is_point(self) -> bool:
        return self.lo == self.hi

    @property
    def is_bounded(self) -> bool:
        return not (math.isinf(self.lo) or math.isinf(self.hi))

    def contains(self, value: float) -> bool:
        if value < self.lo or value > self.hi:
            return False
        if value == self.lo and self.lo_open:
            return False
        if value == self.hi and self.hi_open:
            return False
        return True

    def contains_interval(self, other: "Interval") -> bool:
        lo_ok = other.lo > self.lo or (
            other.lo == self.lo and (not self.lo_open or other.lo_open)
        )
        hi_ok = other.hi < self.hi or (
            other.hi == self.hi and (not self.hi_open or other.hi_open)
        )
        return lo_ok and hi_ok

    def overlaps(self, other: "Interval") -> bool:
        """Whether the two intervals share at least one point."""
        if self.hi < other.lo or other.hi < self.lo:
            return False
        if self.hi == other.lo:
            return not (self.hi_open or other.lo_open)
        if other.hi == self.lo:
            return not (other.hi_open or self.lo_open)
        return True

    def touches(self, other: "Interval") -> bool:
        """Whether the union of the two intervals is itself an interval."""
        if self.overlaps(other):
            return True
        # Adjacent with exactly one open endpoint at the junction, e.g.
        # [1, 2) followed by [2, 3]: union is [1, 3].
        if self.hi == other.lo and (self.hi_open != other.lo_open):
            return True
        if other.hi == self.lo and (other.hi_open != self.lo_open):
            return True
        return False

    # -- operations ---------------------------------------------------------

    def intersect(self, other: "Interval") -> Optional["Interval"]:
        lo, lo_open = max(
            (self.lo, self.lo_open), (other.lo, other.lo_open), key=_lo_key
        )
        hi, hi_open = min(
            (self.hi, self.hi_open), (other.hi, other.hi_open), key=_hi_key
        )
        if lo > hi or (lo == hi and (lo_open or hi_open)):
            return None
        return Interval(lo, hi, lo_open, hi_open)

    def union_with(self, other: "Interval") -> "Interval":
        """Union of two touching intervals (raises if the union has a gap)."""
        if not self.touches(other):
            raise ValueError(f"union of {self} and {other} is not an interval")
        return self.hull(other)

    def hull(self, other: "Interval") -> "Interval":
        """Smallest interval containing both (may cover a gap)."""
        lo, lo_open = min(
            (self.lo, self.lo_open), (other.lo, other.lo_open), key=_lo_key
        )
        hi, hi_open = max(
            (self.hi, self.hi_open), (other.hi, other.hi_open), key=_hi_key
        )
        return Interval(lo, hi, lo_open, hi_open)

    def subtract(self, other: "Interval") -> List["Interval"]:
        """The parts of ``self`` not covered by ``other`` (0, 1 or 2 pieces)."""
        shared = self.intersect(other)
        if shared is None:
            return [self]
        pieces: List[Interval] = []
        left = Interval._maybe(self.lo, shared.lo, self.lo_open, not shared.lo_open)
        if left is not None:
            pieces.append(left)
        right = Interval._maybe(shared.hi, self.hi, not shared.hi_open, self.hi_open)
        if right is not None:
            pieces.append(right)
        return pieces

    @staticmethod
    def _maybe(lo: float, hi: float, lo_open: bool, hi_open: bool) -> Optional["Interval"]:
        if lo > hi or (lo == hi and (lo_open or hi_open)):
            return None
        return Interval(lo, hi, lo_open, hi_open)

    @classmethod
    def point(cls, value: float) -> "Interval":
        return cls(value, value, False, False)

    def __str__(self) -> str:
        left = "(" if self.lo_open else "["
        right = ")" if self.hi_open else "]"
        return f"{left}{self.lo}, {self.hi}{right}"


def _lo_key(pair: Tuple[float, bool]) -> Tuple[float, int]:
    value, is_open = pair
    # For lower bounds, open is "larger" (starts later) at equal values.
    return (value, 1 if is_open else 0)


def _hi_key(pair: Tuple[float, bool]) -> Tuple[float, int]:
    value, is_open = pair
    # For upper bounds, open is "smaller" (ends earlier) at equal values.
    return (value, 0 if is_open else 1)


FULL_LINE = Interval(-math.inf, math.inf, True, True)


class IntervalSet:
    """A union of disjoint, sorted, non-touching intervals."""

    __slots__ = ("_intervals",)

    def __init__(self, intervals: Iterable[Interval] = ()):
        self._intervals: List[Interval] = []
        for interval in intervals:
            self.add(interval)

    @classmethod
    def full(cls) -> "IntervalSet":
        return cls([FULL_LINE])

    @property
    def intervals(self) -> Sequence[Interval]:
        return tuple(self._intervals)

    @property
    def is_empty(self) -> bool:
        return not self._intervals

    def __len__(self) -> int:
        return len(self._intervals)

    def __iter__(self):
        return iter(self._intervals)

    def contains(self, value: float) -> bool:
        return any(interval.contains(value) for interval in self._intervals)

    def add(self, interval: Interval) -> None:
        """Insert, merging with any touching members to stay canonical."""
        merged = interval
        keep: List[Interval] = []
        for existing in self._intervals:
            if existing.touches(merged):
                merged = existing.union_with(merged)
            else:
                keep.append(existing)
        keep.append(merged)
        keep.sort(key=lambda iv: (iv.lo, iv.lo_open))
        self._intervals = keep

    def intersect(self, other: "IntervalSet") -> "IntervalSet":
        result = IntervalSet()
        for a in self._intervals:
            for b in other._intervals:
                shared = a.intersect(b)
                if shared is not None:
                    result.add(shared)
        return result

    def covers_set(self, other: "IntervalSet") -> bool:
        """Whether every value in ``other`` is also in ``self``.

        Members of a canonical set are non-touching, so an interval of
        ``other`` lying inside ``self``'s union must lie inside a single
        member — making the check a pairwise containment scan.
        """
        return all(
            any(mine.contains_interval(theirs) for mine in self._intervals)
            for theirs in other
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, IntervalSet):
            return NotImplemented
        return self._intervals == other._intervals

    def __repr__(self) -> str:
        return " U ".join(str(iv) for iv in self._intervals) or "{}"


def interval_for_constraint(constraint: Constraint) -> IntervalSet:
    """The set of values satisfying one arithmetic constraint."""
    op = constraint.operator
    value = float(constraint.value)  # type: ignore[arg-type]
    if op is Operator.EQ:
        return IntervalSet([Interval.point(value)])
    if op is Operator.NE:
        return IntervalSet(
            [
                Interval(-math.inf, value, True, True),
                Interval(value, math.inf, True, True),
            ]
        )
    if op is Operator.LT:
        return IntervalSet([Interval(-math.inf, value, True, True)])
    if op is Operator.LE:
        return IntervalSet([Interval(-math.inf, value, True, False)])
    if op is Operator.GT:
        return IntervalSet([Interval(value, math.inf, True, True)])
    if op is Operator.GE:
        return IntervalSet([Interval(value, math.inf, False, True)])
    raise ValueError(f"not an arithmetic operator: {op!r}")


def intervals_for_conjunction(constraints: Iterable[Constraint]) -> IntervalSet:
    """Values satisfying *all* given constraints on one attribute.

    This is how ``price > 8.30 AND price < 8.70`` becomes the single AACS
    sub-range of paper figure 4.  The result may be empty (contradictory
    constraints), a point (pure equality), several pieces (NE present), or
    unbounded rays.
    """
    result = IntervalSet.full()
    for constraint in constraints:
        result = result.intersect(interval_for_constraint(constraint))
        if result.is_empty:
            break
    return result
