"""Subscription summaries — the paper's core contribution (sections 3-4.1).

Exports the AACS/SACS structures, the interval and pattern algebras they
build on, the :class:`BrokerSummary` facade, Algorithm-1 matching, and the
maintenance layer (stores, rebuilds, exact re-check).
"""

from repro.summary.aacs import AACS, RangeRow
from repro.summary.compiled import CompiledMatcher, CompiledStats
from repro.summary.intervals import (
    FULL_LINE,
    Interval,
    IntervalSet,
    interval_for_constraint,
    intervals_for_conjunction,
)
from repro.summary.maintenance import MaintainedSummary, SubscriptionStore
from repro.summary.matching import (
    MatchDetails,
    NaiveMatcher,
    match_event,
    match_event_detailed,
)
from repro.summary.patterns import (
    ConjunctionPattern,
    GlobPattern,
    NotEqualsPattern,
    StringPattern,
    pattern_for_constraint,
    pattern_hull,
    patterns_disjoint,
)
from repro.summary.precision import Precision
from repro.summary.sacs import SACS, PatternRow
from repro.summary.summary import BrokerSummary, SummaryStats

__all__ = [
    "AACS",
    "FULL_LINE",
    "BrokerSummary",
    "CompiledMatcher",
    "CompiledStats",
    "ConjunctionPattern",
    "GlobPattern",
    "Interval",
    "IntervalSet",
    "MaintainedSummary",
    "MatchDetails",
    "NaiveMatcher",
    "NotEqualsPattern",
    "PatternRow",
    "Precision",
    "RangeRow",
    "SACS",
    "StringPattern",
    "SubscriptionStore",
    "SummaryStats",
    "interval_for_constraint",
    "intervals_for_conjunction",
    "match_event",
    "match_event_detailed",
    "pattern_for_constraint",
    "pattern_hull",
    "patterns_disjoint",
]
