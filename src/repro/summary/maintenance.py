"""Summary maintenance: subscription stores, id allocation, and rebuilds.

The paper notes that maintaining summaries in the face of updates is part of
the design ("algorithms ... for the maintenance of subscriptions in the face
of updates") but omits details for space.  Our engineering choices, stated
explicitly:

* Every broker keeps its *own* clients' raw subscriptions in a
  :class:`SubscriptionStore` — these never leave the broker, so the
  summary-centric bandwidth/storage benefits are untouched.  The store is
  what allocates the ``c2`` local ids and performs the exact re-check that
  makes COARSE summaries safe end-to-end.
* Unsubscription removes the id from every summary row immediately
  (cheap, keeps matching correct) but does not re-narrow generalized rows —
  a COARSE row cannot remember which boundary belonged to whom.
  :class:`MaintainedSummary` therefore tracks removals and rebuilds the
  summary from the store once enough garbage accumulates, restoring the
  compaction level a fresh summary would have.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Optional, Set, Tuple

from repro.model.events import Event
from repro.model.ids import SubscriptionId
from repro.model.schema import Schema
from repro.model.subscriptions import Subscription
from repro.summary.precision import Precision
from repro.summary.summary import BrokerSummary

__all__ = ["IdSpaceExhausted", "SubscriptionStore", "MaintainedSummary"]


class IdSpaceExhausted(RuntimeError):
    """The broker's ``c2`` id space is used up.

    Raised *at subscribe time* when a store configured with
    ``max_subscriptions`` would mint a local id the deployment's
    :class:`~repro.model.ids.IdCodec` cannot encode.  Without the cap the
    overflow only surfaced as a ``ValueError`` from ``IdCodec.pack`` deep
    inside the next propagation period — long after the client believed
    its subscription was accepted.
    """


class SubscriptionStore:
    """A broker's raw subscription table with ``c2`` id allocation.

    ``max_subscriptions`` (optional) caps the id *counter*, mirroring the
    codec's ``c2`` field width: ids are never reused, so the cap limits
    total mints, not concurrent live subscriptions — exactly the wire
    format's constraint.
    """

    def __init__(
        self,
        schema: Schema,
        broker_id: int,
        max_subscriptions: Optional[int] = None,
    ):
        if broker_id < 0:
            raise ValueError("broker id must be non-negative")
        if max_subscriptions is not None and max_subscriptions < 1:
            raise ValueError("max_subscriptions must be positive when given")
        self.schema = schema
        self.broker_id = broker_id
        self.max_subscriptions = max_subscriptions
        self._subscriptions: Dict[SubscriptionId, Subscription] = {}
        self._next_local_id = 0

    # -- membership ----------------------------------------------------------

    def _check_capacity(self, local_id: int) -> None:
        if self.max_subscriptions is not None and local_id >= self.max_subscriptions:
            raise IdSpaceExhausted(
                f"broker {self.broker_id} has minted all "
                f"{self.max_subscriptions} local subscription ids the "
                f"deployment's id codec can encode (c2 space exhausted); "
                f"ids are never reused, so this counts total subscribes, "
                f"not live subscriptions"
            )

    def subscribe(self, subscription: Subscription) -> SubscriptionId:
        """Store a subscription and mint its (c1, c2, c3) id.

        Raises :class:`IdSpaceExhausted` (not a deep codec error at
        wire-encode time) when the configured ``c2`` space is used up.
        """
        self.schema.validate_subscription(subscription)
        self._check_capacity(self._next_local_id)
        sid = SubscriptionId(
            broker=self.broker_id,
            local_id=self._next_local_id,
            attr_mask=self.schema.mask_of(subscription),
        )
        self._next_local_id += 1
        self._subscriptions[sid] = subscription
        return sid

    def unsubscribe(self, sid: SubscriptionId) -> Optional[Subscription]:
        return self._subscriptions.pop(sid, None)

    @property
    def next_local_id(self) -> int:
        """The next ``c2`` value to be minted (snapshot/restore support)."""
        return self._next_local_id

    def restore(self, sid: SubscriptionId, subscription: Subscription) -> None:
        """Re-insert a previously-minted entry (snapshot restore).

        The id counter advances past the restored id so future mints can
        never collide with it.
        """
        if sid.broker != self.broker_id:
            raise ValueError(
                f"cannot restore {sid} into broker {self.broker_id}'s store"
            )
        if sid in self._subscriptions:
            raise ValueError(f"duplicate restore of {sid}")
        self.schema.validate_subscription(subscription)
        self._check_capacity(sid.local_id)
        self._subscriptions[sid] = subscription
        self._next_local_id = max(self._next_local_id, sid.local_id + 1)

    def advance_watermark(self, next_local_id: int) -> None:
        """Ensure future mints start at or beyond ``next_local_id`` —
        restores a snapshot's counter even when trailing ids were
        unsubscribed before the snapshot."""
        self._next_local_id = max(self._next_local_id, next_local_id)

    def get(self, sid: SubscriptionId) -> Optional[Subscription]:
        return self._subscriptions.get(sid)

    def __len__(self) -> int:
        return len(self._subscriptions)

    def __contains__(self, sid: SubscriptionId) -> bool:
        return sid in self._subscriptions

    def items(self) -> Iterator[Tuple[SubscriptionId, Subscription]]:
        return iter(self._subscriptions.items())

    def ids(self) -> Set[SubscriptionId]:
        return set(self._subscriptions)

    # -- summary interop --------------------------------------------------------

    def build_summary(self, precision: Precision = Precision.COARSE) -> BrokerSummary:
        """A fresh summary of everything currently stored."""
        summary = BrokerSummary(self.schema, precision)
        for sid, subscription in self._subscriptions.items():
            summary.add(subscription, sid)
        return summary

    def recheck(self, event: Event, candidates: Iterable[SubscriptionId]) -> Set[SubscriptionId]:
        """Exact re-check of summary-matched ids against raw subscriptions.

        Filters the false positives a COARSE summary may produce, and also
        drops ids whose subscription has since been removed.  Only ids owned
        by this broker can be checked; foreign ids are rejected loudly —
        receiving one indicates a routing bug.
        """
        confirmed: Set[SubscriptionId] = set()
        for sid in candidates:
            if sid.broker != self.broker_id:
                raise ValueError(
                    f"re-check asked for {sid}, owned by broker {sid.broker}, "
                    f"at broker {self.broker_id}"
                )
            subscription = self._subscriptions.get(sid)
            if subscription is not None and subscription.matches(event):
                confirmed.add(sid)
        return confirmed


class MaintainedSummary:
    """A broker summary kept in sync with a store, with periodic rebuilds.

    ``rebuild_threshold`` is the fraction of removals (since the last
    rebuild) over the current live count that triggers re-summarization.
    """

    def __init__(
        self,
        store: SubscriptionStore,
        precision: Precision = Precision.COARSE,
        rebuild_threshold: float = 0.5,
    ):
        if not 0.0 < rebuild_threshold:
            raise ValueError("rebuild threshold must be positive")
        self.store = store
        self.precision = precision
        self.rebuild_threshold = rebuild_threshold
        self.summary = store.build_summary(precision)
        self.rebuild_count = 0
        self._removals_since_rebuild = 0

    def subscribe(self, subscription: Subscription) -> SubscriptionId:
        sid = self.store.subscribe(subscription)
        self.summary.add(subscription, sid)
        return sid

    def unsubscribe(self, sid: SubscriptionId) -> bool:
        removed = self.store.unsubscribe(sid)
        if removed is None:
            return False
        self.summary.remove(sid)
        self._removals_since_rebuild += 1
        if self._should_rebuild():
            self.rebuild()
        return True

    def _should_rebuild(self) -> bool:
        live = max(1, len(self.store))
        return (self._removals_since_rebuild / live) >= self.rebuild_threshold

    def rebuild(self) -> None:
        """Re-summarize from raw subscriptions, restoring full compaction."""
        self.summary = self.store.build_summary(self.precision)
        self.rebuild_count += 1
        self._removals_since_rebuild = 0

    def match(self, event: Event) -> Set[SubscriptionId]:
        return self.summary.match(event)

    def match_confirmed(self, event: Event) -> Set[SubscriptionId]:
        """Summary match followed by the exact re-check."""
        return self.store.recheck(event, self.summary.match(event))
