"""AACS — Arithmetic Attribute Constraint Summaries (paper section 3.1).

For each arithmetic attribute a broker keeps:

* ``AACS_SR`` — an array of value sub-ranges (min/max columns), each row
  carrying the list of subscription ids whose constraint is satisfied by
  values in the row, and
* ``AACS_E`` — an array of equality values outside the sub-ranges, likewise
  with id lists.

Two precision modes (see :mod:`repro.summary.precision`):

``COARSE`` (paper behavior)
    Overlapping/touching sub-ranges union-merge into one wider row whose id
    list is the union.  Equality points swallowed by a widening row migrate
    into it.  An id attached to a widened row can be reported for values its
    original constraint excluded; the owning broker re-checks exactly.

``EXACT``
    Rows form a *partition*: inserting an interval splits existing rows at
    its boundaries so every row's id list is exactly the set of ids whose
    constraint covers every value in the row.  Equality points always live
    in ``AACS_E`` (they may fall inside a row; matching consults both
    arrays), so no false positives arise.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.model.ids import SubscriptionId
from repro.summary.intervals import Interval, IntervalSet
from repro.summary.precision import Precision

__all__ = ["AACS", "RangeRow"]


@dataclass
class RangeRow:
    """One AACS_SR row: a value sub-range plus its subscription-id list."""

    interval: Interval
    ids: Set[SubscriptionId] = field(default_factory=set)

    def __str__(self) -> str:
        return f"{self.interval} -> {sorted(self.ids)}"


class AACS:
    """The per-attribute arithmetic constraint summary."""

    __slots__ = ("precision", "_ranges", "_equalities", "_eq_keys")

    def __init__(self, precision: Precision = Precision.COARSE):
        self.precision = precision
        self._ranges: List[RangeRow] = []  # sorted by (lo, lo_open), disjoint
        self._equalities: Dict[float, Set[SubscriptionId]] = {}
        self._eq_keys: List[float] = []  # sorted keys of _equalities

    # -- introspection ------------------------------------------------------

    @property
    def n_sr(self) -> int:
        """Number of sub-range rows (the paper's ``nsr``)."""
        return len(self._ranges)

    @property
    def n_e(self) -> int:
        """Number of equality rows (the paper's ``ne``)."""
        return len(self._equalities)

    @property
    def is_empty(self) -> bool:
        return not self._ranges and not self._equalities

    def range_rows(self) -> Tuple[RangeRow, ...]:
        return tuple(self._ranges)

    def equality_rows(self) -> Tuple[Tuple[float, FrozenSet[SubscriptionId]], ...]:
        return tuple((v, frozenset(ids)) for v, ids in sorted(self._equalities.items()))

    def all_ids(self) -> Set[SubscriptionId]:
        ids: Set[SubscriptionId] = set()
        for row in self._ranges:
            ids |= row.ids
        for point_ids in self._equalities.values():
            ids |= point_ids
        return ids

    def id_list_entries(self) -> int:
        """Total id-list entries across rows — the ``La`` term of eq. (1)."""
        return sum(len(row.ids) for row in self._ranges) + sum(
            len(ids) for ids in self._equalities.values()
        )

    # -- insertion -----------------------------------------------------------

    def insert(self, values: IntervalSet, sid: SubscriptionId) -> None:
        """Insert one subscription's satisfied-value set for this attribute.

        ``values`` is the conjunction of the subscription's constraints on
        the attribute (see :func:`repro.summary.intervals
        .intervals_for_conjunction`); an empty set (contradictory
        constraints) inserts nothing, so the subscription can never match.
        """
        for interval in values:
            self.insert_interval(interval, {sid})

    def insert_interval(self, interval: Interval, ids: Iterable[SubscriptionId]) -> None:
        id_set = set(ids)
        if not id_set:
            return
        if interval.is_point:
            self._insert_point(interval.lo, id_set)
        elif self.precision is Precision.COARSE:
            self._insert_coarse(interval, id_set)
        else:
            self._insert_exact(interval, id_set)

    def _insert_point(self, value: float, ids: Set[SubscriptionId]) -> None:
        if self.precision is Precision.COARSE:
            # Paper rule: AACS_E is only for values "not included in the
            # existing sub-ranges" — a covered point joins the covering row.
            row = self._find_containing_row(value)
            if row is not None:
                row.ids |= ids
                return
        existing = self._equalities.get(value)
        if existing is not None:
            existing.update(ids)
        else:
            self._equalities[value] = set(ids)
            bisect.insort(self._eq_keys, value)

    def _insert_coarse(self, interval: Interval, ids: Set[SubscriptionId]) -> None:
        merged_interval = interval
        merged_ids = set(ids)
        keep: List[RangeRow] = []
        for row in self._ranges:
            if row.interval.touches(merged_interval):
                merged_interval = row.interval.union_with(merged_interval)
                merged_ids |= row.ids
            else:
                keep.append(row)
        # Equality points swallowed by the widened row migrate into it
        # (bisect over the sorted keys keeps this O(log n + swallowed)).
        lo_idx = bisect.bisect_left(self._eq_keys, merged_interval.lo)
        hi_idx = bisect.bisect_right(self._eq_keys, merged_interval.hi)
        swallowed = [
            v for v in self._eq_keys[lo_idx:hi_idx] if merged_interval.contains(v)
        ]
        for value in swallowed:
            merged_ids |= self._equalities.pop(value)
        if swallowed:
            self._eq_keys[lo_idx:hi_idx] = [
                v for v in self._eq_keys[lo_idx:hi_idx] if v in self._equalities
            ]
        keep.append(RangeRow(merged_interval, merged_ids))
        keep.sort(key=_row_key)
        self._ranges = keep

    def _insert_exact(self, interval: Interval, ids: Set[SubscriptionId]) -> None:
        remaining: List[Interval] = [interval]
        next_rows: List[RangeRow] = []
        for row in self._ranges:
            shared = row.interval.intersect(interval)
            if shared is None:
                next_rows.append(row)
                continue
            # Parts of the old row outside the new interval keep old ids.
            for piece in row.interval.subtract(interval):
                next_rows.append(RangeRow(piece, set(row.ids)))
            # The overlap carries both id sets.
            next_rows.append(RangeRow(shared, row.ids | ids))
            # Shrink the not-yet-covered remainder of the new interval.
            remaining = [
                piece
                for part in remaining
                for piece in part.subtract(row.interval)
            ]
        for piece in remaining:
            if piece.is_point:
                point_ids = self._equalities.get(piece.lo)
                if point_ids is not None:
                    point_ids.update(ids)
                else:
                    self._equalities[piece.lo] = set(ids)
                    bisect.insort(self._eq_keys, piece.lo)
            else:
                next_rows.append(RangeRow(piece, set(ids)))
        next_rows.sort(key=_row_key)
        self._ranges = next_rows

    # -- matching ------------------------------------------------------------

    def match(self, value: float) -> Set[SubscriptionId]:
        """All subscription ids whose summarized constraint admits ``value``."""
        matched: Set[SubscriptionId] = set()
        row = self._find_containing_row(value)
        if row is not None:
            matched |= row.ids
        point_ids = self._equalities.get(value)
        if point_ids:
            matched |= point_ids
        return matched

    def _find_containing_row(self, value: float) -> Optional[RangeRow]:
        if not self._ranges:
            return None
        lows = [row.interval.lo for row in self._ranges]
        idx = bisect.bisect_right(lows, value)
        # The containing row (rows are disjoint, so there is at most one)
        # has the greatest lo <= value, but an open lower bound equal to
        # ``value`` means the previous row could be the one; check both.
        for candidate in (idx - 1, idx - 2):
            if 0 <= candidate and self._ranges[candidate].interval.contains(value):
                return self._ranges[candidate]
        return None

    # -- maintenance -----------------------------------------------------------

    def remove(self, sid: SubscriptionId) -> bool:
        """Remove an id from every row; drop rows left empty.

        In COARSE mode row bounds are *not* re-narrowed (the merged range
        no longer remembers which piece belonged to whom) — a periodic
        rebuild (:mod:`repro.summary.maintenance`) re-compacts.
        """
        found = False
        keep: List[RangeRow] = []
        for row in self._ranges:
            if sid in row.ids:
                found = True
                row.ids.discard(sid)
            if row.ids:
                keep.append(row)
        self._ranges = keep
        emptied = False
        for value in list(self._equalities):
            ids = self._equalities[value]
            if sid in ids:
                found = True
                ids.discard(sid)
                if not ids:
                    del self._equalities[value]
                    emptied = True
        if emptied:
            self._eq_keys = sorted(self._equalities)
        return found

    def merge(self, other: "AACS") -> None:
        """Union another attribute summary into this one (multi-broker merge)."""
        if other.precision is not self.precision:
            raise ValueError("cannot merge summaries with different precision modes")
        for row in other.range_rows():
            self.insert_interval(row.interval, set(row.ids))
        for value, ids in other.equality_rows():
            self._insert_point(value, set(ids))

    def copy(self) -> "AACS":
        clone = AACS(self.precision)
        clone._ranges = [RangeRow(row.interval, set(row.ids)) for row in self._ranges]
        clone._equalities = {v: set(ids) for v, ids in self._equalities.items()}
        clone._eq_keys = list(self._eq_keys)
        return clone

    def __repr__(self) -> str:
        parts = [str(row) for row in self._ranges]
        parts += [f"={v} -> {sorted(ids)}" for v, ids in sorted(self._equalities.items())]
        return f"AACS({'; '.join(parts)})"


def _row_key(row: RangeRow) -> Tuple[float, int]:
    return (row.interval.lo, 1 if row.interval.lo_open else 0)
