"""Summary precision modes (DESIGN.md section 5.1).

The paper's summaries deliberately generalize: overlapping arithmetic
sub-ranges merge into wider rows and string constraints collapse into
covering patterns.  A generalized row may therefore report a subscription id
for a value its original constraint excluded (a *false positive*), which is
safe because the owning broker re-checks exactly before client delivery.

``COARSE`` is that paper behavior.  ``EXACT`` maintains enough structure
(interval partitions, conjunction patterns, one row per distinct pattern)
that the summary match equals ground truth; it costs more space and exists
to cross-validate COARSE and to quantify the compaction trade-off.
"""

from __future__ import annotations

import enum

__all__ = ["Precision"]


class Precision(enum.Enum):
    COARSE = "coarse"  # paper semantics: generalize, allow false positives
    EXACT = "exact"  # no false positives, larger structures

    @property
    def allows_false_positives(self) -> bool:
        return self is Precision.COARSE
