"""Compressed subscription-id sets (roaring-style varint containers).

The wire cost that keeps Fig-8 from flattening is the per-row id lists:
:meth:`~repro.wire.codec.WireCodec.write_id_list` ships every id at the
fixed packed width (``c1|c2|c3`` bytes), so a summary's size grows
linearly in sigma even when the ids are dense and highly clustered — which
they are by construction: ``c2`` is a per-broker monotonic counter, so the
ids of one broker's subscriptions form near-contiguous runs.

This module exploits that structure.  An id set is grouped into
*containers* keyed by ``(c1, c2 >> CONTAINER_BITS)`` — the roaring-bitmap
trick of splitting the key space into aligned ranges — and each container
stores its members as sorted ``c2``-offset *gap* varints plus a varint
``c3`` mask.  Dense monotone ids cost ~2 bytes each instead of the fixed
packed width (6+ bytes on a 24-broker/1M-subscription deployment), and
the container header amortizes the ``c1`` and high-``c2`` bits over every
member.

Layering: this module must stay importable from :mod:`repro.summary`
without touching :mod:`repro.wire` (the wire codec imports summary
structures, so the reverse import would be circular).  It therefore
operates on duck-typed writer/reader objects exposing the
``varint``-family primitives of :class:`~repro.wire.codec.ByteWriter` /
:class:`~repro.wire.codec.ByteReader`, and raises plain :class:`ValueError`
(which the wire layer's ``_decode_guard`` converts to ``CodecError``).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Set, Tuple

from repro.model.ids import SubscriptionId

__all__ = ["CONTAINER_BITS", "CONTAINER_SIZE", "write_id_set", "read_id_set", "encoded_size_bound"]

#: Width of the low ``c2`` bits kept inside a container.  16 bits matches
#: the classic roaring container size: one container spans 65536 local
#: ids, so a broker's whole live id range typically fits in a handful of
#: containers while offsets stay single- or double-byte varints.
CONTAINER_BITS = 16
CONTAINER_SIZE = 1 << CONTAINER_BITS
_OFFSET_MASK = CONTAINER_SIZE - 1


def write_id_set(writer, ids: Iterable[SubscriptionId], id_codec) -> None:
    """Encode ``ids`` as sorted-varint delta containers.

    ``writer`` needs ``varint(int)``; ``id_codec`` is consulted only to
    validate that every id fits the deployment's field widths (the same
    check :meth:`IdCodec.pack` applies on the fixed-width path).
    """
    containers: Dict[Tuple[int, int], List[SubscriptionId]] = {}
    for sid in ids:
        if sid.broker >= id_codec.num_brokers:
            raise ValueError(
                f"broker id {sid.broker} out of range (< {id_codec.num_brokers})"
            )
        if sid.local_id >= id_codec.max_subscriptions:
            raise ValueError(
                f"local id {sid.local_id} out of range "
                f"(< {id_codec.max_subscriptions})"
            )
        if sid.attr_mask >= (1 << id_codec.c3_bits):
            raise ValueError(
                f"attribute mask {sid.attr_mask:#x} needs more than "
                f"{id_codec.c3_bits} c3 bits"
            )
        key = (sid.broker, sid.local_id >> CONTAINER_BITS)
        containers.setdefault(key, []).append(sid)
    writer.varint(len(containers))
    for (broker, base) in sorted(containers):
        members = sorted(containers[(broker, base)])
        writer.varint(broker)
        writer.varint(base)
        writer.varint(len(members))
        previous = -1
        for sid in members:
            offset = sid.local_id & _OFFSET_MASK
            # Strictly increasing offsets ((c1, c2) identifies a
            # subscription; its c3 mask is derived from it), so gaps
            # encode as ``delta - 1``: a dense run costs one zero byte per
            # id for the position plus its c3 varint.
            if offset == previous:
                raise ValueError(
                    f"conflicting ids for broker {sid.broker} local id "
                    f"{sid.local_id}: two members differ only in attr_mask"
                )
            writer.varint(offset - previous - 1)
            writer.varint(sid.attr_mask)
            previous = offset


def read_id_set(reader, id_codec) -> Set[SubscriptionId]:
    """Decode a :func:`write_id_set` block back into a set of ids."""
    ids: Set[SubscriptionId] = set()
    for _ in range(reader.varint()):
        broker = reader.varint()
        if broker >= id_codec.num_brokers:
            raise ValueError(
                f"container broker id {broker} out of range "
                f"(< {id_codec.num_brokers})"
            )
        base = reader.varint() << CONTAINER_BITS
        count = reader.varint()
        previous = -1
        for _ in range(count):
            offset = previous + 1 + reader.varint()
            if offset >= CONTAINER_SIZE:
                raise ValueError(
                    f"container offset {offset} overflows the "
                    f"{CONTAINER_SIZE}-id container"
                )
            local_id = base + offset
            if local_id >= id_codec.max_subscriptions:
                raise ValueError(
                    f"local id {local_id} out of range "
                    f"(< {id_codec.max_subscriptions})"
                )
            attr_mask = reader.varint()
            if attr_mask >= (1 << id_codec.c3_bits):
                raise ValueError(
                    f"attribute mask {attr_mask:#x} needs more than "
                    f"{id_codec.c3_bits} c3 bits"
                )
            # SubscriptionId.__post_init__ rejects attr_mask == 0.
            ids.add(SubscriptionId(broker=broker, local_id=local_id, attr_mask=attr_mask))
            previous = offset
    return ids


def encoded_size_bound(ids: Iterable[SubscriptionId]) -> int:
    """A cheap upper bound on the encoded size in bytes (used by tests and
    capacity planning, never by the simulator — it charges real bytes)."""
    ids = list(ids)
    containers = {(sid.broker, sid.local_id >> CONTAINER_BITS) for sid in ids}
    # Header varints are <= 5 bytes each; per id: gap (<=3) + mask (<=10).
    return 5 + len(containers) * 15 + sum(
        3 + (sid.attr_mask.bit_length() + 6) // 7 for sid in ids
    )
