"""SACS — String Attribute Constraint Summaries (paper section 3.1).

For each string attribute a broker keeps an array of pattern rows.  Each row
is a general constraint that may cover one or more of the received
constraints, with the id list of every subscription whose constraint it
absorbed:

* a new constraint covered by an existing row just adds its id to that
  row's list;
* a new constraint that is *more general* than existing rows replaces them
  (their id lists merge into the new row);
* otherwise a fresh row is appended.

In COARSE mode this collapsing is exactly the paper's summarization (ids in
a general row may over-match; the home broker re-checks).  In EXACT mode a
row is created per distinct pattern and only identical patterns share a row,
so the reported ids are exact.

Representation: equality (literal) patterns dominate realistic workloads —
the Table-2 generator makes ``1 - q`` of all string constraints unique
equalities — so literal rows live in a hash index keyed by their value,
while the (few) wildcard/NE/conjunction rows live in a small ordered table.
Inserting or matching a literal is O(#general rows) instead of O(#rows),
which is what makes sigma = 1000-scale experiments tractable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Set, Tuple

from repro.model.ids import SubscriptionId
from repro.summary.patterns import GlobPattern, StringPattern
from repro.summary.precision import Precision

__all__ = ["SACS", "PatternRow"]


@dataclass
class PatternRow:
    """One SACS row: a covering pattern plus its subscription-id list."""

    pattern: StringPattern
    ids: Set[SubscriptionId] = field(default_factory=set)

    def __str__(self) -> str:
        return f"{self.pattern.wire_text()!r} -> {sorted(self.ids)}"


def _is_literal(pattern: StringPattern) -> bool:
    return isinstance(pattern, GlobPattern) and pattern.is_literal


class SACS:
    """The per-attribute string constraint summary."""

    __slots__ = ("precision", "_literals", "_general")

    def __init__(self, precision: Precision = Precision.COARSE):
        self.precision = precision
        #: literal (pure equality) rows, keyed by their value
        self._literals: Dict[str, PatternRow] = {}
        #: wildcard / not-equals / conjunction rows, keyed by canonical form
        self._general: Dict[Tuple, PatternRow] = {}

    # -- introspection ------------------------------------------------------

    @property
    def n_r(self) -> int:
        """Number of pattern rows (the paper's ``nr``)."""
        return len(self._literals) + len(self._general)

    @property
    def is_empty(self) -> bool:
        return not self._literals and not self._general

    def rows(self) -> Tuple[PatternRow, ...]:
        """All rows, in a deterministic order (literals first, by value)."""
        literal_rows = [self._literals[value] for value in sorted(self._literals)]
        general_rows = [self._general[key] for key in sorted(self._general)]
        return tuple(literal_rows + general_rows)

    def all_ids(self) -> Set[SubscriptionId]:
        ids: Set[SubscriptionId] = set()
        for row in self._literals.values():
            ids |= row.ids
        for row in self._general.values():
            ids |= row.ids
        return ids

    def id_list_entries(self) -> int:
        """Total id-list entries across rows — the ``Ls`` term of eq. (2)."""
        return sum(len(row.ids) for row in self._literals.values()) + sum(
            len(row.ids) for row in self._general.values()
        )

    def value_bytes(self) -> int:
        """Total pattern text bytes — the ``ssv`` term of eq. (2)."""
        return sum(len(row.pattern.wire_text()) for row in self.rows())

    # -- insertion -----------------------------------------------------------

    def insert(self, pattern: StringPattern, sid: SubscriptionId) -> None:
        self.insert_pattern(pattern, {sid})

    def insert_pattern(self, pattern: StringPattern, ids: Set[SubscriptionId]) -> None:
        if not ids:
            return
        if self.precision is Precision.COARSE:
            self._insert_coarse(pattern, set(ids))
        else:
            self._insert_exact(pattern, set(ids))

    def _insert_coarse(self, pattern: StringPattern, ids: Set[SubscriptionId]) -> None:
        if _is_literal(pattern):
            value = pattern.pieces[0]  # type: ignore[union-attr]
            row = self._literals.get(value)
            if row is not None:
                row.ids |= ids
                return
            # Covered by an existing general row?  For a literal, coverage
            # is simply whether the row's pattern matches the value.
            for general_row in self._general.values():
                if general_row.pattern.matches(value):
                    general_row.ids |= ids
                    return
            self._literals[value] = PatternRow(pattern, ids)
            return
        # General pattern.  Covered by an existing, more general row?
        key = pattern.key()
        existing = self._general.get(key)
        if existing is not None:
            existing.ids |= ids
            return
        for general_row in self._general.values():
            if general_row.pattern.covers(pattern):
                general_row.ids |= ids
                return
        # More general than some existing rows: substitute them, absorbing
        # their id lists (paper: "the current is substituted by the new").
        merged = set(ids)
        for other_key in list(self._general):
            if pattern.covers(self._general[other_key].pattern):
                merged |= self._general.pop(other_key).ids
        for value in list(self._literals):
            if pattern.matches(value):
                merged |= self._literals.pop(value).ids
        self._general[key] = PatternRow(pattern, merged)

    def _insert_exact(self, pattern: StringPattern, ids: Set[SubscriptionId]) -> None:
        # EXACT: only *identical* patterns share a row.
        if _is_literal(pattern):
            value = pattern.pieces[0]  # type: ignore[union-attr]
            row = self._literals.get(value)
            if row is not None:
                row.ids |= ids
            else:
                self._literals[value] = PatternRow(pattern, ids)
            return
        key = pattern.key()
        row = self._general.get(key)
        if row is not None:
            row.ids |= ids
        else:
            self._general[key] = PatternRow(pattern, ids)

    # -- matching ------------------------------------------------------------

    def match(self, value: str) -> Set[SubscriptionId]:
        """All subscription ids whose summarized pattern admits ``value``."""
        matched: Set[SubscriptionId] = set()
        literal_row = self._literals.get(value)
        if literal_row is not None:
            matched |= literal_row.ids
        for row in self._general.values():
            if row.pattern.matches(value):
                matched |= row.ids
        return matched

    # -- maintenance -----------------------------------------------------------

    def remove(self, sid: SubscriptionId) -> bool:
        """Remove an id from every row; drop rows left empty.

        As with AACS, a COARSE row's pattern is not re-specialized on
        removal; the periodic rebuild re-compacts.
        """
        found = False
        for value in list(self._literals):
            row = self._literals[value]
            if sid in row.ids:
                found = True
                row.ids.discard(sid)
                if not row.ids:
                    del self._literals[value]
        for key in list(self._general):
            row = self._general[key]
            if sid in row.ids:
                found = True
                row.ids.discard(sid)
                if not row.ids:
                    del self._general[key]
        return found

    def merge(self, other: "SACS") -> None:
        """Union another attribute summary into this one (multi-broker merge)."""
        if other.precision is not self.precision:
            raise ValueError("cannot merge summaries with different precision modes")
        for row in other.rows():
            self.insert_pattern(row.pattern, set(row.ids))

    def copy(self) -> "SACS":
        clone = SACS(self.precision)
        clone._literals = {
            value: PatternRow(row.pattern, set(row.ids))
            for value, row in self._literals.items()
        }
        clone._general = {
            key: PatternRow(row.pattern, set(row.ids))
            for key, row in self._general.items()
        }
        return clone

    def __repr__(self) -> str:
        return f"SACS({'; '.join(str(row) for row in self.rows())})"
