"""Compiled summary matching — the production fast path for Algorithm 1.

:func:`repro.summary.matching.match_event` is the *reference* matcher: it
walks the live AACS/SACS structures, allocating a fresh
``Set[SubscriptionId]`` per row union and a dict of counters per event.
That is perfect for figure reproduction but wasteful on a hot path that has
to sustain heavy event traffic.

:class:`CompiledMatcher` snapshots a :class:`~repro.summary.summary
.BrokerSummary` into flat, immutable lookup structures:

* **id interning** — every distinct :class:`SubscriptionId` in the summary
  is assigned a dense integer *slot*; row id-lists become tuples of slots,
  and ``popcount(c3)`` (the per-subscription full-match threshold of
  Algorithm 1, step 2) is precomputed into an ``array('I')`` indexed by
  slot, so the per-event decision is an integer compare with no per-event
  dict/set churn;

* **per arithmetic attribute** — the AACS sub-range partition is flattened
  into parallel sorted boundary arrays (``lo``/``hi``/openness) resolved
  with :func:`bisect.bisect_right`, plus a sorted equality-key array whose
  slot lists are pre-unioned with the slots of the range row containing the
  key (so an exact-key hit needs no second lookup and never double-counts);

* **per string attribute** — literal (pure-equality) rows become a hash
  table keyed by value; general rows are bucketed by their anchored prefix
  (first character of the pattern head) or suffix (last character of the
  tail) so an event value only evaluates the patterns that could possibly
  match it, with a small residual list for unanchored patterns
  (containment, not-equals, universal);

* **candidate counting** — a preallocated ``array('I')`` counter indexed by
  slot, reset via a touched-slot list, replaces the per-event counter dict.

Snapshots self-invalidate: :class:`~repro.summary.summary.BrokerSummary`
bumps a generation counter on every ``add``/``remove``/``merge``, and the
compiled matcher lazily recompiles (and drops its :meth:`match_many` LRU
cache) the next time it is asked to match after the generation moved.

Semantics are *identical* to the reference matcher by construction and by
the differential harness (``tests/summary/test_compiled_differential.py``):
for EXACT summaries both equal the naive ground truth; for COARSE both
report the same superset.
"""

from __future__ import annotations

from array import array
from bisect import bisect_left, bisect_right
from collections import OrderedDict
from typing import (
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.model.events import Event
from repro.model.ids import SubscriptionId
from repro.model.schema import SchemaError
from repro.summary.patterns import GlobPattern, StringPattern
from repro.summary.summary import BrokerSummary

__all__ = ["CompiledMatcher", "CompiledStats"]


#: A predicate over event string values plus the slots it admits.
_PatternEntry = Tuple[Callable[[str], bool], Tuple[int, ...]]


class _ArithTable:
    """Flattened AACS for one attribute: boundary arrays + equality keys."""

    __slots__ = (
        "lows", "highs", "lo_open", "hi_open", "row_slots",
        "eq_keys", "eq_slots",
    )

    def __init__(
        self,
        lows: List[float],
        highs: List[float],
        lo_open: List[bool],
        hi_open: List[bool],
        row_slots: List[Tuple[int, ...]],
        eq_keys: List[float],
        eq_slots: List[Tuple[int, ...]],
    ):
        self.lows = lows
        self.highs = highs
        self.lo_open = lo_open
        self.hi_open = hi_open
        self.row_slots = row_slots
        self.eq_keys = eq_keys
        self.eq_slots = eq_slots

    def lookup(self, value: float) -> Optional[Tuple[int, ...]]:
        """The (deduplicated) slot list admitted by ``value``, or None."""
        eq_keys = self.eq_keys
        if eq_keys:
            j = bisect_left(eq_keys, value)
            if j < len(eq_keys) and eq_keys[j] == value:
                # Pre-unioned with the containing range row at compile time.
                return self.eq_slots[j]
        return self._row_lookup(value)

    def _row_lookup(self, value: float) -> Optional[Tuple[int, ...]]:
        lows = self.lows
        if not lows:
            return None
        idx = bisect_right(lows, value) - 1
        # Rows are disjoint and sorted by (lo, lo_open); the containing row
        # has the greatest lo <= value, but an open lower bound equal to
        # ``value`` means the previous row could be the one; check both.
        for j in (idx, idx - 1):
            if j < 0:
                continue
            lo = lows[j]
            if value < lo or (value == lo and self.lo_open[j]):
                continue
            hi = self.highs[j]
            if value > hi or (value == hi and self.hi_open[j]):
                continue
            return self.row_slots[j]
        return None


class _StringTable:
    """Bucketed SACS for one attribute.

    ``literals`` resolves pure-equality rows in O(1); anchored general rows
    are bucketed by first-char-of-head / last-char-of-tail so only patterns
    that share the event value's boundary characters are evaluated;
    ``unanchored`` holds the residue (containment, NE, universal patterns).
    """

    __slots__ = ("literals", "head_buckets", "tail_buckets", "unanchored")

    def __init__(
        self,
        literals: Dict[str, Tuple[int, ...]],
        head_buckets: Dict[str, List[_PatternEntry]],
        tail_buckets: Dict[str, List[_PatternEntry]],
        unanchored: List[_PatternEntry],
    ):
        self.literals = literals
        self.head_buckets = head_buckets
        self.tail_buckets = tail_buckets
        self.unanchored = unanchored

    def lookup(self, value: str) -> List[Tuple[int, ...]]:
        """All slot lists admitted by ``value`` (may need deduplication)."""
        hits: List[Tuple[int, ...]] = []
        slots = self.literals.get(value)
        if slots is not None:
            hits.append(slots)
        if value:
            for matches, slots in self.head_buckets.get(value[0], ()):
                if matches(value):
                    hits.append(slots)
            for matches, slots in self.tail_buckets.get(value[-1], ()):
                if matches(value):
                    hits.append(slots)
        for matches, slots in self.unanchored:
            if matches(value):
                hits.append(slots)
        return hits


class CompiledStats:
    """Size counters for one compiled snapshot (tests and benchmarks)."""

    __slots__ = (
        "generation", "slots", "arithmetic_attributes", "string_attributes",
        "range_rows", "equality_keys", "literal_rows", "anchored_patterns",
        "unanchored_patterns",
    )

    def __init__(self) -> None:
        self.generation = 0
        self.slots = 0
        self.arithmetic_attributes = 0
        self.string_attributes = 0
        self.range_rows = 0
        self.equality_keys = 0
        self.literal_rows = 0
        self.anchored_patterns = 0
        self.unanchored_patterns = 0

    def as_dict(self) -> Dict[str, int]:
        return {name: getattr(self, name) for name in self.__slots__}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        body = ", ".join(f"{k}={v}" for k, v in self.as_dict().items())
        return f"CompiledStats({body})"


class CompiledMatcher:
    """An immutable, flat snapshot of a :class:`BrokerSummary` for matching.

    The snapshot is compiled lazily on first use and recompiled
    automatically whenever the underlying summary's generation counter
    moves (``add``/``remove``/``merge``).  A recompile also evicts every
    :meth:`match_many` cache entry, so a stale result can never be served.

    ``cache_size`` > 0 enables an LRU cache for :meth:`match_many`, keyed
    on the event's canonical attribute/value form (events hash and compare
    by their sorted ``(name, type, value)`` triples).
    """

    __slots__ = (
        "_summary", "_cache_size", "_cache",
        "_generation", "_ids", "_required", "_counters",
        "_arith", "_strings",
        "cache_hits", "cache_misses", "cache_evictions", "cache_invalidations",
    )

    def __init__(self, summary: BrokerSummary, cache_size: int = 0):
        if cache_size < 0:
            raise ValueError("cache_size must be >= 0")
        self._summary = summary
        self._cache_size = cache_size
        self._cache: "OrderedDict[Event, FrozenSet[SubscriptionId]]" = OrderedDict()
        #: :meth:`match_many` lookups served from the LRU.
        self.cache_hits = 0
        #: :meth:`match_many` lookups that ran the full compiled match.
        self.cache_misses = 0
        #: entries dropped because the LRU exceeded ``cache_size``.
        self.cache_evictions = 0
        #: entries dropped wholesale by a generation-bump recompile.
        self.cache_invalidations = 0
        self._generation = -1  # never equals a real generation: compiles lazily
        self._ids: List[SubscriptionId] = []
        self._required = array("I")
        self._counters = array("I")
        self._arith: Dict[str, _ArithTable] = {}
        self._strings: Dict[str, _StringTable] = {}

    # -- introspection -------------------------------------------------------

    @property
    def summary(self) -> BrokerSummary:
        return self._summary

    @property
    def generation(self) -> int:
        """The summary generation this snapshot was compiled against
        (-1 before the first compile)."""
        return self._generation

    @property
    def is_stale(self) -> bool:
        return self._generation != self._summary.generation

    @property
    def cache_size(self) -> int:
        return self._cache_size

    def cached_events(self) -> int:
        """Number of live :meth:`match_many` cache entries."""
        return len(self._cache)

    def stats(self) -> CompiledStats:
        """Structure sizes of the current snapshot (compiles if stale)."""
        self._ensure_current()
        stats = CompiledStats()
        stats.generation = self._generation
        stats.slots = len(self._ids)
        stats.arithmetic_attributes = len(self._arith)
        stats.string_attributes = len(self._strings)
        for table in self._arith.values():
            stats.range_rows += len(table.lows)
            stats.equality_keys += len(table.eq_keys)
        for stable in self._strings.values():
            stats.literal_rows += len(stable.literals)
            stats.anchored_patterns += sum(
                len(bucket) for bucket in stable.head_buckets.values()
            ) + sum(len(bucket) for bucket in stable.tail_buckets.values())
            stats.unanchored_patterns += len(stable.unanchored)
        return stats

    # -- compilation ---------------------------------------------------------

    def refresh(self) -> bool:
        """Recompile now if stale; returns whether a recompile happened."""
        if self.is_stale:
            self._compile()
            return True
        return False

    def _ensure_current(self) -> None:
        if self._generation != self._summary.generation:
            self._compile()

    def _compile(self) -> None:
        summary = self._summary
        generation = summary.generation  # snapshot before walking structures
        id_to_slot: Dict[SubscriptionId, int] = {}
        ids: List[SubscriptionId] = []

        def slots_of(sids: Iterable[SubscriptionId]) -> Tuple[int, ...]:
            out = []
            for sid in sorted(sids):
                slot = id_to_slot.get(sid)
                if slot is None:
                    slot = id_to_slot[sid] = len(ids)
                    ids.append(sid)
                out.append(slot)
            return tuple(out)

        arith: Dict[str, _ArithTable] = {}
        for name, aacs in summary.arithmetic_structures().items():
            arith[name] = self._compile_arith(aacs, slots_of)
        strings: Dict[str, _StringTable] = {}
        for name, sacs in summary.string_structures().items():
            strings[name] = self._compile_string(sacs, slots_of)

        self._ids = ids
        self._required = array("I", (sid.attribute_count for sid in ids))
        self._counters = array("I", bytes(4 * len(ids)))  # zero-filled
        self._arith = arith
        self._strings = strings
        self._generation = generation
        self.cache_invalidations += len(self._cache)
        self._cache.clear()  # a rebuild evicts every cached match result

    @staticmethod
    def _compile_arith(aacs, slots_of) -> _ArithTable:
        rows = aacs.range_rows()  # sorted by (lo, lo_open), disjoint
        lows = [row.interval.lo for row in rows]
        highs = [row.interval.hi for row in rows]
        lo_open = [row.interval.lo_open for row in rows]
        hi_open = [row.interval.hi_open for row in rows]
        row_slots = [slots_of(row.ids) for row in rows]
        table = _ArithTable(lows, highs, lo_open, hi_open, row_slots, [], [])
        eq_keys: List[float] = []
        eq_slots: List[Tuple[int, ...]] = []
        for value, point_ids in aacs.equality_rows():  # sorted by value
            merged = slots_of(point_ids)
            # Pre-union with the containing range row (EXACT mode lets
            # equality points fall inside rows) so a key hit resolves to a
            # single already-deduplicated slot list.
            row = table._row_lookup(value)
            if row:
                merged = tuple(sorted(set(merged) | set(row)))
            eq_keys.append(value)
            eq_slots.append(merged)
        table.eq_keys = eq_keys
        table.eq_slots = eq_slots
        return table

    @staticmethod
    def _compile_string(sacs, slots_of) -> _StringTable:
        literals: Dict[str, Tuple[int, ...]] = {}
        head_buckets: Dict[str, List[_PatternEntry]] = {}
        tail_buckets: Dict[str, List[_PatternEntry]] = {}
        unanchored: List[_PatternEntry] = []
        for row in sacs.rows():
            pattern = row.pattern
            slots = slots_of(row.ids)
            if isinstance(pattern, GlobPattern) and pattern.is_literal:
                # Distinct literal rows have distinct values by SACS
                # construction, but stay safe under exotic inputs.
                prior = literals.get(pattern.pieces[0])
                if prior is not None:  # pragma: no cover - defensive
                    slots = tuple(sorted(set(prior) | set(slots)))
                literals[pattern.pieces[0]] = slots
                continue
            entry: _PatternEntry = (pattern.matches, slots)
            anchor = _anchor_of(pattern)
            if anchor is None:
                unanchored.append(entry)
            else:
                kind, char = anchor
                bucket = head_buckets if kind == "head" else tail_buckets
                bucket.setdefault(char, []).append(entry)
        return _StringTable(literals, head_buckets, tail_buckets, unanchored)

    # -- matching ------------------------------------------------------------

    def match(self, event: Event) -> Set[SubscriptionId]:
        """All subscription ids matched by ``event`` — same semantics as
        :func:`repro.summary.matching.match_event` on the live summary."""
        self._ensure_current()
        return self._match_compiled(event)

    def match_many(self, events: Sequence[Event]) -> List[Set[SubscriptionId]]:
        """Batch matching with an optional LRU cache over canonical events.

        The cache (enabled with ``cache_size > 0``) is keyed on the event's
        canonical value form and fully evicted whenever the snapshot
        recompiles, so entries can never outlive the summary state they
        were computed from.
        """
        self._ensure_current()
        if not self._cache_size:
            return [self._match_compiled(event) for event in events]
        cache = self._cache
        results: List[Set[SubscriptionId]] = []
        for event in events:
            hit = cache.get(event)
            if hit is not None:
                cache.move_to_end(event)
                self.cache_hits += 1
                results.append(set(hit))
                continue
            matched = self._match_compiled(event)
            self.cache_misses += 1
            cache[event] = frozenset(matched)
            if len(cache) > self._cache_size:
                cache.popitem(last=False)
                self.cache_evictions += 1
            results.append(matched)
        return results

    def _match_compiled(self, event: Event) -> Set[SubscriptionId]:
        counters = self._counters
        touched: List[int] = []
        arith = self._arith
        strings = self._strings
        for name, _type, value in event.items():
            table = arith.get(name)
            if table is not None:
                try:
                    numeric = float(value)  # type: ignore[arg-type]
                except (TypeError, ValueError) as exc:
                    # Mirror BrokerSummary.collect_attribute_ids exactly —
                    # but reset counters first so the matcher stays usable.
                    for slot in touched:
                        counters[slot] = 0
                    raise SchemaError(
                        f"event value {value!r} for arithmetic attribute "
                        f"{name!r} is not numeric"
                    ) from exc
                slots = table.lookup(numeric)
                if slots:
                    for slot in slots:
                        count = counters[slot]
                        if not count:
                            touched.append(slot)
                        counters[slot] = count + 1
                continue
            stable = strings.get(name)
            if stable is None:
                continue  # attribute constrained by no summarized subscription
            hits = stable.lookup(value)  # type: ignore[arg-type]
            if not hits:
                continue
            if len(hits) == 1:
                slots_iter: Iterable[int] = hits[0]
            else:
                # The same slot may appear in several rows of one attribute
                # (e.g. a subscription with two COARSE patterns); Algorithm 1
                # counts each attribute once, so deduplicate across hits.
                dedup: Set[int] = set(hits[0])
                for extra in hits[1:]:
                    dedup.update(extra)
                slots_iter = dedup
            for slot in slots_iter:
                count = counters[slot]
                if not count:
                    touched.append(slot)
                counters[slot] = count + 1
        matched: Set[SubscriptionId] = set()
        ids = self._ids
        required = self._required
        for slot in touched:
            if counters[slot] == required[slot]:
                matched.add(ids[slot])
            counters[slot] = 0  # reset only what this event touched
        return matched


def _anchor_of(pattern: StringPattern) -> Optional[Tuple[str, str]]:
    """The bucketing anchor of a general pattern, if it has one.

    Returns ``("head", c)`` when every matching value must start with the
    character ``c``, ``("tail", c)`` when every matching value must end
    with ``c``, and None when the pattern admits values with arbitrary
    boundary characters (containment, not-equals, universal globs).

    For conjunctions, any member pattern's anchor is a sound anchor for the
    whole conjunction (the value must match every member).
    """
    if isinstance(pattern, GlobPattern):
        if pattern.head:
            return ("head", pattern.head[0])
        if pattern.tail:
            return ("tail", pattern.tail[-1])
        return None
    parts = getattr(pattern, "parts", None)  # ConjunctionPattern
    if parts:
        for part in parts:
            anchor = _anchor_of(part)
            if anchor is not None:
                return anchor
    return None
