"""The event matching algorithm (paper section 3.3, Algorithm 1).

Given an incoming event and a (possibly multi-broker) summary:

1. For every attribute of the event, scan the summary structures for
   satisfied constraints and collect the corresponding subscription-id
   lists, keeping a per-id counter of how many lists it appeared in.
2. A collected id is a match iff its counter equals the number of
   attributes its subscription constrains — read directly off the id's
   ``c3`` popcount, with no per-subscription state.
3. (Step 3 of the paper — forwarding the event plus matched ids to the
   owning broker — is the routing layer's job; see
   :mod:`repro.broker.routing`.)

``match_event`` is the production path; ``match_event_detailed`` exposes the
intermediate per-attribute lists for tests and teaching examples, and
:class:`NaiveMatcher` is the subscription-centric ground truth used to
validate the summary-based matcher and as the comparison baseline for the
section 5.2.4 computational study.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Mapping, Set

from repro.model.events import Event
from repro.model.ids import SubscriptionId
from repro.model.subscriptions import Subscription

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.summary.summary import BrokerSummary

__all__ = ["match_event", "match_event_detailed", "MatchDetails", "NaiveMatcher"]


def match_event(summary: "BrokerSummary", event: Event) -> Set[SubscriptionId]:
    """All subscription ids in ``summary`` matched by ``event``."""
    counters: Dict[SubscriptionId, int] = {}
    for name, _type, value in event.items():
        for sid in summary.collect_attribute_ids(name, value):
            counters[sid] = counters.get(sid, 0) + 1
    return {
        sid for sid, count in counters.items() if count == sid.attribute_count
    }


@dataclass
class MatchDetails:
    """The intermediate state of Algorithm 1, for inspection."""

    per_attribute: Dict[str, Set[SubscriptionId]] = field(default_factory=dict)
    counters: Dict[SubscriptionId, int] = field(default_factory=dict)
    matched: Set[SubscriptionId] = field(default_factory=set)

    @property
    def candidates(self) -> Set[SubscriptionId]:
        """Every id collected in step 1 (matched or not)."""
        return set(self.counters)

    def partials(self) -> Set[SubscriptionId]:
        """Ids collected but not fully matched (counter < popcount(c3))."""
        return self.candidates - self.matched


def match_event_detailed(summary: "BrokerSummary", event: Event) -> MatchDetails:
    """Algorithm 1 with its intermediate per-attribute lists preserved."""
    details = MatchDetails()
    for name, _type, value in event.items():
        ids = summary.collect_attribute_ids(name, value)
        if ids:
            details.per_attribute[name] = ids
        for sid in ids:
            details.counters[sid] = details.counters.get(sid, 0) + 1
    details.matched = {
        sid
        for sid, count in details.counters.items()
        if count == sid.attribute_count
    }
    return details


class NaiveMatcher:
    """The subscription-centric baseline: test every subscription directly.

    This is both the ground truth for validating the summary matcher (an
    EXACT summary must agree with it perfectly; a COARSE summary must report
    a superset) and the "competing approach" cost yardstick of section
    5.2.4.
    """

    __slots__ = ("_subscriptions",)

    def __init__(self) -> None:
        self._subscriptions: Dict[SubscriptionId, Subscription] = {}

    def add(self, subscription: Subscription, sid: SubscriptionId) -> None:
        if sid in self._subscriptions:
            raise ValueError(f"duplicate subscription id {sid}")
        self._subscriptions[sid] = subscription

    def remove(self, sid: SubscriptionId) -> bool:
        return self._subscriptions.pop(sid, None) is not None

    def __len__(self) -> int:
        return len(self._subscriptions)

    def subscriptions(self) -> Mapping[SubscriptionId, Subscription]:
        return dict(self._subscriptions)

    def match(self, event: Event) -> Set[SubscriptionId]:
        return {
            sid
            for sid, subscription in self._subscriptions.items()
            if subscription.matches(event)
        }
