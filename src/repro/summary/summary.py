"""Per-broker subscription summaries (paper section 3).

A :class:`BrokerSummary` is the summary-centric representation of a set of
subscriptions: each incoming subscription is *dissolved* into its
attribute-value constraints, which are merged into the per-attribute AACS
(arithmetic) and SACS (string) structures.  "In this paradigm there are no
subscription entities, only subscription summaries" — the only
per-subscription residue is the bit-packed id in the row id-lists.

A summary built by one broker can be merged with others' summaries to form
the multi-broker summaries of section 4 (:meth:`merge`); merging is a plain
per-attribute union of structures.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Set

from repro.model.events import Event
from repro.model.ids import SubscriptionId
from repro.model.schema import Schema, SchemaError
from repro.model.subscriptions import Subscription
from repro.summary.aacs import AACS
from repro.summary.intervals import intervals_for_conjunction
from repro.summary.patterns import (
    ConjunctionPattern,
    StringPattern,
    pattern_for_constraint,
)
from repro.summary.precision import Precision
from repro.summary.sacs import SACS

__all__ = ["BrokerSummary", "SummaryStats"]


class SummaryStats:
    """Structure-size counters for the analytic model of section 5.1."""

    __slots__ = ("n_sr", "n_e", "n_r", "arithmetic_id_entries", "string_id_entries",
                 "string_value_bytes", "arithmetic_attributes", "string_attributes")

    def __init__(self) -> None:
        self.n_sr = 0  # total sub-range rows over all arithmetic attributes
        self.n_e = 0  # total equality rows
        self.n_r = 0  # total pattern rows over all string attributes
        self.arithmetic_id_entries = 0
        self.string_id_entries = 0
        self.string_value_bytes = 0
        self.arithmetic_attributes = 0
        self.string_attributes = 0

    def as_dict(self) -> Dict[str, int]:
        return {name: getattr(self, name) for name in self.__slots__}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        body = ", ".join(f"{k}={v}" for k, v in self.as_dict().items())
        return f"SummaryStats({body})"


class BrokerSummary:
    """Summarized subscriptions of one broker (or of a merged broker set).

    Every mutating operation (:meth:`add`, :meth:`remove`, :meth:`merge`)
    bumps :attr:`generation`, which lets compiled snapshots
    (:class:`repro.summary.compiled.CompiledMatcher`) detect staleness and
    lazily rebuild without the summary having to know about them.
    """

    __slots__ = ("schema", "precision", "_aacs", "_sacs", "_generation")

    def __init__(self, schema: Schema, precision: Precision = Precision.COARSE):
        self.schema = schema
        self.precision = precision
        self._aacs: Dict[str, AACS] = {}
        self._sacs: Dict[str, SACS] = {}
        #: Monotonic mutation counter; compiled snapshots key off it.
        self._generation = 0

    @property
    def generation(self) -> int:
        """Monotonic counter bumped on every mutation (add/remove/merge)."""
        return self._generation

    # -- insertion (dissolve a subscription) -----------------------------------

    def add(self, subscription: Subscription, sid: SubscriptionId) -> None:
        """Dissolve ``subscription`` into the per-attribute structures.

        The id's ``c3`` mask must agree with the subscription's constrained
        attributes — Algorithm 1's step 2 depends on it.
        """
        self.schema.validate_subscription(subscription)
        expected_mask = self.schema.mask_of(subscription)
        if sid.attr_mask != expected_mask:
            raise ValueError(
                f"subscription id mask {sid.attr_mask:#x} does not match the "
                f"subscription's attributes mask {expected_mask:#x}"
            )
        for name in subscription.attribute_names:
            constraints = subscription.constraints_on(name)
            if self.schema.type_of(name).is_string:
                self._add_string(name, constraints, sid)
            else:
                self._add_arithmetic(name, constraints, sid)
        self._generation += 1

    def _add_arithmetic(self, name: str, constraints, sid: SubscriptionId) -> None:
        values = intervals_for_conjunction(constraints)
        self._aacs_for(name).insert(values, sid)

    def _add_string(self, name: str, constraints, sid: SubscriptionId) -> None:
        sacs = self._sacs_for(name)
        patterns: List[StringPattern] = [pattern_for_constraint(c) for c in constraints]
        if self.precision is Precision.EXACT and len(patterns) > 1:
            # Keep the conjunction intact so the row is exactly as selective
            # as the original subscription.
            sacs.insert(ConjunctionPattern(patterns), sid)
            return
        # COARSE (paper) behavior: each constraint merges independently.
        for pattern in patterns:
            sacs.insert(pattern, sid)

    def _aacs_for(self, name: str) -> AACS:
        if self.schema.type_of(name).is_string:
            raise SchemaError(f"attribute {name!r} is a string attribute")
        structure = self._aacs.get(name)
        if structure is None:
            structure = self._aacs[name] = AACS(self.precision)
        return structure

    def _sacs_for(self, name: str) -> SACS:
        if not self.schema.type_of(name).is_string:
            raise SchemaError(f"attribute {name!r} is not a string attribute")
        structure = self._sacs.get(name)
        if structure is None:
            structure = self._sacs[name] = SACS(self.precision)
        return structure

    # -- matching (delegates to Algorithm 1) --------------------------------------

    def match(self, event: Event) -> Set[SubscriptionId]:
        from repro.summary.matching import match_event

        return match_event(self, event)

    def collect_attribute_ids(self, name: str, value) -> Set[SubscriptionId]:
        """Step 1 of Algorithm 1 for one event attribute: the id lists whose
        summarized constraint on ``name`` is satisfied by ``value``.

        An attribute name no summarized subscription constrains (absent from
        both the AACS and SACS maps) contributes nothing — events may carry
        more attributes than any subscription mentions.  An arithmetic
        attribute whose event value is not numeric raises a clear
        :class:`~repro.model.schema.SchemaError` instead of a bare
        ``ValueError``/``TypeError`` from ``float()``.
        """
        if name in self._aacs:
            try:
                numeric = float(value)  # type: ignore[arg-type]
            except (TypeError, ValueError) as exc:
                raise SchemaError(
                    f"event value {value!r} for arithmetic attribute {name!r} "
                    f"is not numeric"
                ) from exc
            return self._aacs[name].match(numeric)
        if name in self._sacs:
            return self._sacs[name].match(value)
        return set()

    # -- maintenance ------------------------------------------------------------------

    def remove(self, sid: SubscriptionId) -> bool:
        """Remove a subscription id from every structure it appears in."""
        found = False
        for name in list(self._aacs):
            if self._aacs[name].remove(sid):
                found = True
            if self._aacs[name].is_empty:
                del self._aacs[name]
        for name in list(self._sacs):
            if self._sacs[name].remove(sid):
                found = True
            if self._sacs[name].is_empty:
                del self._sacs[name]
        if found:
            self._generation += 1
        return found

    def merge(self, other: "BrokerSummary") -> None:
        """Per-attribute union with another summary (section 4.1)."""
        if other.schema != self.schema:
            raise SchemaError("cannot merge summaries over different schemas")
        if other.precision is not self.precision:
            raise ValueError("cannot merge summaries with different precision modes")
        for name, structure in other._aacs.items():
            self._aacs_for(name).merge(structure)
        for name, structure in other._sacs.items():
            self._sacs_for(name).merge(structure)
        self._generation += 1

    def copy(self) -> "BrokerSummary":
        clone = BrokerSummary(self.schema, self.precision)
        clone._aacs = {name: s.copy() for name, s in self._aacs.items()}
        clone._sacs = {name: s.copy() for name, s in self._sacs.items()}
        return clone

    @classmethod
    def merged(cls, summaries: Iterable["BrokerSummary"]) -> "BrokerSummary":
        """A fresh summary that is the union of all given ones."""
        iterator = iter(summaries)
        try:
            first = next(iterator)
        except StopIteration:
            raise ValueError("merged() needs at least one summary") from None
        result = first.copy()
        for summary in iterator:
            result.merge(summary)
        return result

    # -- introspection ------------------------------------------------------------------

    @property
    def is_empty(self) -> bool:
        return not self._aacs and not self._sacs

    def aacs(self, name: str) -> Optional[AACS]:
        return self._aacs.get(name)

    def sacs(self, name: str) -> Optional[SACS]:
        return self._sacs.get(name)

    def arithmetic_structures(self) -> Mapping[str, AACS]:
        return dict(self._aacs)

    def string_structures(self) -> Mapping[str, SACS]:
        return dict(self._sacs)

    def all_ids(self) -> Set[SubscriptionId]:
        ids: Set[SubscriptionId] = set()
        for structure in self._aacs.values():
            ids |= structure.all_ids()
        for structure in self._sacs.values():
            ids |= structure.all_ids()
        return ids

    def owner_brokers(self) -> Set[int]:
        """The c1 fields present — which brokers' subscriptions are inside."""
        return {sid.broker for sid in self.all_ids()}

    def stats(self) -> SummaryStats:
        stats = SummaryStats()
        for structure in self._aacs.values():
            stats.arithmetic_attributes += 1
            stats.n_sr += structure.n_sr
            stats.n_e += structure.n_e
            stats.arithmetic_id_entries += structure.id_list_entries()
        for structure in self._sacs.values():
            stats.string_attributes += 1
            stats.n_r += structure.n_r
            stats.string_id_entries += structure.id_list_entries()
            stats.string_value_bytes += structure.value_bytes()
        return stats

    def __repr__(self) -> str:
        return (
            f"BrokerSummary({len(self._aacs)} AACS, {len(self._sacs)} SACS, "
            f"{len(self.all_ids())} ids, {self.precision.value})"
        )
