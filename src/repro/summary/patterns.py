"""String pattern algebra for SACS (paper section 3.1).

A SACS row is a *general constraint that may cover (i.e., subsume) one or
more of the existing constraints* — e.g. ``m*t`` covers ``microsoft`` and
``micronet``.  This module gives patterns a uniform representation and the
two decision procedures SACS needs:

* ``matches(value)`` — does an event value satisfy the pattern, and
* ``covers(other)`` — is every value matching ``other`` guaranteed to match
  ``self`` (language inclusion).

All of the paper's string operators map onto :class:`GlobPattern`, a
sequence of literal pieces separated by ``*`` wildcards::

    =  "OTE"     -> pieces ("OTE",)          (no star: a literal)
    >* "OT"      -> pieces ("OT", "")        ("OT*")
    *< "SE"      -> pieces ("", "SE")        ("*SE")
    *  "net"     -> pieces ("", "net", "")   ("*net*")
    ~  "N*SE"    -> pieces ("N", "SE")

plus :class:`NotEqualsPattern` for ``!=`` and :class:`ConjunctionPattern`
(EXACT precision only) for subscriptions with several constraints on the
same string attribute.

Coverage between glob patterns is decided with the classical criterion for
``*``-pattern inclusion: the head of the coverer must prefix the coveree's
head, its tail must suffix the coveree's tail, and its middle pieces must
embed in order into the coveree's guaranteed literal chunks (greedy earliest
match).  ``covers`` is *sound* (never claims inclusion that does not hold),
which is the property SACS correctness rests on; soundness is
property-tested in ``tests/summary/test_patterns_properties.py``.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import List, Sequence, Tuple

from repro.model.constraints import Constraint, Operator

__all__ = [
    "StringPattern",
    "GlobPattern",
    "NotEqualsPattern",
    "ConjunctionPattern",
    "pattern_for_constraint",
    "pattern_hull",
    "patterns_disjoint",
]


class StringPattern(ABC):
    """Common interface for SACS row patterns."""

    __slots__ = ()

    @abstractmethod
    def matches(self, value: str) -> bool:
        """Whether an event attribute value satisfies this pattern."""

    @abstractmethod
    def covers(self, other: "StringPattern") -> bool:
        """Sound language inclusion: True implies every value matching
        ``other`` also matches ``self``."""

    @abstractmethod
    def key(self) -> Tuple:
        """A hashable canonical form (used for equality and dedup)."""

    @abstractmethod
    def wire_text(self) -> str:
        """The textual form whose length is charged by the wire codec."""

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, StringPattern):
            return NotImplemented
        return self.key() == other.key()

    def __hash__(self) -> int:
        return hash(self.key())


class GlobPattern(StringPattern):
    """Literal pieces separated by ``*`` wildcards, anchored at both ends.

    ``pieces`` always has the canonical form: one piece means a literal
    (no wildcard at all); otherwise the first piece is the required prefix,
    the last the required suffix, and interior pieces are all non-empty.
    """

    __slots__ = ("pieces",)

    def __init__(self, pieces: Sequence[str]):
        if not pieces:
            raise ValueError("a glob pattern needs at least one piece")
        canonical: List[str]
        if len(pieces) == 1:
            canonical = [pieces[0]]
        else:
            head, *middle, tail = pieces
            canonical = [head] + [piece for piece in middle if piece] + [tail]
        self.pieces: Tuple[str, ...] = tuple(canonical)

    # -- constructors ------------------------------------------------------

    @classmethod
    def literal(cls, value: str) -> "GlobPattern":
        return cls((value,))

    @classmethod
    def prefix(cls, head: str) -> "GlobPattern":
        return cls((head, ""))

    @classmethod
    def suffix(cls, tail: str) -> "GlobPattern":
        return cls(("", tail))

    @classmethod
    def contains(cls, body: str) -> "GlobPattern":
        if not body:
            return cls.universal()
        return cls(("", body, ""))

    @classmethod
    def from_glob_text(cls, text: str) -> "GlobPattern":
        """Parse a ``~`` operand: ``'*'`` is a wildcard, all else literal."""
        return cls(tuple(text.split("*")))

    @classmethod
    def universal(cls) -> "GlobPattern":
        return cls(("", ""))

    # -- properties ----------------------------------------------------------

    @property
    def is_literal(self) -> bool:
        return len(self.pieces) == 1

    @property
    def is_universal(self) -> bool:
        return len(self.pieces) == 2 and self.pieces[0] == "" and self.pieces[1] == ""

    @property
    def head(self) -> str:
        return self.pieces[0]

    @property
    def tail(self) -> str:
        return self.pieces[-1]

    @property
    def middle(self) -> Tuple[str, ...]:
        return self.pieces[1:-1]

    # -- matching --------------------------------------------------------------

    def matches(self, value: str) -> bool:
        if self.is_literal:
            return value == self.pieces[0]
        head, tail = self.head, self.tail
        if not value.startswith(head) or not value.endswith(tail):
            return False
        pos = len(head)
        end = len(value) - len(tail)
        if pos > end:
            # Head and tail would have to overlap inside the value.
            return False
        for piece in self.middle:
            found = value.find(piece, pos, end)
            if found < 0:
                return False
            pos = found + len(piece)
        return True

    # -- coverage ----------------------------------------------------------------

    def covers(self, other: StringPattern) -> bool:
        if isinstance(other, ConjunctionPattern):
            return other.covered_by(self)
        if isinstance(other, NotEqualsPattern):
            # Sigma* \ {v} fits inside a glob language only if the glob is
            # universal (globs cannot exclude exactly one string).
            return self.is_universal
        assert isinstance(other, GlobPattern)
        if other.is_literal:
            return self.matches(other.pieces[0])
        if self.is_literal:
            return False  # a literal cannot cover an infinite language
        if not other.head.startswith(self.head):
            return False
        if not other.tail.endswith(self.tail):
            return False
        if not self.middle:
            return True
        # The coveree only *guarantees* its literal chunks, in order:
        # what is left of its head after our prefix, its middle pieces,
        # and what is left of its tail before our suffix.  Our middle
        # pieces must embed greedily, each within a single chunk.
        chunks = (
            [other.head[len(self.head):]]
            + list(other.middle)
            + [other.tail[: len(other.tail) - len(self.tail)] if self.tail else other.tail]
        )
        return _embeds(self.middle, chunks)

    # -- canonical form ------------------------------------------------------------

    def key(self) -> Tuple:
        return ("glob", self.pieces)

    def wire_text(self) -> str:
        if self.is_literal:
            return self.pieces[0]
        return "*".join(self.pieces)

    def __repr__(self) -> str:
        return f"GlobPattern({self.wire_text()!r})"


def _embeds(needles: Sequence[str], chunks: Sequence[str]) -> bool:
    """Greedy in-order embedding of needles into chunks (each needle inside
    a single chunk, occurrences non-overlapping and ordered)."""
    chunk_idx = 0
    offset = 0
    for needle in needles:
        while chunk_idx < len(chunks):
            found = chunks[chunk_idx].find(needle, offset)
            if found >= 0:
                offset = found + len(needle)
                break
            chunk_idx += 1
            offset = 0
        else:
            return False
    return True


class NotEqualsPattern(StringPattern):
    """The ``!=`` constraint: everything except one string."""

    __slots__ = ("value",)

    def __init__(self, value: str):
        self.value = value

    def matches(self, value: str) -> bool:
        return value != self.value

    def covers(self, other: StringPattern) -> bool:
        # L(other) must avoid self.value entirely.
        if isinstance(other, NotEqualsPattern):
            return other.value == self.value
        if isinstance(other, ConjunctionPattern):
            return other.covered_by(self)
        assert isinstance(other, GlobPattern)
        return not other.matches(self.value)

    def key(self) -> Tuple:
        return ("ne", self.value)

    def wire_text(self) -> str:
        return f"!={self.value}"

    def __repr__(self) -> str:
        return f"NotEqualsPattern({self.value!r})"


class ConjunctionPattern(StringPattern):
    """Several patterns that must all match (EXACT precision only).

    Used when one subscription places two or more constraints on the same
    string attribute (e.g. ``symbol >* OT AND symbol *< E``); keeping the
    conjunction in a single row avoids the per-constraint over-matching of
    COARSE mode.
    """

    __slots__ = ("parts",)

    def __init__(self, parts: Sequence[StringPattern]):
        flat: List[StringPattern] = []
        for part in parts:
            if isinstance(part, ConjunctionPattern):
                flat.extend(part.parts)
            else:
                flat.append(part)
        if len(flat) < 2:
            raise ValueError("a conjunction needs at least two parts")
        self.parts: Tuple[StringPattern, ...] = tuple(
            sorted(flat, key=lambda p: p.key())
        )

    def matches(self, value: str) -> bool:
        return all(part.matches(value) for part in self.parts)

    def covers(self, other: StringPattern) -> bool:
        # Sound: the conjunction covers `other` iff every member does
        # (L(other) must fit inside the intersection).
        return all(part.covers(other) for part in self.parts)

    def covered_by(self, coverer: StringPattern) -> bool:
        # Sound: the conjunction is inside any single member's language, so
        # covering one member is enough.
        return any(coverer.covers(part) for part in self.parts)

    def key(self) -> Tuple:
        return ("and", tuple(part.key() for part in self.parts))

    def wire_text(self) -> str:
        return "&".join(part.wire_text() for part in self.parts)

    def __repr__(self) -> str:
        return f"ConjunctionPattern({', '.join(repr(p) for p in self.parts)})"


def pattern_for_constraint(constraint: Constraint) -> StringPattern:
    """Translate one string constraint into its SACS pattern."""
    op = constraint.operator
    operand = constraint.value
    assert isinstance(operand, str)
    if op is Operator.EQ:
        return GlobPattern.literal(operand)
    if op is Operator.NE:
        return NotEqualsPattern(operand)
    if op is Operator.PREFIX:
        return GlobPattern.prefix(operand)
    if op is Operator.SUFFIX:
        return GlobPattern.suffix(operand)
    if op is Operator.CONTAINS:
        return GlobPattern.contains(operand)
    if op is Operator.MATCHES:
        return GlobPattern.from_glob_text(operand)
    raise ValueError(f"not a string operator: {op!r}")


def patterns_disjoint(first: StringPattern, second: StringPattern) -> bool:
    """Sound emptiness test for pattern intersection.

    Returns True only when NO string can match both patterns — the
    advertisement machinery uses it to prove a subscription can never fire
    for an advertised event space.  A False merely means "possibly
    intersecting" (the conservative direction: we may propagate a useless
    subscription, never drop a useful one).
    """
    for pattern in (first, second):
        if isinstance(pattern, ConjunctionPattern):
            other = second if pattern is first else first
            # Sound: if any member is disjoint from the other side, the
            # conjunction (a subset of that member) is too.
            return any(patterns_disjoint(part, other) for part in pattern.parts)
    if isinstance(first, NotEqualsPattern) and isinstance(second, NotEqualsPattern):
        return False  # both exclude one string each; plenty remains
    if isinstance(first, NotEqualsPattern) or isinstance(second, NotEqualsPattern):
        ne, glob = (
            (first, second) if isinstance(first, NotEqualsPattern) else (second, first)
        )
        assert isinstance(glob, GlobPattern)
        if glob.is_literal:
            return glob.pieces[0] == ne.value
        return False  # an infinite glob language always avoids one string
    assert isinstance(first, GlobPattern) and isinstance(second, GlobPattern)
    if first.is_literal:
        return not second.matches(first.pieces[0])
    if second.is_literal:
        return not first.matches(second.pieces[0])
    # Both infinite: anchored heads/tails must be mutually compatible.
    head_ok = first.head.startswith(second.head) or second.head.startswith(first.head)
    tail_ok = first.tail.endswith(second.tail) or second.tail.endswith(first.tail)
    return not (head_ok and tail_ok)


def pattern_hull(first: StringPattern, second: StringPattern) -> StringPattern:
    """A pattern covering both inputs (used by the hybrid extension's
    aggressive compaction).  Falls back to the universal pattern."""
    if first.covers(second):
        return first
    if second.covers(first):
        return second
    if isinstance(first, GlobPattern) and isinstance(second, GlobPattern):
        head = _common_prefix(first.head, second.head)
        tail = _common_suffix(first.tail if not first.is_literal else first.head,
                              second.tail if not second.is_literal else second.head)
        candidate = GlobPattern((head, tail))
        if candidate.covers(first) and candidate.covers(second):
            return candidate
    return GlobPattern.universal()


def _common_prefix(a: str, b: str) -> str:
    limit = min(len(a), len(b))
    i = 0
    while i < limit and a[i] == b[i]:
        i += 1
    return a[:i]


def _common_suffix(a: str, b: str) -> str:
    limit = min(len(a), len(b))
    i = 0
    while i < limit and a[len(a) - 1 - i] == b[len(b) - 1 - i]:
        i += 1
    return a[len(a) - i:] if i else ""
