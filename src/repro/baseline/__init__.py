"""The broadcast-everything baseline system."""

from repro.baseline.broadcast import BroadcastPubSub

__all__ = ["BroadcastPubSub"]
