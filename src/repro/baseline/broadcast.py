"""The broadcast baseline (paper section 5.2).

"A baseline approach where all brokers broadcast their subscriptions to
all."  Every broker sends each new subscription to every other broker (the
network layer charges bytes x overlay path length, which is exactly the
paper's formula ``(brokers - 1) x average hops x brokers x sigma x
subscription size``).  Every broker therefore holds the complete global
subscription table, so events match at the publisher's broker and are
notified directly to the owning brokers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set, Tuple

from repro.broker.system import Delivery, PublishResult
from repro.model.events import Event
from repro.model.ids import IdCodec, SubscriptionId
from repro.model.schema import Schema
from repro.model.subscriptions import Subscription
from repro.network.metrics import NetworkMetrics
from repro.network.simulator import Network
from repro.network.topology import Topology
from repro.summary.matching import NaiveMatcher
from repro.summary.maintenance import SubscriptionStore
from repro.wire.codec import ValueWidth, WireCodec
from repro.wire.messages import (
    Message,
    MessageCodec,
    NotifyMessage,
    SubscriptionBatchMessage,
)

__all__ = ["BroadcastPubSub"]

DEFAULT_MAX_SUBSCRIPTIONS = 1 << 20


class _BroadcastBroker:
    """Broker state: own store + the full global table."""

    def __init__(self, broker_id: int, schema: Schema):
        self.broker_id = broker_id
        self.store = SubscriptionStore(schema, broker_id)
        self.global_table = NaiveMatcher()
        self.pending: List[Tuple[SubscriptionId, Subscription]] = []
        self.deliveries: List[Tuple[SubscriptionId, Event]] = []


class _Dispatcher:
    def __init__(self, system: "BroadcastPubSub", broker_id: int):
        self._system = system
        self._broker_id = broker_id

    def receive(self, src: int, message: Message) -> None:
        self._system._dispatch(self._broker_id, src, message)


class BroadcastPubSub:
    """The everything-everywhere baseline system."""

    def __init__(
        self,
        topology: Topology,
        schema: Schema,
        value_width: ValueWidth = ValueWidth.F32,
        max_subscriptions: int = DEFAULT_MAX_SUBSCRIPTIONS,
    ):
        self.topology = topology
        self.schema = schema
        self.id_codec = IdCodec(
            num_brokers=topology.num_brokers,
            max_subscriptions=max_subscriptions,
            num_attributes=len(schema),
        )
        self.wire = WireCodec(schema, self.id_codec, value_width)
        self.message_codec = MessageCodec(self.wire)

        self.propagation_metrics = NetworkMetrics()
        self.event_metrics = NetworkMetrics()
        self.network = Network(topology, self.message_codec, self.propagation_metrics)

        self._delivery_log: List[Delivery] = []
        self.brokers: Dict[int, _BroadcastBroker] = {}
        for broker_id in topology.brokers:
            self.brokers[broker_id] = _BroadcastBroker(broker_id, schema)
            self.network.attach(broker_id, _Dispatcher(self, broker_id))

    # -- client operations -------------------------------------------------------

    def subscribe(self, broker_id: int, subscription: Subscription) -> SubscriptionId:
        self.schema.validate_subscription(subscription)
        broker = self.brokers[broker_id]
        sid = broker.store.subscribe(subscription)
        broker.global_table.add(subscription, sid)
        broker.pending.append((sid, subscription))
        return sid

    def unsubscribe(self, broker_id: int, sid: SubscriptionId) -> bool:
        broker = self.brokers[broker_id]
        if broker.store.unsubscribe(sid) is None:
            return False
        broker.global_table.remove(sid)
        broker.pending = [(p, s) for p, s in broker.pending if p != sid]
        return True

    def run_propagation_period(self) -> Dict[str, int]:
        """Broadcast every pending subscription to every other broker."""
        self.network.metrics = self.propagation_metrics
        for broker in self.brokers.values():
            if not broker.pending:
                continue
            batch = SubscriptionBatchMessage(entries=tuple(broker.pending))
            broker.pending = []
            for other in self.topology.brokers:
                if other != broker.broker_id:
                    self.network.send(broker.broker_id, other, batch)
        self.network.run()
        return self.propagation_metrics.snapshot()

    def publish(self, broker_id: int, event: Event) -> PublishResult:
        """Match against the full local table; notify owners directly."""
        self.schema.validate_event(event)
        self.network.metrics = self.event_metrics
        before = self.event_metrics.snapshot()
        mark = len(self._delivery_log)
        broker = self.brokers[broker_id]
        matched = broker.global_table.match(event)
        by_owner: Dict[int, Set[SubscriptionId]] = {}
        for sid in matched:
            by_owner.setdefault(sid.broker, set()).add(sid)
        for owner, sids in sorted(by_owner.items()):
            if owner == broker_id:
                self._deliver(broker, sids, event)
            else:
                self.network.send(
                    broker_id, owner, NotifyMessage(event=event, matched=frozenset(sids))
                )
        self.network.run()
        after = self.event_metrics.snapshot()
        return PublishResult(
            deliveries=self._delivery_log[mark:],
            hops=after["hops"] - before["hops"],
            messages=after["messages"] - before["messages"],
            bytes_sent=after["bytes_sent"] - before["bytes_sent"],
        )

    # -- measurement helpers ------------------------------------------------------

    def total_table_storage(self) -> int:
        """Total stored-subscription bytes across brokers (n x everything)."""
        total = 0
        for broker in self.brokers.values():
            for _sid, subscription in broker.global_table.subscriptions().items():
                total += self.wire.subscription_size(subscription)
        return total

    def ground_truth_matches(self, event: Event) -> Set[Tuple[int, SubscriptionId]]:
        matches: Set[Tuple[int, SubscriptionId]] = set()
        for broker_id, broker in self.brokers.items():
            for sid, subscription in broker.store.items():
                if subscription.matches(event):
                    matches.add((broker_id, sid))
        return matches

    @property
    def delivery_log(self) -> List[Delivery]:
        return list(self._delivery_log)

    # -- internals -------------------------------------------------------------------

    def _deliver(
        self, broker: _BroadcastBroker, sids: Set[SubscriptionId], event: Event
    ) -> None:
        confirmed = broker.store.recheck(event, sids)
        for sid in sorted(confirmed):
            broker.deliveries.append((sid, event))
            self._delivery_log.append(
                Delivery(broker=broker.broker_id, sid=sid, event=event)
            )

    def _dispatch(self, dst: int, src: int, message: Message) -> None:
        broker = self.brokers[dst]
        if isinstance(message, SubscriptionBatchMessage):
            for sid, subscription in message.entries:
                broker.global_table.add(subscription, sid)
        elif isinstance(message, NotifyMessage):
            self._deliver(broker, set(message.matched), message.event)
        else:
            raise TypeError(f"broadcast broker cannot handle {type(message).__name__}")

    def __repr__(self) -> str:
        total = sum(len(broker.store) for broker in self.brokers.values())
        return f"BroadcastPubSub({self.topology.num_brokers} brokers, {total} subscriptions)"
