"""MetricsRegistry — one namespace for every counter the system keeps.

Before this module each layer hoarded its own ad-hoc integers:
:class:`~repro.broker.broker.SummaryBroker` kept ``events_examined`` /
``false_positive_notifies`` / ``duplicates_suppressed``;
:class:`~repro.network.metrics.NetworkMetrics` kept the byte/hop ledger
(twice — one instance per traffic phase); the reliable transport counted
ACKs and retransmissions; the router counted re-routes; experiments summed
whatever subset they remembered to.  :func:`collect_system_metrics` pulls
all of them into a single flat, dotted-name registry so reports, CI checks
and dashboards read one structure:

* ``broker.events_examined`` (counter) — summed over brokers
* ``broker.subscriptions`` / ``broker.kept_ids`` (gauges)
* ``net.propagation.bytes_sent`` / ``net.event.bytes_sent`` … (counters)
* ``net.reliability.acks`` / ``…retransmits`` / ``…send_failures``
* ``router.event_reroutes`` / ``router.notify_failures``
* ``trace.summary_match.dur_us`` … (histograms, when a tracer is attached)

The registry itself is plain and reusable: :class:`Counter` (monotone),
:class:`Gauge` (set-to-value), :class:`Histogram` (count/sum/min/max plus a
bounded sample for percentile estimates).  ``snapshot()`` flattens
everything into JSON-ready scalars; :class:`~repro.analysis.report
.SystemReport` embeds that snapshot.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Union

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "collect_system_metrics",
]

Number = Union[int, float]


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: Number = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        self.value += amount

    def __repr__(self) -> str:
        return f"Counter({self.name}={self.value})"


class Gauge:
    """A point-in-time level (can move both ways)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value: Number = 0

    def set(self, value: Number) -> None:
        self.value = value

    def add(self, amount: Number) -> None:
        self.value += amount

    def __repr__(self) -> str:
        return f"Gauge({self.name}={self.value})"


class Histogram:
    """Distribution summary: count/sum/min/max + a bounded value sample.

    The sample keeps the first ``sample_limit`` observations (deterministic
    and cheap; spans arrive in bounded volume per run) and is what
    :meth:`percentile` interpolates over — adequate for trace reporting,
    not for unbounded production streams.
    """

    __slots__ = ("name", "count", "total", "min", "max", "_sample", "sample_limit")

    def __init__(self, name: str, sample_limit: int = 4096):
        if sample_limit < 1:
            raise ValueError("sample_limit must be positive")
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self._sample: List[float] = []
        self.sample_limit = sample_limit

    def observe(self, value: Number) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if len(self._sample) < self.sample_limit:
            self._sample.append(value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, fraction: float) -> float:
        """Nearest-rank percentile over the retained sample (0 if empty)."""
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("fraction must be within [0, 1]")
        if not self._sample:
            return 0.0
        ordered = sorted(self._sample)
        rank = min(len(ordered) - 1, max(0, round(fraction * (len(ordered) - 1))))
        return ordered[rank]

    def summary(self) -> Dict[str, float]:
        if not self.count:
            return {"count": 0, "sum": 0.0, "mean": 0.0, "min": 0.0, "max": 0.0,
                    "p50": 0.0, "p95": 0.0}
        return {
            "count": self.count,
            "sum": round(self.total, 3),
            "mean": round(self.mean, 3),
            "min": round(self.min, 3),
            "max": round(self.max, 3),
            "p50": round(self.percentile(0.50), 3),
            "p95": round(self.percentile(0.95), 3),
        }

    def __repr__(self) -> str:
        return f"Histogram({self.name}, n={self.count}, mean={self.mean:.1f})"


class MetricsRegistry:
    """Get-or-create instrument registry with dotted names.

    A name is bound to one instrument kind for the registry's lifetime;
    asking for the same name as a different kind raises, which catches the
    classic "two modules disagree about what ``x.y`` is" drift.
    """

    def __init__(self) -> None:
        self._instruments: Dict[str, Union[Counter, Gauge, Histogram]] = {}

    def _get(self, name: str, kind):
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = self._instruments[name] = kind(name)
        elif not isinstance(instrument, kind):
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{type(instrument).__name__}, requested {kind.__name__}"
            )
        return instrument

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    def names(self) -> List[str]:
        return sorted(self._instruments)

    def __len__(self) -> int:
        return len(self._instruments)

    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    def snapshot(self) -> Dict[str, Union[Number, Dict[str, float]]]:
        """Flatten to JSON-ready scalars (histograms become summary dicts)."""
        out: Dict[str, Union[Number, Dict[str, float]]] = {}
        for name in sorted(self._instruments):
            instrument = self._instruments[name]
            if isinstance(instrument, Histogram):
                out[name] = instrument.summary()
            else:
                out[name] = instrument.value
        return out

    def render(self) -> str:
        """An aligned, human-readable dump of the snapshot."""
        rows = []
        for name, value in self.snapshot().items():
            if isinstance(value, dict):
                body = (
                    f"n={value['count']} mean={value['mean']} "
                    f"p95={value['p95']} max={value['max']}"
                )
            else:
                body = str(value)
            rows.append((name, body))
        width = max((len(name) for name, _ in rows), default=0)
        return "\n".join(f"{name.ljust(width)}  {body}" for name, body in rows)

    def __repr__(self) -> str:
        return f"MetricsRegistry({len(self._instruments)} instruments)"


# -- system collection ----------------------------------------------------------


def collect_system_metrics(system, registry: Optional[MetricsRegistry] = None) -> MetricsRegistry:
    """Snapshot a :class:`~repro.broker.system.SummaryPubSub` into a registry.

    Unifies the broker counters, both per-phase :class:`NetworkMetrics`
    ledgers (via :meth:`NetworkMetrics.contribute`), the router's
    reliability bookkeeping, the propagation engine, and — when the system
    carries a live :class:`~repro.obs.tracing.Tracer` — per-stage duration
    histograms from the recorded spans.
    """
    registry = registry if registry is not None else MetricsRegistry()

    # -- broker-layer counters (summed) and levels --
    subs = kept_ids = pending = 0
    examined = deliveries = false_positives = suppressed = 0
    for broker in system.brokers.values():
        subs += len(broker.store)
        kept_ids += len(broker.kept_summary.all_ids())
        pending += len(broker.pending)
        examined += broker.events_examined
        deliveries += len(broker.deliveries)
        false_positives += broker.false_positive_notifies
        suppressed += broker.duplicates_suppressed
    registry.gauge("broker.count").set(len(system.brokers))
    registry.gauge("broker.subscriptions").set(subs)
    registry.gauge("broker.kept_ids").set(kept_ids)
    registry.gauge("broker.pending_subscriptions").set(pending)
    registry.counter("broker.events_examined").inc(examined)
    registry.counter("broker.deliveries").inc(deliveries)
    registry.counter("broker.false_positive_notifies").inc(false_positives)
    registry.counter("broker.duplicates_suppressed").inc(suppressed)
    registry.gauge("broker.summary_storage_bytes").set(system.total_summary_storage())

    # -- network phases --
    system.propagation_metrics.contribute(registry, "net.propagation")
    system.event_metrics.contribute(registry, "net.event")
    registry.counter("net.reliability.acks").inc(
        system.propagation_metrics.acks + system.event_metrics.acks
    )
    registry.counter("net.reliability.retransmits").inc(
        system.propagation_metrics.retransmits + system.event_metrics.retransmits
    )
    registry.counter("net.reliability.send_failures").inc(
        system.propagation_metrics.send_failures + system.event_metrics.send_failures
    )
    registry.counter("net.reliability.bytes").inc(
        system.propagation_metrics.reliability_bytes
        + system.event_metrics.reliability_bytes
    )
    outstanding = getattr(system.network, "outstanding_transfers", None)
    if outstanding is not None:
        registry.gauge("net.reliability.outstanding_transfers").set(outstanding)

    # -- router / propagation engine --
    router = system.router
    registry.counter("router.event_reroutes").inc(getattr(router, "event_reroutes", 0))
    registry.counter("router.notify_failures").inc(getattr(router, "notify_failures", 0))
    registry.counter("router.searches_abandoned").inc(
        getattr(router, "searches_abandoned", 0)
    )
    registry.counter("propagation.periods_run").inc(system.propagation.periods_run)

    # -- trace-derived stage timings --
    tracer = getattr(system, "tracer", None)
    if tracer is not None and getattr(tracer, "enabled", False):
        for span in tracer.spans:
            if span.dur_us > 0.0:
                registry.histogram(f"trace.{span.kind}.dur_us").observe(span.dur_us)
            else:
                registry.counter(f"trace.{span.kind}.records").inc()
    return registry
