"""SummaryAuditor — paranoid runtime invariant checks for summary state.

At scale, the failure mode Shi et al. (arXiv:1811.07088) warn about for
aggregated subscription matching is *silent divergence*: a kept summary
that no longer reflects the raw subscription store keeps routing (or keeps
over-routing) without any test noticing until a figure comes out wrong.
The auditor turns that class of bug into an immediate, descriptive error.

Invariants checked (per broker, against its kept multi-broker summary):

1.  **AACS structure** — sub-range rows sorted by ``(lo, lo_open)`` and
    pairwise disjoint; the sorted equality-key index mirrors the equality
    map; no row carries an empty id list.
2.  **SACS structure** — no empty id lists; literal rows are keyed by
    their own literal value (and that value matches the row's pattern).
3.  **c3-mask accounting** — an id may only appear in the structure of an
    attribute whose ``c3`` bit it carries; Algorithm 1's
    ``hit-count == popcount(c3)`` termination rule is meaningless
    otherwise.  (Presence on *every* constrained attribute is checked via
    sampling, see 5 — a contradictory constraint legitimately inserts
    nothing.)
4.  **Local liveness** — every id owned by this broker that appears in
    its kept summary, pending batch or in-flight period delta must still
    exist in the raw store.  This is the check that catches the
    unsubscribe-mid-period resurrection bug (see
    ``SummaryBroker.unsubscribe``).
5.  **Sampled coverage soundness** — for a bounded sample of stored
    subscriptions, attribute values that satisfy the *original*
    constraints must be admitted by the summarized structures (COARSE may
    widen, never narrow).  Arithmetic samples come from the satisfied
    interval set; string samples from the constraint operands.
6.  **Compiled-snapshot accounting** — a fresh compiled snapshot must
    intern exactly the summary's ids with per-slot thresholds equal to
    ``popcount(c3)``.
7.  **Dedup capacity** — the publish-id LRU tables never exceed their
    configured capacity.
8.  **Removal tracking** — own ids queued for delta-mode removal
    propagation (``removed_pending`` / ``delta_removed``) are dead in the
    store, and the period-scoped block is empty between periods.
9.  **Suppression accounting** — under covered-id suppression the frontier
    and the covered set partition the store, the two cover maps are exact
    inverses, every coverer is a live frontier member, covered ids never
    appear in the kept summary or pending batch, and the ``suppressed``
    counter equals the covered-map size.

The auditor inspects private structure fields on purpose: it exists to
distrust the public API.  Enable system-wide paranoid mode with
``REPRO_PARANOID=1`` (see :class:`~repro.broker.system.SummaryPubSub`);
``REPRO_AUDIT_SAMPLE`` bounds the per-audit soundness sample (default 64).
"""

from __future__ import annotations

import itertools
import math
import os
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.model.constraints import Constraint, Operator
from repro.model.ids import SubscriptionId
from repro.model.schema import Schema
from repro.summary.intervals import Interval, intervals_for_conjunction
from repro.summary.summary import BrokerSummary

__all__ = [
    "AuditError",
    "SummaryAuditor",
    "Violation",
    "paranoid_enabled",
    "audit_sample_limit",
]

#: Environment switch for system-wide paranoid mode.
PARANOID_ENV = "REPRO_PARANOID"
#: Environment override for the per-audit soundness sample size.
SAMPLE_ENV = "REPRO_AUDIT_SAMPLE"

_FALSY = {"", "0", "false", "no", "off"}


def paranoid_enabled() -> bool:
    """Whether ``REPRO_PARANOID`` requests paranoid mode (default off)."""
    return os.environ.get(PARANOID_ENV, "").strip().lower() not in _FALSY


def audit_sample_limit(default: int = 64) -> int:
    """The configured soundness sample size (``REPRO_AUDIT_SAMPLE``)."""
    raw = os.environ.get(SAMPLE_ENV, "").strip()
    if not raw:
        return default
    try:
        value = int(raw)
    except ValueError:
        return default
    return max(0, value)


@dataclass(frozen=True)
class Violation:
    """One failed invariant."""

    check: str  # invariant family, e.g. "local-liveness"
    broker: int  # -1 for system-level findings
    detail: str

    def __str__(self) -> str:
        where = f"broker {self.broker}" if self.broker >= 0 else "system"
        return f"[{self.check}] {where}: {self.detail}"


class AuditError(AssertionError):
    """Raised when paranoid mode finds invariant violations."""

    def __init__(self, violations: Sequence[Violation]):
        self.violations = list(violations)
        lines = [f"summary audit failed ({len(self.violations)} violation(s)):"]
        lines += [f"  {violation}" for violation in self.violations]
        super().__init__("\n".join(lines))


class SummaryAuditor:
    """Checks summary/store invariants on brokers and whole systems."""

    def __init__(self, schema: Schema, sample_limit: Optional[int] = None):
        self.schema = schema
        self.sample_limit = (
            audit_sample_limit() if sample_limit is None else max(0, sample_limit)
        )
        #: Cumulative number of audits executed (observability of the
        #: observer: CI asserts the paranoid hooks actually fired).
        self.audits_run = 0

    # -- entry points --------------------------------------------------------

    def audit_broker(self, broker) -> List[Violation]:
        """All violations found on one :class:`SummaryBroker`."""
        self.audits_run += 1
        violations: List[Violation] = []
        bid = broker.broker_id
        self._check_summary_structures(broker.kept_summary, bid, violations)
        if broker.delta_summary is not None:
            self._check_summary_structures(
                broker.delta_summary, bid, violations, label="delta"
            )
        self._check_local_liveness(broker, violations)
        self._check_removal_tracking(broker, violations)
        self._check_suppression_accounting(broker, violations)
        self._check_sampled_soundness(broker, violations)
        self._check_compiled_accounting(broker, violations)
        self._check_dedup_capacity(broker, violations)
        return violations

    def audit_system(self, system) -> List[Violation]:
        """Audit every broker plus the cross-broker invariants."""
        violations: List[Violation] = []
        all_brokers = set(system.brokers)
        for broker_id in sorted(system.brokers):
            broker = system.brokers[broker_id]
            violations.extend(self.audit_broker(broker))
            if broker.broker_id not in broker.merged_brokers:
                violations.append(Violation(
                    "merged-brokers", broker_id,
                    "Merged_Brokers does not contain the broker itself",
                ))
            if not broker.merged_brokers <= all_brokers:
                violations.append(Violation(
                    "merged-brokers", broker_id,
                    f"Merged_Brokers references unknown brokers "
                    f"{sorted(broker.merged_brokers - all_brokers)}",
                ))
            if broker.delta_summary is None and broker.delta_brokers:
                violations.append(Violation(
                    "period-scratch", broker_id,
                    "delta_brokers non-empty outside a propagation period",
                ))
        return violations

    def assert_clean(self, target) -> None:
        """Audit a broker or a system; raise :class:`AuditError` on findings."""
        if hasattr(target, "brokers"):
            violations = self.audit_system(target)
        else:
            violations = self.audit_broker(target)
        if violations:
            raise AuditError(violations)

    def audit_dedup(self, system) -> None:
        """The O(#brokers) post-publish check: dedup tables in bounds."""
        violations: List[Violation] = []
        for broker in system.brokers.values():
            self._check_dedup_capacity(broker, violations)
        if violations:
            raise AuditError(violations)

    # -- invariant families ----------------------------------------------------

    def _check_summary_structures(
        self,
        summary: BrokerSummary,
        broker_id: int,
        violations: List[Violation],
        label: str = "kept",
    ) -> None:
        for name, aacs in summary.arithmetic_structures().items():
            where = f"{label} AACS[{name}]"
            rows = aacs.range_rows()
            for prev, row in zip(rows, rows[1:]):
                if _row_key(prev.interval) > _row_key(row.interval):
                    violations.append(Violation(
                        "aacs-order", broker_id,
                        f"{where} rows out of order: {prev.interval} after "
                        f"{row.interval}",
                    ))
                if prev.interval.overlaps(row.interval):
                    violations.append(Violation(
                        "aacs-disjoint", broker_id,
                        f"{where} rows overlap: {prev.interval} and {row.interval}",
                    ))
            for row in rows:
                if not row.ids:
                    violations.append(Violation(
                        "aacs-empty-row", broker_id,
                        f"{where} row {row.interval} has an empty id list",
                    ))
            eq_keys = list(aacs._eq_keys)
            if eq_keys != sorted(aacs._equalities):
                violations.append(Violation(
                    "aacs-eq-index", broker_id,
                    f"{where} sorted-key index diverged from the equality map",
                ))
            for value, ids in aacs._equalities.items():
                if not ids:
                    violations.append(Violation(
                        "aacs-empty-row", broker_id,
                        f"{where} equality row {value} has an empty id list",
                    ))
            self._check_mask_bits(name, aacs.all_ids(), broker_id, where, violations)
        for name, sacs in summary.string_structures().items():
            where = f"{label} SACS[{name}]"
            for row in sacs.rows():
                if not row.ids:
                    violations.append(Violation(
                        "sacs-empty-row", broker_id,
                        f"{where} row {row.pattern.wire_text()!r} has an "
                        f"empty id list",
                    ))
            for value, row in sacs._literals.items():
                if not row.pattern.matches(value):
                    violations.append(Violation(
                        "sacs-literal-key", broker_id,
                        f"{where} literal row keyed {value!r} does not match "
                        f"its own key",
                    ))
            self._check_mask_bits(name, sacs.all_ids(), broker_id, where, violations)

    def _check_mask_bits(
        self,
        name: str,
        ids: Iterable[SubscriptionId],
        broker_id: int,
        where: str,
        violations: List[Violation],
    ) -> None:
        if name not in self.schema:
            violations.append(Violation(
                "schema-attr", broker_id,
                f"{where}: attribute {name!r} is not in the schema",
            ))
            return
        position = self.schema.position(name)
        bad = [sid for sid in ids if not sid.constrains(position)]
        for sid in itertools.islice(bad, 3):
            violations.append(Violation(
                "c3-accounting", broker_id,
                f"{where} lists {sid} whose c3 mask does not claim "
                f"attribute {name!r} — Algorithm 1's hit-count == "
                f"popcount(c3) rule is broken for it",
            ))

    def _check_local_liveness(self, broker, violations: List[Violation]) -> None:
        live = broker.store.ids()
        bid = broker.broker_id
        dead_kept = {
            sid for sid in broker.kept_summary.all_ids()
            if sid.broker == bid and sid not in live
        }
        for sid in sorted(dead_kept)[:3]:
            violations.append(Violation(
                "local-liveness", bid,
                f"kept summary lists own id {sid} with no store entry "
                f"(unsubscribed id resurrected?)",
            ))
        dead_pending = {sid for sid, _sub in broker.pending if sid not in live}
        for sid in sorted(dead_pending)[:3]:
            violations.append(Violation(
                "local-liveness", bid,
                f"pending batch lists {sid} with no store entry",
            ))
        if broker.delta_summary is not None:
            dead_delta = {
                sid for sid in broker.delta_summary.all_ids()
                if sid.broker == bid and sid not in live
            }
            for sid in sorted(dead_delta)[:3]:
                violations.append(Violation(
                    "local-liveness", bid,
                    f"in-flight period delta lists own id {sid} with no "
                    f"store entry — finish_period() would resurrect it",
                ))

    def _check_removal_tracking(self, broker, violations: List[Violation]) -> None:
        """Delta-mode removal scheduling: an own id queued for removal
        propagation must be dead in the store (the sets over-approximate
        towards *remote* staleness, never towards retracting live ids),
        and the period-scoped removal block must be empty between periods.
        """
        bid = broker.broker_id
        live = broker.store.ids()
        for label, queued in (
            ("removed_pending", getattr(broker, "removed_pending", set())),
            ("delta_removed", getattr(broker, "delta_removed", set())),
        ):
            alive = {sid for sid in queued if sid.broker == bid and sid in live}
            for sid in sorted(alive)[:3]:
                violations.append(Violation(
                    "removal-liveness", bid,
                    f"{label} queues own id {sid} that is still live in the "
                    f"store — its removal would retract an active "
                    f"subscription from remote summaries",
                ))
        if broker.delta_summary is None and getattr(broker, "delta_removed", None):
            violations.append(Violation(
                "period-scratch", bid,
                "delta_removed non-empty outside a propagation period",
            ))

    def _check_suppression_accounting(self, broker, violations: List[Violation]) -> None:
        """Covered-id suppression: the frontier and the covered set must
        partition the store, every coverer must be a live frontier member,
        the inverse maps must agree, and covered ids must stay out of the
        kept summary and the pending batch (they never hit the wire)."""
        frontier = getattr(broker, "_frontier", None)
        if frontier is None:
            return
        bid = broker.broker_id
        live = broker.store.ids()
        coverer_of = broker._coverer_of
        covered_by = broker._covered_by
        frontier_sids = frontier.sids
        for sid in sorted(frontier_sids - live)[:3]:
            violations.append(Violation(
                "suppression-accounting", bid,
                f"frontier member {sid} has no store entry",
            ))
        for sid in sorted(set(coverer_of) & frontier_sids)[:3]:
            violations.append(Violation(
                "suppression-accounting", bid,
                f"{sid} is both covered and a frontier member",
            ))
        uncovered = live - frontier_sids - set(coverer_of)
        for sid in sorted(uncovered)[:3]:
            violations.append(Violation(
                "suppression-accounting", bid,
                f"stored id {sid} is neither a frontier member nor covered "
                f"— it would never propagate and never match",
            ))
        inverse = {
            sid: coverer
            for coverer, kids in covered_by.items()
            for sid in kids
        }
        if inverse != coverer_of:
            drift = set(inverse.items()) ^ set(coverer_of.items())
            violations.append(Violation(
                "suppression-accounting", bid,
                f"_covered_by and _coverer_of diverged on "
                f"{sorted(drift)[:3]}",
            ))
        for sid, coverer in sorted(coverer_of.items())[:self.sample_limit or 0]:
            if coverer not in frontier_sids:
                violations.append(Violation(
                    "suppression-accounting", bid,
                    f"covered id {sid} points at coverer {coverer} that "
                    f"left the frontier",
                ))
                break
        covered = set(coverer_of)
        if covered:
            own_kept = {
                sid for sid in broker.kept_summary.all_ids() if sid.broker == bid
            }
            for sid in sorted(covered & own_kept)[:3]:
                violations.append(Violation(
                    "suppression-accounting", bid,
                    f"covered id {sid} leaked into the kept summary",
                ))
            pending_sids = {sid for sid, _sub in broker.pending}
            for sid in sorted(covered & pending_sids)[:3]:
                violations.append(Violation(
                    "suppression-accounting", bid,
                    f"covered id {sid} leaked into the pending batch",
                ))
        if broker.suppressed != len(coverer_of):
            violations.append(Violation(
                "suppression-accounting", bid,
                f"suppressed counter {broker.suppressed} != covered-map "
                f"size {len(coverer_of)}",
            ))

    def _check_sampled_soundness(self, broker, violations: List[Violation]) -> None:
        if not self.sample_limit:
            return
        summary = broker.kept_summary
        kept_ids = summary.all_ids()
        bid = broker.broker_id
        sampled = 0
        for sid, subscription in broker.store.items():
            if sampled >= self.sample_limit:
                break
            if sid not in kept_ids:
                continue  # not yet propagated into the kept summary
            sampled += 1
            for name in subscription.attribute_names:
                constraints = subscription.constraints_on(name)
                for value in _sample_satisfying_values(
                    constraints, self.schema.type_of(name).is_string
                ):
                    admitted = summary.collect_attribute_ids(name, value)
                    if sid not in admitted:
                        violations.append(Violation(
                            "coverage-soundness", bid,
                            f"value {value!r} satisfies {sid}'s constraints "
                            f"on {name!r} but the summary does not admit the "
                            f"id (summaries may widen, never narrow)",
                        ))

    def _check_compiled_accounting(self, broker, violations: List[Violation]) -> None:
        compiled = getattr(broker, "_compiled", None)
        if compiled is None or compiled.is_stale:
            return  # staleness is legal: snapshots rebuild lazily
        if compiled.summary is not broker.kept_summary:
            return  # rebinding happens lazily on the next match
        bid = broker.broker_id
        ids = compiled._ids
        required = compiled._required
        if len(ids) != len(required):
            violations.append(Violation(
                "compiled-accounting", bid,
                f"compiled snapshot has {len(ids)} interned ids but "
                f"{len(required)} thresholds",
            ))
            return
        for slot, sid in enumerate(ids):
            if required[slot] != sid.attribute_count:
                violations.append(Violation(
                    "compiled-accounting", bid,
                    f"slot {slot} threshold {required[slot]} != "
                    f"popcount(c3) = {sid.attribute_count} for {sid}",
                ))
                break
        if set(ids) != broker.kept_summary.all_ids():
            violations.append(Violation(
                "compiled-accounting", bid,
                "compiled snapshot id set diverged from the summary it "
                "claims to mirror",
            ))

    def _check_dedup_capacity(self, broker, violations: List[Violation]) -> None:
        capacity = broker.dedup_capacity
        for label, size in (
            ("routed", broker.routed_dedup_size),
            ("delivered", broker.delivered_dedup_size),
        ):
            if size > capacity:
                violations.append(Violation(
                    "dedup-capacity", broker.broker_id,
                    f"{label} publish-id table holds {size} entries, "
                    f"capacity {capacity}",
                ))

    # -- parity helper (used by paranoid match and by tests) ---------------------

    @staticmethod
    def check_match_parity(broker, event) -> Optional[Violation]:
        """Compiled-vs-reference parity for one event (None when clean)."""
        from repro.summary.compiled import CompiledMatcher

        compiled = getattr(broker, "_compiled", None)
        if compiled is None or compiled.summary is not broker.kept_summary:
            compiled = CompiledMatcher(broker.kept_summary)
        fast = compiled.match(event)
        reference = broker.kept_summary.match(event)
        if fast == reference:
            return None
        return Violation(
            "match-parity", broker.broker_id,
            f"compiled/reference disagree on {event!r}: "
            f"only-compiled={sorted(fast - reference)[:3]} "
            f"only-reference={sorted(reference - fast)[:3]}",
        )


# -- sampling helpers -------------------------------------------------------------


def _row_key(interval: Interval) -> Tuple[float, int]:
    return (interval.lo, 1 if interval.lo_open else 0)


def _interval_sample(interval: Interval) -> Optional[float]:
    """One value inside ``interval`` (None only for pathological bounds)."""
    if interval.is_point:
        return interval.lo
    lo, hi = interval.lo, interval.hi
    if math.isinf(lo) and math.isinf(hi):
        return 0.0
    if math.isinf(lo):
        return hi - 1.0 if interval.hi_open else hi
    if math.isinf(hi):
        return lo + 1.0 if interval.lo_open else lo
    mid = (lo + hi) / 2.0
    return mid if interval.contains(mid) else None


def _sample_satisfying_values(
    constraints: Sequence[Constraint], is_string: bool, limit: int = 2
) -> List[object]:
    """Up to ``limit`` values satisfying an attribute's full conjunction.

    Best-effort by design: a constraint set we cannot solve contributes no
    samples (never a false violation).  Every returned value is verified
    against the ground-truth :meth:`Constraint.matches` before use.
    """
    if is_string:
        candidates: List[str] = []
        for constraint in constraints:
            operand = constraint.value
            if not isinstance(operand, str):  # pragma: no cover - defensive
                continue
            if constraint.operator is Operator.MATCHES:
                candidates.append(operand.replace("*", ""))
            elif constraint.operator is Operator.NE:
                candidates.append(operand + "_x")
            else:  # EQ, PREFIX, SUFFIX, CONTAINS: the operand satisfies itself
                candidates.append(operand)
        satisfying = []
        for value in candidates:
            if all(c.matches(value) for c in constraints):
                satisfying.append(value)
            if len(satisfying) >= limit:
                break
        return satisfying
    values: List[object] = []
    for interval in intervals_for_conjunction(constraints):
        sample = _interval_sample(interval)
        if sample is None:
            continue
        if all(c.matches(sample) for c in constraints):
            values.append(sample)
        if len(values) >= limit:
            break
    return values
