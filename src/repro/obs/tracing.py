"""Event-lifecycle tracing — structured spans for the pub/sub pipeline.

The paper's evaluation counts bytes and hops; a production system also has
to answer "*where did this event spend its time*" and "*which stage
regressed*".  :class:`Tracer` records one :class:`Span` per pipeline stage:

====================  ==========================================================
span kind             emitted by
====================  ==========================================================
``publish``           :meth:`repro.broker.routing.EventRouter.publish` — the
                      whole injected-event lifetime, ``trace_id = publish_id``
``route_hop``         one Algorithm-3 step at one broker (BROCLI hop)
``summary_match``     the kept-summary match inside a hop (reference or
                      compiled engine, named in the fields)
``notify``            one NOTIFY send to an owning broker (zero duration)
``recheck``           owner-side exact re-check + consumer hand-off
``delivery``          confirmed deliveries of one re-check (zero duration)
``propagation_period``  one full Algorithm-2 period
``summary_send``      one SummaryMessage hop inside a period (zero duration)
``full_refresh``      one full-refresh cycle
====================  ==========================================================

Every span carries its broker, a ``trace_id`` correlating all spans of one
publish (or the period ordinal for propagation spans), a start offset and a
duration in microseconds, plus free-form ``fields``.  Export is JSONL —
one span per line — consumed by :mod:`repro.analysis.tracereport`.

Overhead discipline: the system default is :data:`NULL_TRACER`, whose
``enabled`` flag is False; hot paths guard with ``if tracer.enabled`` so an
untraced run pays a single attribute check per stage.  A live tracer costs
two ``perf_counter`` calls and one list append per span.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple, Union

__all__ = ["Span", "Tracer", "NullTracer", "NULL_TRACER", "PIPELINE_KINDS"]

#: Span kinds in event-pipeline order; the trace report renders stages in
#: this order (unknown kinds sort after, alphabetically).  The vocabulary
#: is open — extensions may record their own kinds.
PIPELINE_KINDS: Tuple[str, ...] = (
    "publish",
    "route_hop",
    "summary_match",
    "batch_match",
    "notify",
    "recheck",
    "delivery",
    "propagation_period",
    "summary_send",
    "full_refresh",
)


@dataclass(frozen=True)
class Span:
    """One recorded pipeline stage."""

    kind: str
    broker: int  # -1 when no single broker is involved (e.g. a period)
    trace_id: int  # publish_id, or period ordinal for propagation spans
    t_us: float  # start, microseconds since the tracer's epoch
    dur_us: float  # 0.0 for instantaneous event records
    seq: int  # global record order (stable tie-break for sorting)
    fields: Dict[str, object] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "kind": self.kind,
            "broker": self.broker,
            "trace": self.trace_id,
            "t_us": round(self.t_us, 3),
            "dur_us": round(self.dur_us, 3),
            "seq": self.seq,
        }
        if self.fields:
            out["fields"] = self.fields
        return out


class _SpanHandle:
    """Context manager measuring one span; extra fields via :meth:`note`."""

    __slots__ = ("_tracer", "_kind", "_broker", "_trace_id", "_fields", "_start")

    def __init__(self, tracer: "Tracer", kind: str, broker: int, trace_id: int,
                 fields: Dict[str, object]):
        self._tracer = tracer
        self._kind = kind
        self._broker = broker
        self._trace_id = trace_id
        self._fields = fields
        self._start = 0.0

    def note(self, **fields: object) -> None:
        """Attach result fields discovered while the span is open."""
        self._fields.update(fields)

    def __enter__(self) -> "_SpanHandle":
        self._start = self._tracer._clock()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        tracer = self._tracer
        end = tracer._clock()
        if exc_type is not None:
            self._fields.setdefault("error", exc_type.__name__)
        tracer._append(
            self._kind,
            self._broker,
            self._trace_id,
            (self._start - tracer._epoch) * 1e6,
            (end - self._start) * 1e6,
            self._fields,
        )


class Tracer:
    """Collects :class:`Span` records; export as JSONL for the trace report."""

    enabled = True

    def __init__(self, clock=time.perf_counter):
        self._clock = clock
        self._epoch = clock()
        self.spans: List[Span] = []
        self._seq = 0

    # -- recording -----------------------------------------------------------

    def span(self, kind: str, broker: int = -1, trace_id: int = 0,
             **fields: object) -> _SpanHandle:
        """A context manager timing one stage::

            with tracer.span("summary_match", broker=3, trace_id=pid) as s:
                matched = broker.match_kept(event)
                s.note(matched=len(matched))
        """
        return _SpanHandle(self, kind, broker, trace_id, dict(fields))

    def record(self, kind: str, broker: int = -1, trace_id: int = 0,
               **fields: object) -> None:
        """An instantaneous (zero-duration) event record."""
        self._append(
            kind, broker, trace_id, (self._clock() - self._epoch) * 1e6, 0.0, fields
        )

    def _append(self, kind: str, broker: int, trace_id: int, t_us: float,
                dur_us: float, fields: Dict[str, object]) -> None:
        self.spans.append(Span(kind, broker, trace_id, t_us, dur_us, self._seq, fields))
        self._seq += 1

    # -- introspection ---------------------------------------------------------

    def __len__(self) -> int:
        return len(self.spans)

    def spans_of(self, kind: str) -> List[Span]:
        return [span for span in self.spans if span.kind == kind]

    def traces(self) -> Dict[int, List[Span]]:
        """Spans grouped by ``trace_id``, each group in record order."""
        grouped: Dict[int, List[Span]] = {}
        for span in self.spans:
            grouped.setdefault(span.trace_id, []).append(span)
        return grouped

    def clear(self) -> None:
        self.spans.clear()

    # -- export ----------------------------------------------------------------

    def jsonl_lines(self) -> Iterator[str]:
        for span in self.spans:
            yield json.dumps(span.as_dict(), sort_keys=True)

    def export_jsonl(self, path: Union[str, Path]) -> Path:
        """Write one JSON object per span; returns the written path."""
        target = Path(path)
        with target.open("w", encoding="utf-8") as handle:
            for line in self.jsonl_lines():
                handle.write(line)
                handle.write("\n")
        return target

    def __repr__(self) -> str:
        return f"Tracer({len(self.spans)} spans)"


class _NullSpanHandle:
    """Shared do-nothing span for :class:`NullTracer`."""

    __slots__ = ()

    def note(self, **fields: object) -> None:
        pass

    def __enter__(self) -> "_NullSpanHandle":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


_NULL_SPAN = _NullSpanHandle()


class NullTracer:
    """The default tracer: records nothing, costs one attribute check."""

    enabled = False
    spans: Tuple[Span, ...] = ()

    def span(self, kind: str, broker: int = -1, trace_id: int = 0,
             **fields: object) -> _NullSpanHandle:
        return _NULL_SPAN

    def record(self, kind: str, broker: int = -1, trace_id: int = 0,
               **fields: object) -> None:
        pass

    def __len__(self) -> int:
        return 0

    def __repr__(self) -> str:
        return "NullTracer()"


#: Process-wide shared no-op tracer (safe: it holds no state).
NULL_TRACER = NullTracer()
