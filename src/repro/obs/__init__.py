"""repro.obs — observability subsystem: tracing, metrics, invariant audits.

Three cooperating parts, each usable alone:

* :mod:`repro.obs.tracing` — structured per-stage spans of the event
  pipeline (publish → BROCLI hop → summary match → re-check → delivery)
  and of propagation periods, exported as JSONL for
  :mod:`repro.analysis.tracereport`.
* :mod:`repro.obs.metrics` — one :class:`MetricsRegistry` namespace
  unifying the counters previously scattered across broker, network,
  transport and router layers; embedded in
  :class:`~repro.analysis.report.SystemReport`.
* :mod:`repro.obs.audit` — the :class:`SummaryAuditor` "paranoid mode"
  (``REPRO_PARANOID=1``) that re-validates summary/store invariants after
  every mutation batch and turns silent divergence into a loud
  :class:`AuditError`.
"""

from repro.obs.audit import (
    PARANOID_ENV,
    AuditError,
    SummaryAuditor,
    Violation,
    audit_sample_limit,
    paranoid_enabled,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    collect_system_metrics,
)
from repro.obs.tracing import NULL_TRACER, PIPELINE_KINDS, NullTracer, Span, Tracer

__all__ = [
    "PARANOID_ENV",
    "AuditError",
    "SummaryAuditor",
    "Violation",
    "audit_sample_limit",
    "paranoid_enabled",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "collect_system_metrics",
    "NULL_TRACER",
    "PIPELINE_KINDS",
    "NullTracer",
    "Span",
    "Tracer",
]
