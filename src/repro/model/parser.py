"""A tiny textual subscription language.

The paper writes constraints as ``name operator value`` rows (figure 3).
This module accepts the same notation as text, so examples and workload
files stay readable::

    parse_subscription(schema, "exchange ~ N*SE AND symbol = OTE AND "
                               "price < 8.70 AND price > 8.30")

Grammar (one constraint)::

    constraint := NAME OP VALUE
    OP         := '=' | '!=' | '<' | '<=' | '>' | '>=' | '>*' | '*<' | '*' | '~'

Values are typed by the schema: arithmetic attributes parse ``int``/``float``
literals; string attributes take the rest of the text verbatim (surrounding
quotes, if present, are stripped so values may contain spaces).
"""

from __future__ import annotations

import re
from typing import List

from repro.model.constraints import Constraint, Operator
from repro.model.schema import Schema, SchemaError
from repro.model.subscriptions import Subscription
from repro.model.types import AttributeType

__all__ = ["parse_constraint", "parse_subscription", "ParseError"]


class ParseError(ValueError):
    """Raised when constraint text cannot be parsed."""


# Longest symbols first so '>=' wins over '>' and '>*' over '>'.
_OP_PATTERN = "|".join(
    re.escape(sym) for sym in sorted((op.value for op in Operator), key=len, reverse=True)
)
_CONSTRAINT_RE = re.compile(rf"^\s*([\w.\-]+)\s*({_OP_PATTERN})\s*(.+?)\s*$")
_SPLIT_RE = re.compile(r"\s+(?:AND|and)\s+|\s*;\s*")


def parse_constraint(schema: Schema, text: str) -> Constraint:
    """Parse one ``name operator value`` constraint against a schema."""
    match = _CONSTRAINT_RE.match(text)
    if match is None:
        raise ParseError(f"cannot parse constraint: {text!r}")
    name, op_symbol, raw_value = match.groups()
    try:
        attr_type = schema.type_of(name)
    except SchemaError as exc:
        raise ParseError(str(exc)) from exc
    operator = Operator.from_symbol(op_symbol)
    value = _parse_value(attr_type, raw_value)
    try:
        return Constraint(name=name, attr_type=attr_type, operator=operator, value=value)
    except (TypeError, ValueError) as exc:
        raise ParseError(f"invalid constraint {text!r}: {exc}") from exc


def parse_subscription(schema: Schema, text: str) -> Subscription:
    """Parse a conjunction of constraints joined by ``AND`` or ``;``."""
    pieces = [piece for piece in _SPLIT_RE.split(text) if piece.strip()]
    if not pieces:
        raise ParseError("empty subscription text")
    constraints: List[Constraint] = [parse_constraint(schema, piece) for piece in pieces]
    return Subscription(constraints)


def _parse_value(attr_type: AttributeType, raw: str) -> object:
    if attr_type is AttributeType.STRING:
        if len(raw) >= 2 and raw[0] == raw[-1] and raw[0] in "'\"":
            return raw[1:-1]
        return raw
    if attr_type is AttributeType.INTEGER:
        try:
            return int(raw)
        except ValueError as exc:
            raise ParseError(f"expected integer literal, got {raw!r}") from exc
    # FLOAT and DATE (as a timestamp) both accept numeric literals.
    try:
        return float(raw)
    except ValueError as exc:
        raise ParseError(f"expected numeric literal, got {raw!r}") from exc
