"""Events — the published side of the system.

Per the paper's event schema (section 2.1), an event is "an untyped set of
typed attributes", i.e. a flat record of (type, name, value) triples.  Figure
2's example::

    string  exchange = NYSE
    string  symbol   = OTE
    date    when     = Jul 1 12:05:25 EET 2003
    float   price    = 8.40
    integer volume   = 132700
    float   high     = 8.80
    float   low      = 8.22

An event may carry more attributes than a subscription mentions; matching
only requires that every attribute *the subscription constrains* is present
and satisfied.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Mapping, Optional, Tuple

from repro.model.attributes import AttributeSpec
from repro.model.types import AttributeType, AttributeValue, coerce_value

__all__ = ["Event"]

#: Interned (name, type) -> spec pairs.  Event construction from pairs or
#: keywords re-creates the same handful of specs for every event of a
#: workload; interning skips the per-instance name validation after the
#: first sighting (the first construction still validates).  Bounded by a
#: wholesale clear so a pathological caller cannot grow it without limit.
_SPEC_INTERN: Dict[Tuple[str, "AttributeType"], AttributeSpec] = {}
_SPEC_INTERN_LIMIT = 4096


def _interned_spec(name: str, typ: "AttributeType") -> AttributeSpec:
    key = (name, typ)
    spec = _SPEC_INTERN.get(key)
    if spec is None:
        if len(_SPEC_INTERN) >= _SPEC_INTERN_LIMIT:
            _SPEC_INTERN.clear()
        spec = _SPEC_INTERN[key] = AttributeSpec(name, typ)
    return spec


class Event:
    """An immutable published event.

    Built either from explicit :class:`AttributeSpec` typed values or, more
    conveniently, from plain keyword values via :meth:`Event.of` (types are
    inferred: ``str`` -> STRING, ``int`` -> INTEGER, ``float`` -> FLOAT).
    """

    __slots__ = ("_attrs", "_hash", "_key_memo")

    def __init__(self, attributes: Mapping[AttributeSpec, object]):
        attrs: Dict[str, Tuple[AttributeType, AttributeValue]] = {}
        for spec, raw in attributes.items():
            if spec.name in attrs:
                raise ValueError(f"duplicate attribute name in event: {spec.name!r}")
            attrs[spec.name] = (spec.type, coerce_value(spec.type, raw))
        self._attrs = attrs
        self._hash: Optional[int] = None
        self._key_memo: Optional[
            Tuple[Tuple[str, AttributeType, AttributeValue], ...]
        ] = None

    # -- construction -------------------------------------------------------

    @classmethod
    def of(cls, **values: object) -> "Event":
        """Build an event inferring types from the Python values."""
        attributes: Dict[AttributeSpec, object] = {}
        for name, value in values.items():
            attributes[_interned_spec(name, _infer_type(value))] = value
        return cls(attributes)

    @classmethod
    def from_pairs(
        cls, pairs: Iterable[Tuple[str, AttributeType, object]]
    ) -> "Event":
        """Build an event from explicit (name, type, value) triples."""
        return cls({_interned_spec(name, typ): value for name, typ, value in pairs})

    @classmethod
    def from_typed(
        cls, attrs: Dict[str, Tuple[AttributeType, AttributeValue]]
    ) -> "Event":
        """Trusted constructor for values already in canonical form.

        ``attrs`` is the internal name -> (type, value) layout with values
        the caller guarantees canonical (the wire codec qualifies: names
        come from validated schema specs and each value was decoded as
        its type's canonical Python representation).  Skips the
        per-attribute spec validation and coercion of ``__init__``; the
        dict is owned by the event afterwards and must not be mutated.
        """
        event = cls.__new__(cls)
        event._attrs = attrs
        event._hash = None
        event._key_memo = None
        return event

    # -- access --------------------------------------------------------------

    def __contains__(self, name: str) -> bool:
        return name in self._attrs

    def __len__(self) -> int:
        return len(self._attrs)

    def __iter__(self) -> Iterator[str]:
        return iter(self._attrs)

    def value(self, name: str) -> AttributeValue:
        return self._attrs[name][1]

    def get(self, name: str, default: Optional[AttributeValue] = None) -> Optional[AttributeValue]:
        entry = self._attrs.get(name)
        return entry[1] if entry is not None else default

    def type_of(self, name: str) -> AttributeType:
        return self._attrs[name][0]

    def items(self) -> Iterator[Tuple[str, AttributeType, AttributeValue]]:
        for name, (typ, value) in self._attrs.items():
            yield name, typ, value

    @property
    def names(self) -> Tuple[str, ...]:
        return tuple(self._attrs)

    # -- equality / hashing ---------------------------------------------------

    def _key(self) -> Tuple[Tuple[str, AttributeType, AttributeValue], ...]:
        if self._key_memo is None:
            self._key_memo = tuple(
                sorted((n, t, v) for n, (t, v) in self._attrs.items())
            )
        return self._key_memo

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Event):
            return NotImplemented
        return self._key() == other._key()

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(self._key())
        return self._hash

    def __repr__(self) -> str:
        body = ", ".join(f"{n}={v!r}" for n, (_t, v) in self._attrs.items())
        return f"Event({body})"


def _infer_type(value: object) -> AttributeType:
    if isinstance(value, bool):
        raise TypeError("boolean event attributes are not part of the schema model")
    if isinstance(value, str):
        return AttributeType.STRING
    if isinstance(value, int):
        return AttributeType.INTEGER
    if isinstance(value, float):
        return AttributeType.FLOAT
    import datetime

    if isinstance(value, datetime.datetime):
        return AttributeType.DATE
    raise TypeError(f"cannot infer attribute type for {type(value).__name__}")
