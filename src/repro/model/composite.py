"""Composite queries: disjunctions over conjunctive subscriptions.

The paper's subscription model (like Siena's) is purely conjunctive — a
subscription is an AND of constraints.  Real user interests often need OR
("OTE on any exchange, or anything cheap on NYSE").  The standard
treatment, implemented here, is disjunctive normal form at the *client*
layer: a :class:`Query` is an OR of plain subscriptions, registered as
several independent subscriptions and de-duplicated on delivery.

The textual form extends the parser's notation with ``OR`` at the lowest
precedence (AND binds tighter; no parentheses — pre-normalize to DNF)::

    parse_query(schema, "symbol = OTE OR exchange = NYSE AND price < 5")
    # -> (symbol = OTE)  |  (exchange = NYSE AND price < 5)

Delivery de-duplication needs no memory: an event matching several
branches is attributed to its *first* matching branch, so exactly one
alert fires per (query, event) regardless of how many branch
subscriptions the system delivers.
"""

from __future__ import annotations

import re
from typing import Iterator, Optional, Sequence, Tuple

from repro.model.events import Event
from repro.model.parser import ParseError, parse_subscription
from repro.model.schema import Schema
from repro.model.subscriptions import Subscription

__all__ = ["Query", "parse_query"]

_OR_SPLIT = re.compile(r"\s+(?:OR|or)\s+")


class Query:
    """An immutable disjunction of subscriptions (DNF)."""

    __slots__ = ("_branches",)

    def __init__(self, branches: Sequence[Subscription]):
        branch_tuple = tuple(branches)
        if not branch_tuple:
            raise ValueError("a query needs at least one branch")
        self._branches = branch_tuple

    @property
    def branches(self) -> Tuple[Subscription, ...]:
        return self._branches

    def __len__(self) -> int:
        return len(self._branches)

    def __iter__(self) -> Iterator[Subscription]:
        return iter(self._branches)

    # -- matching ---------------------------------------------------------------

    def matches(self, event: Event) -> bool:
        return any(branch.matches(event) for branch in self._branches)

    def first_matching_branch(self, event: Event) -> Optional[int]:
        """Index of the earliest branch matching ``event`` (None if none) —
        the canonical branch a delivery is attributed to."""
        for index, branch in enumerate(self._branches):
            if branch.matches(event):
                return index
        return None

    def is_attributed_to(self, event: Event, branch_index: int) -> bool:
        """Whether a delivery via ``branch_index`` should alert the user —
        True only for the first matching branch, giving exactly one alert
        per event however many branches matched."""
        if not 0 <= branch_index < len(self._branches):
            raise IndexError(f"no branch {branch_index}")
        return self.first_matching_branch(event) == branch_index

    # -- equality ----------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Query):
            return NotImplemented
        return self._branches == other._branches

    def __hash__(self) -> int:
        return hash(self._branches)

    def __repr__(self) -> str:
        return " OR ".join(f"({branch!r})" for branch in self._branches)


def parse_query(schema: Schema, text: str) -> Query:
    """Parse ``A AND B OR C`` notation (OR lowest precedence) to a Query."""
    pieces = [piece for piece in _OR_SPLIT.split(text) if piece.strip()]
    if not pieces:
        raise ParseError("empty query text")
    return Query([parse_subscription(schema, piece) for piece in pieces])
