"""The global, ordered attribute schema.

Paper section 3 assumptions: the set of supported attributes is predefined,
ordered, and known to every broker.  The order is what gives each attribute
its bit position in the ``c3`` field of a subscription id, so every broker
must agree on it.

:func:`stock_schema` reconstructs the 7-attribute schema used throughout the
paper's running example (figures 2-6).
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Tuple

from repro.model.attributes import AttributeSpec
from repro.model.constraints import Constraint
from repro.model.events import Event
from repro.model.subscriptions import Subscription
from repro.model.types import AttributeType

__all__ = ["Schema", "SchemaError", "stock_schema"]


class SchemaError(ValueError):
    """An event or subscription does not conform to the schema."""


class Schema:
    """An ordered, immutable set of :class:`AttributeSpec`.

    The index of an attribute in the schema is its bit position in ``c3``
    (bit 0 = first attribute), matching figure 6 where a subscription over
    attributes 3, 5 and 6 (counted right-to-left from 1) has
    ``c3 = 0b0110100``.
    """

    __slots__ = ("_specs", "_index")

    def __init__(self, specs: Iterable[AttributeSpec]):
        spec_tuple = tuple(specs)
        if not spec_tuple:
            raise SchemaError("schema must contain at least one attribute")
        index: Dict[str, int] = {}
        for position, spec in enumerate(spec_tuple):
            if spec.name in index:
                raise SchemaError(f"duplicate attribute in schema: {spec.name!r}")
            index[spec.name] = position
        self._specs = spec_tuple
        self._index = index

    # -- construction helpers ---------------------------------------------------

    @classmethod
    def of(cls, **types: AttributeType) -> "Schema":
        """Build a schema from keyword ``name=AttributeType`` pairs.

        Attribute order follows keyword order (guaranteed in Python >= 3.7).
        """
        return cls(AttributeSpec(name, typ) for name, typ in types.items())

    # -- lookups -----------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._specs)

    def __iter__(self) -> Iterator[AttributeSpec]:
        return iter(self._specs)

    def __contains__(self, name: str) -> bool:
        return name in self._index

    @property
    def specs(self) -> Tuple[AttributeSpec, ...]:
        return self._specs

    @property
    def names(self) -> Tuple[str, ...]:
        return tuple(spec.name for spec in self._specs)

    def spec(self, name: str) -> AttributeSpec:
        try:
            return self._specs[self._index[name]]
        except KeyError:
            raise SchemaError(f"attribute not in schema: {name!r}") from None

    def type_of(self, name: str) -> AttributeType:
        return self.spec(name).type

    def position(self, name: str) -> int:
        """Bit position of ``name`` in the ``c3`` attribute mask."""
        try:
            return self._index[name]
        except KeyError:
            raise SchemaError(f"attribute not in schema: {name!r}") from None

    def arithmetic_names(self) -> Tuple[str, ...]:
        return tuple(s.name for s in self._specs if s.is_arithmetic)

    def string_names(self) -> Tuple[str, ...]:
        return tuple(s.name for s in self._specs if s.is_string)

    # -- c3 attribute masks --------------------------------------------------------

    def attribute_mask(self, names: Iterable[str]) -> int:
        """The ``c3`` bitmask for a set of attribute names."""
        mask = 0
        for name in names:
            mask |= 1 << self.position(name)
        return mask

    def mask_of(self, subscription: Subscription) -> int:
        return self.attribute_mask(subscription.attribute_names)

    def names_from_mask(self, mask: int) -> List[str]:
        if mask < 0 or mask >= (1 << len(self._specs)):
            raise SchemaError(f"attribute mask {mask:#x} out of range for schema")
        return [spec.name for pos, spec in enumerate(self._specs) if mask & (1 << pos)]

    # -- validation ------------------------------------------------------------------

    def validate_event(self, event: Event) -> None:
        """Check every event attribute exists in the schema with the right type."""
        for name, typ, _value in event.items():
            expected = self.type_of(name)
            if typ is not expected:
                raise SchemaError(
                    f"event attribute {name!r} has type {typ.value}, "
                    f"schema says {expected.value}"
                )

    def validate_constraint(self, constraint: Constraint) -> None:
        expected = self.type_of(constraint.name)
        if constraint.attr_type is not expected:
            raise SchemaError(
                f"constraint on {constraint.name!r} has type "
                f"{constraint.attr_type.value}, schema says {expected.value}"
            )

    def validate_subscription(self, subscription: Subscription) -> None:
        for constraint in subscription:
            self.validate_constraint(constraint)

    # -- equality ------------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return self._specs == other._specs

    def __hash__(self) -> int:
        return hash(self._specs)

    def __repr__(self) -> str:
        return f"Schema({', '.join(str(s) for s in self._specs)})"


def stock_schema() -> Schema:
    """The 7-attribute stock-ticker schema of the paper's running example.

    Order matters: it defines the ``c3`` bit positions.  We use the order of
    figure 2 (exchange, symbol, when, price, volume, high, low).
    """
    return Schema.of(
        exchange=AttributeType.STRING,
        symbol=AttributeType.STRING,
        when=AttributeType.DATE,
        price=AttributeType.FLOAT,
        volume=AttributeType.INTEGER,
        high=AttributeType.FLOAT,
        low=AttributeType.FLOAT,
    )
