"""Bit-packed subscription ids (paper section 3.2).

A subscription id is the concatenation of three parts:

* ``c1`` — the id of the broker the subscription belongs to
  (``ceil(log2(#brokers))`` bits),
* ``c2`` — the per-broker subscription counter
  (``ceil(log2(max outstanding subscriptions))`` bits),
* ``c3`` — a bitmask with one bit per schema attribute, set when the
  subscription constrains that attribute (``nt`` bits).

The paper's figure 6 example: 4 brokers (2 bits), 8 subscriptions per broker
(3 bits), 7 attributes (7 bits); subscription 1 of broker 2 constraining
attributes 3, 5 and 6 packs as ``10 | 001 | 0110100``.

``c3`` lets the matcher know *how many* attributes a subscription constrains
without any per-subscription state: an id matched by ``k`` satisfied
attribute lists is a full match iff ``k == popcount(c3)`` (Algorithm 1,
step 2).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple

__all__ = ["SubscriptionId", "IdCodec", "popcount"]


def popcount(mask: int) -> int:
    """Number of set bits.

    Delegates to :meth:`int.bit_count` (Python >= 3.10, our CI floor),
    which compiles down to a single POPCNT-style instruction instead of
    the old ``bin(mask).count("1")`` string round-trip.  This sits on the
    Algorithm-1 hot path — every matched id pays one popcount for the
    ``hit-count == popcount(c3)`` termination test — and the swap is worth
    roughly 3x on that call alone (see the micro-benchmark note in
    ``benchmarks/test_matching_speed.py``).
    """
    return mask.bit_count()


@dataclass(frozen=True, order=True)
class SubscriptionId:
    """The decoded (c1, c2, c3) triple.

    Instances are small, immutable and totally ordered so they can live in
    the id lists of summary rows and be merged deterministically.
    """

    broker: int  # c1
    local_id: int  # c2
    attr_mask: int  # c3

    def __post_init__(self) -> None:
        if self.broker < 0:
            raise ValueError("broker id (c1) must be non-negative")
        if self.local_id < 0:
            raise ValueError("local subscription id (c2) must be non-negative")
        if self.attr_mask <= 0:
            raise ValueError("attribute mask (c3) must have at least one bit set")

    @property
    def attribute_count(self) -> int:
        """popcount(c3): the number of attributes the subscription constrains."""
        return popcount(self.attr_mask)

    def constrains(self, position: int) -> bool:
        """Whether the c3 bit for schema position ``position`` is set."""
        return bool(self.attr_mask & (1 << position))

    def __str__(self) -> str:
        return f"S(b{self.broker}.{self.local_id}, c3={self.attr_mask:#x})"


class IdCodec:
    """Packs/unpacks :class:`SubscriptionId` into fixed-width integers/bytes.

    Field widths are system constants derived from the deployment size, per
    section 3.2.  The codec is shared by all brokers (it is part of the
    schema agreement) and is what the wire layer uses to charge id bytes.
    """

    def __init__(self, num_brokers: int, max_subscriptions: int, num_attributes: int):
        if num_brokers < 1:
            raise ValueError("need at least one broker")
        if max_subscriptions < 1:
            raise ValueError("need room for at least one subscription per broker")
        if num_attributes < 1:
            raise ValueError("need at least one attribute")
        self.num_brokers = num_brokers
        self.max_subscriptions = max_subscriptions
        self.num_attributes = num_attributes
        self.c1_bits = _bits_for(num_brokers)
        self.c2_bits = _bits_for(max_subscriptions)
        self.c3_bits = num_attributes
        #: Total packed width / bytes per id on the wire.  Plain attributes
        #: (not properties): the wire layer reads them per id.
        self.total_bits = self.c1_bits + self.c2_bits + self.c3_bits
        self.byte_size = (self.total_bits + 7) // 8
        # The live id space is small (active subscriptions), so memoizing
        # the bytes<->sid conversions turns the per-id bit arithmetic of
        # every NOTIFY frame into a dict hit.  Bounded by wholesale clear.
        self._sid_to_bytes: Dict[SubscriptionId, bytes] = {}
        self._bytes_to_sid: Dict[bytes, SubscriptionId] = {}

    # -- int packing ---------------------------------------------------------------

    def pack(self, sid: SubscriptionId) -> int:
        """Pack to an integer laid out as ``c1 | c2 | c3`` (c3 in the low bits)."""
        if sid.broker >= self.num_brokers:
            raise ValueError(f"broker id {sid.broker} out of range (< {self.num_brokers})")
        if sid.local_id >= self.max_subscriptions:
            raise ValueError(
                f"local id {sid.local_id} out of range (< {self.max_subscriptions})"
            )
        if sid.attr_mask >= (1 << self.c3_bits):
            raise ValueError(f"attribute mask {sid.attr_mask:#x} needs more than c3 bits")
        return (
            (sid.broker << (self.c2_bits + self.c3_bits))
            | (sid.local_id << self.c3_bits)
            | sid.attr_mask
        )

    def unpack(self, packed: int) -> SubscriptionId:
        if packed < 0 or packed >= (1 << self.total_bits):
            raise ValueError(f"packed id {packed:#x} out of range")
        attr_mask = packed & ((1 << self.c3_bits) - 1)
        rest = packed >> self.c3_bits
        local_id = rest & ((1 << self.c2_bits) - 1)
        broker = rest >> self.c2_bits
        return SubscriptionId(broker=broker, local_id=local_id, attr_mask=attr_mask)

    # -- byte packing ------------------------------------------------------------------

    def to_bytes(self, sid: SubscriptionId) -> bytes:
        data = self._sid_to_bytes.get(sid)
        if data is None:
            data = self.pack(sid).to_bytes(self.byte_size, "big")
            if len(self._sid_to_bytes) >= 65536:
                self._sid_to_bytes.clear()
            self._sid_to_bytes[sid] = data
        return data

    def from_bytes(self, data: bytes) -> SubscriptionId:
        sid = self._bytes_to_sid.get(data)
        if sid is None:
            if len(data) != self.byte_size:
                raise ValueError(f"expected {self.byte_size} bytes, got {len(data)}")
            sid = self.unpack(int.from_bytes(data, "big"))
            if len(self._bytes_to_sid) >= 65536:
                self._bytes_to_sid.clear()
            self._bytes_to_sid[data] = sid
        return sid

    def pack_many(self, sids: Iterable[SubscriptionId]) -> bytes:
        return b"".join(self.to_bytes(sid) for sid in sids)

    def unpack_many(self, data: bytes) -> List[SubscriptionId]:
        size = self.byte_size
        if len(data) % size:
            raise ValueError(f"byte length {len(data)} not a multiple of id size {size}")
        return [self.from_bytes(data[i : i + size]) for i in range(0, len(data), size)]

    # -- introspection ----------------------------------------------------------------

    def field_widths(self) -> Tuple[int, int, int]:
        return (self.c1_bits, self.c2_bits, self.c3_bits)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, IdCodec):
            return NotImplemented
        return (
            self.num_brokers == other.num_brokers
            and self.max_subscriptions == other.max_subscriptions
            and self.num_attributes == other.num_attributes
        )

    def __hash__(self) -> int:
        return hash((self.num_brokers, self.max_subscriptions, self.num_attributes))

    def __repr__(self) -> str:
        return (
            f"IdCodec(c1={self.c1_bits}b, c2={self.c2_bits}b, c3={self.c3_bits}b, "
            f"{self.byte_size} bytes/id)"
        )


def _bits_for(count: int) -> int:
    """Rounded-up base-2 logarithm, minimum one bit (paper section 3.2)."""
    return max(1, math.ceil(math.log2(count))) if count > 1 else 1
