"""Subscription constraints and their operators.

The subscription schema (paper section 2.1) allows "all interesting
subscription-attribute data types (such as integers, strings, etc.) and all
interesting operators (=, !=, <, >, prefix '>*', suffix '*<', containment
'*', etc.)".  A subscription is a conjunction of constraints; a constraint
is an ``(attribute, operator, value)`` triple.

This module defines the operator vocabulary and the *ground-truth* matching
semantics — ``Constraint.matches(value)`` — against which the summary
structures are validated.  The summary layer never re-implements semantics;
it must only ever report a superset (COARSE mode) or the exact set (EXACT
mode) of what these predicates define.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Union

from repro.model.types import ArithmeticValue, AttributeType, AttributeValue, coerce_value

__all__ = [
    "Operator",
    "Constraint",
    "ARITHMETIC_OPERATORS",
    "STRING_OPERATORS",
    "glob_match",
]


class Operator(enum.Enum):
    """Constraint operators, with the paper's notation as values."""

    EQ = "="
    NE = "!="
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="
    PREFIX = ">*"  # value must start with the operand
    SUFFIX = "*<"  # value must end with the operand
    CONTAINS = "*"  # value must contain the operand
    MATCHES = "~"  # value must match a glob pattern with '*' wildcards,
    #               anchored at both ends (figure 3's "N*SE" constraint)

    @property
    def symbol(self) -> str:
        return self.value

    @classmethod
    def from_symbol(cls, symbol: str) -> "Operator":
        """Look up an operator by its paper notation (e.g. ``'>*'``)."""
        for op in cls:
            if op.value == symbol:
                return op
        # Accept a few common aliases so the parser is forgiving.
        aliases = {"==": cls.EQ, "<>": cls.NE, "≠": cls.NE, "≤": cls.LE, "≥": cls.GE}
        if symbol in aliases:
            return aliases[symbol]
        raise ValueError(f"unknown operator symbol: {symbol!r}")


#: Operators valid on arithmetic (integer/float/date) attributes.
ARITHMETIC_OPERATORS = frozenset(
    {Operator.EQ, Operator.NE, Operator.LT, Operator.LE, Operator.GT, Operator.GE}
)

#: Operators valid on string attributes.  EQ/NE apply to both families; the
#: ordering operators are arithmetic-only and the pattern operators are
#: string-only.
STRING_OPERATORS = frozenset(
    {
        Operator.EQ,
        Operator.NE,
        Operator.PREFIX,
        Operator.SUFFIX,
        Operator.CONTAINS,
        Operator.MATCHES,
    }
)


def glob_match(pattern: str, value: str) -> bool:
    """Anchored glob matching where ``'*'`` matches any (possibly empty) run.

    This is the semantics of the paper's pattern constraints ("N*SE" matches
    "NYSE"; "m*t" matches "microsoft").  Implemented directly (rather than
    via :mod:`fnmatch`) so that ``'?'``, ``'['`` etc. are ordinary characters
    — the paper's pattern language only has ``'*'``.
    """
    pieces = pattern.split("*")
    if len(pieces) == 1:
        return value == pattern
    head, *middle, tail = pieces
    if not value.startswith(head) or not value.endswith(tail):
        return False
    pos = len(head)
    end = len(value) - len(tail)
    for piece in middle:
        if not piece:
            continue
        found = value.find(piece, pos, end)
        if found < 0:
            return False
        pos = found + len(piece)
    return pos <= end


def _operators_for(attr_type: AttributeType) -> frozenset:
    return STRING_OPERATORS if attr_type.is_string else ARITHMETIC_OPERATORS


@dataclass(frozen=True)
class Constraint:
    """A single attribute-value constraint of a subscription.

    ``attr_type`` is carried on the constraint (rather than looked up in a
    schema at match time) because a broker dissolves subscriptions into bare
    constraints before summarizing them; each piece must be self-describing.
    """

    name: str
    attr_type: AttributeType
    operator: Operator
    value: AttributeValue

    def __post_init__(self) -> None:
        if self.operator not in _operators_for(self.attr_type):
            raise ValueError(
                f"operator {self.operator.symbol!r} is not valid for "
                f"{self.attr_type.value} attribute {self.name!r}"
            )
        object.__setattr__(self, "value", coerce_value(self.attr_type, self.value))

    # -- matching (ground truth semantics) --------------------------------

    def matches(self, value: AttributeValue) -> bool:
        """Whether an event attribute value satisfies this constraint.

        The caller is responsible for only passing values of the right
        family (the schema layer guarantees a named attribute has a single
        type, per assumption (i) of paper section 3).
        """
        op = self.operator
        if op is Operator.EQ:
            return value == self.value
        if op is Operator.NE:
            return value != self.value
        if self.attr_type.is_string:
            return self._matches_string_pattern(value)
        return self._matches_ordering(value)

    def _matches_string_pattern(self, value: AttributeValue) -> bool:
        if not isinstance(value, str):
            raise TypeError(f"string constraint on {self.name!r} got {type(value).__name__}")
        operand = self.value
        assert isinstance(operand, str)
        if self.operator is Operator.PREFIX:
            return value.startswith(operand)
        if self.operator is Operator.SUFFIX:
            return value.endswith(operand)
        if self.operator is Operator.CONTAINS:
            return operand in value
        if self.operator is Operator.MATCHES:
            return glob_match(operand, value)
        raise AssertionError(f"unhandled string operator {self.operator!r}")  # pragma: no cover

    def _matches_ordering(self, value: AttributeValue) -> bool:
        if isinstance(value, str):
            raise TypeError(f"arithmetic constraint on {self.name!r} got a str")
        bound = self.value
        assert not isinstance(bound, str)
        if self.operator is Operator.LT:
            return value < bound
        if self.operator is Operator.LE:
            return value <= bound
        if self.operator is Operator.GT:
            return value > bound
        if self.operator is Operator.GE:
            return value >= bound
        raise AssertionError(f"unhandled arithmetic operator {self.operator!r}")  # pragma: no cover

    # -- convenience constructors ------------------------------------------

    @classmethod
    def arithmetic(
        cls,
        name: str,
        operator: Union[Operator, str],
        value: ArithmeticValue,
        attr_type: AttributeType = AttributeType.FLOAT,
    ) -> "Constraint":
        if isinstance(operator, str):
            operator = Operator.from_symbol(operator)
        return cls(name=name, attr_type=attr_type, operator=operator, value=value)

    @classmethod
    def string(cls, name: str, operator: Union[Operator, str], value: str) -> "Constraint":
        if isinstance(operator, str):
            operator = Operator.from_symbol(operator)
        return cls(name=name, attr_type=AttributeType.STRING, operator=operator, value=value)

    def __str__(self) -> str:
        return f"{self.name} {self.operator.symbol} {self.value!r}"
