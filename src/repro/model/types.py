"""Attribute types for the event/subscription schema.

The paper (section 2.1, "Event and Subscription Types") models an event as an
untyped set of typed attributes, where each attribute is a ``(type, name,
value)`` triple and the type belongs to a predefined set of primitive types.
The example event of figure 2 uses strings, a date, floats and an integer.

For the purposes of the summary structures there are exactly two families of
types:

* *arithmetic* types (integers, floats, dates) — summarized by AACS
  structures of value sub-ranges, and
* *string* types — summarized by SACS structures of covering patterns.

Dates are represented internally as POSIX timestamps (seconds since the
epoch, as a float), which makes them ordinary arithmetic values; helpers for
converting to and from :class:`datetime.datetime` live here.
"""

from __future__ import annotations

import datetime as _dt
import enum
from typing import Union

__all__ = [
    "AttributeType",
    "AttributeValue",
    "ArithmeticValue",
    "coerce_value",
    "date_to_timestamp",
    "timestamp_to_date",
]

#: A value carried by an event attribute or used in a constraint.
AttributeValue = Union[int, float, str]

#: The subset of values usable with arithmetic operators.
ArithmeticValue = Union[int, float]


class AttributeType(enum.Enum):
    """The primitive attribute types supported by the schema.

    The set mirrors "primitive data types commonly found in most programming
    languages" from the paper, collapsed into the four types that appear in
    the paper's figures.
    """

    INTEGER = "integer"
    FLOAT = "float"
    STRING = "string"
    DATE = "date"

    @property
    def is_arithmetic(self) -> bool:
        """Whether values of this type are summarized by AACS structures."""
        return self is not AttributeType.STRING

    @property
    def is_string(self) -> bool:
        """Whether values of this type are summarized by SACS structures."""
        return self is AttributeType.STRING

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"AttributeType.{self.name}"


def date_to_timestamp(value: _dt.datetime) -> float:
    """Convert a datetime to its arithmetic (POSIX timestamp) representation.

    Naive datetimes are interpreted as UTC so that the conversion is
    deterministic across machines and timezones.
    """
    if value.tzinfo is None:
        value = value.replace(tzinfo=_dt.timezone.utc)
    return value.timestamp()


def timestamp_to_date(value: ArithmeticValue) -> _dt.datetime:
    """Convert a POSIX timestamp back to an aware UTC datetime."""
    return _dt.datetime.fromtimestamp(float(value), tz=_dt.timezone.utc)


def coerce_value(attr_type: AttributeType, value: object) -> AttributeValue:
    """Coerce ``value`` to the canonical Python representation of a type.

    Raises :class:`TypeError` when the value cannot represent the type.  This
    is the single validation point used by events, constraints and the wire
    codec, so the accepted conversions are deliberately conservative:
    booleans are rejected as integers (a common source of silent bugs) and
    strings are never parsed into numbers.
    """
    if attr_type is AttributeType.STRING:
        if not isinstance(value, str):
            raise TypeError(f"expected str for STRING attribute, got {type(value).__name__}")
        return value
    if attr_type is AttributeType.INTEGER:
        if isinstance(value, bool) or not isinstance(value, int):
            raise TypeError(f"expected int for INTEGER attribute, got {type(value).__name__}")
        return value
    if attr_type is AttributeType.FLOAT:
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise TypeError(f"expected number for FLOAT attribute, got {type(value).__name__}")
        return float(value)
    if attr_type is AttributeType.DATE:
        if isinstance(value, _dt.datetime):
            return date_to_timestamp(value)
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise TypeError(
                f"expected datetime or timestamp for DATE attribute, got {type(value).__name__}"
            )
        return float(value)
    raise TypeError(f"unknown attribute type: {attr_type!r}")  # pragma: no cover
