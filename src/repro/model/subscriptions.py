"""Subscriptions — conjunctions of attribute constraints.

An event matches a subscription iff *all* the subscription's constraints are
satisfied (paper section 2.1).  A subscription may place two or more
constraints on the same attribute (e.g. ``price > 8.30`` and ``price < 8.70``
together describe a range), and an event may carry attributes the
subscription never mentions.

``Subscription.matches`` is the ground-truth matcher used to validate the
summary-based matcher and to perform the home broker's exact re-check in
COARSE precision mode.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, List, Tuple

from repro.model.constraints import Constraint
from repro.model.events import Event
from repro.model.types import AttributeType

__all__ = ["Subscription"]


class Subscription:
    """An immutable conjunction of :class:`Constraint` objects."""

    __slots__ = ("_constraints", "_by_attribute", "_hash")

    def __init__(self, constraints: Iterable[Constraint]):
        constraint_list: Tuple[Constraint, ...] = tuple(constraints)
        if not constraint_list:
            raise ValueError("a subscription must have at least one constraint")
        by_attribute: Dict[str, List[Constraint]] = {}
        types: Dict[str, AttributeType] = {}
        for constraint in constraint_list:
            seen_type = types.get(constraint.name)
            if seen_type is not None and seen_type is not constraint.attr_type:
                raise ValueError(
                    f"attribute {constraint.name!r} used with two types "
                    f"({seen_type.value} and {constraint.attr_type.value})"
                )
            types[constraint.name] = constraint.attr_type
            by_attribute.setdefault(constraint.name, []).append(constraint)
        self._constraints = constraint_list
        self._by_attribute = {name: tuple(cs) for name, cs in by_attribute.items()}
        self._hash: int = hash(frozenset(constraint_list))

    # -- access ---------------------------------------------------------------

    @property
    def constraints(self) -> Tuple[Constraint, ...]:
        return self._constraints

    @property
    def attribute_names(self) -> FrozenSet[str]:
        """The set of attributes this subscription places constraints on."""
        return frozenset(self._by_attribute)

    def constraints_on(self, name: str) -> Tuple[Constraint, ...]:
        return self._by_attribute.get(name, ())

    def __len__(self) -> int:
        return len(self._constraints)

    def __iter__(self) -> Iterator[Constraint]:
        return iter(self._constraints)

    # -- matching ---------------------------------------------------------------

    def matches(self, event: Event) -> bool:
        """Ground-truth matching: every constraint satisfied, every
        constrained attribute present in the event."""
        for name, constraints in self._by_attribute.items():
            if name not in event:
                return False
            value = event.value(name)
            for constraint in constraints:
                if not constraint.matches(value):
                    return False
        return True

    # -- equality ---------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Subscription):
            return NotImplemented
        return frozenset(self._constraints) == frozenset(other._constraints)

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        body = " AND ".join(str(c) for c in self._constraints)
        return f"Subscription({body})"
