"""Attribute specifications.

The paper assumes (section 3) that:

  (i) a named attribute cannot have two different data types,
  (ii) the number of attributes in the system is predefined, as well as the
       specification of these attributes (name - type), and
  (iii) the set of supported attributes is ordered and known by each broker.

:class:`AttributeSpec` is the (name, type) pair of assumption (ii); the
ordered set of assumption (iii) is :class:`repro.model.schema.Schema`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.model.types import AttributeType

__all__ = ["AttributeSpec"]

_IDENTIFIER_EXTRAS = frozenset("_-.")


def _validate_name(name: str) -> None:
    if not name:
        raise ValueError("attribute name must be non-empty")
    if any(ch.isspace() for ch in name):
        raise ValueError(f"attribute name must not contain whitespace: {name!r}")
    if not all(ch.isalnum() or ch in _IDENTIFIER_EXTRAS for ch in name):
        raise ValueError(f"attribute name contains invalid characters: {name!r}")


@dataclass(frozen=True, order=True)
class AttributeSpec:
    """A named, typed attribute slot in the global schema.

    Instances are immutable and hashable so they can key dictionaries in the
    summary structures.  Ordering (by name, then type) gives schemas a
    canonical attribute order when one is not supplied explicitly.
    """

    name: str
    type: AttributeType

    def __post_init__(self) -> None:
        _validate_name(self.name)
        if not isinstance(self.type, AttributeType):
            raise TypeError(f"type must be an AttributeType, got {self.type!r}")

    @property
    def is_arithmetic(self) -> bool:
        return self.type.is_arithmetic

    @property
    def is_string(self) -> bool:
        return self.type.is_string

    def __str__(self) -> str:
        return f"{self.name}:{self.type.value}"
