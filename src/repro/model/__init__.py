"""Event/subscription data model (paper section 2.1 and 3.2).

Public surface: attribute types and specs, events, constraints,
subscriptions, the ordered global schema, bit-packed subscription ids, and a
small text parser for the paper's constraint notation.
"""

from repro.model.attributes import AttributeSpec
from repro.model.composite import Query, parse_query
from repro.model.constraints import (
    ARITHMETIC_OPERATORS,
    STRING_OPERATORS,
    Constraint,
    Operator,
    glob_match,
)
from repro.model.events import Event
from repro.model.ids import IdCodec, SubscriptionId, popcount
from repro.model.parser import ParseError, parse_constraint, parse_subscription
from repro.model.schema import Schema, SchemaError, stock_schema
from repro.model.subscriptions import Subscription
from repro.model.types import (
    AttributeType,
    AttributeValue,
    coerce_value,
    date_to_timestamp,
    timestamp_to_date,
)

__all__ = [
    "ARITHMETIC_OPERATORS",
    "STRING_OPERATORS",
    "AttributeSpec",
    "AttributeType",
    "AttributeValue",
    "Constraint",
    "Event",
    "IdCodec",
    "Operator",
    "ParseError",
    "Query",
    "Schema",
    "SchemaError",
    "Subscription",
    "SubscriptionId",
    "coerce_value",
    "date_to_timestamp",
    "glob_match",
    "parse_constraint",
    "parse_query",
    "parse_subscription",
    "popcount",
    "stock_schema",
    "timestamp_to_date",
]
