"""Production scenario driver: named workloads over simulator and cluster.

The paper's evaluation (and our reproduction of it through the Table-2
generator) exercises *static* subscription populations against a healthy
backbone.  Production pub/sub lives elsewhere: subscribers churn, load
spikes and breathes diurnally, a few topics soak most of the traffic,
brokers die mid-frame and rejoin.  This module turns those regimes into
**named, seeded scenarios** that run — from one ``ScenarioConfig`` — against
both the in-process simulator (:class:`repro.broker.system.SummaryPubSub`)
and the live asyncio cluster (:class:`repro.runtime.cluster.LocalCluster`,
via :mod:`repro.runtime.chaos`), and that are *checkable*: every scenario
compiles to a deterministic :class:`ScenarioScript` whose churn-aware
oracle (:func:`expected_deliveries`) knows each subscription's live window,
including windows truncated by chaos (broker kills, cold rejoins).

Structure
---------

``ScenarioConfig``
    duration (steps), target QPS, operation mix, seed, workload kind, load
    profile, popularity skew, and a declarative chaos schedule
    (:class:`ChaosEvent`).
``build_script(config)``
    resolves the config into a fully deterministic operation stream —
    per-step churn ops, publish records (dead-broker publishes re-homed at
    build time), and chaos events.  The same script drives both
    substrates, which is what makes simulator-vs-live parity a
    set-equality assertion.
``expected_deliveries(script, honor_chaos=...)``
    the oracle: ``{(publish_serial, sub_serial)}`` pairs that a correct
    system must deliver.  ``honor_chaos=True`` applies kill/restart
    windows (a cold-killed subscription stays dead; a
    restored-from-snapshot one is merely suspended while its broker is
    down); ``honor_chaos=False`` is the no-fault baseline the simulator
    must match exactly.
``run_scenario_sim(config)``
    executes the script on the simulator and returns a
    :class:`ScenarioOutcome` (the live twin is
    :func:`repro.runtime.chaos.run_scenario_live`).
``SCENARIOS``
    the named registry: flash-crowd spikes, churn storms, diurnal curves,
    skewed topic popularity, mixed IoT/news/ticker schemas, and the
    kill/restart ``failover`` drill.

Each scenario *step* is one coordinated beat: chaos first (live only),
then churn, then one propagation period, then the step's publishes, then a
settle barrier.  One period per step suffices for exactness — the
propagation algorithm folds every pending subscription into the kept
summaries before any of the step's events route (verified against
``ground_truth_matches`` on line/tree/cw24 backbones).
"""

from __future__ import annotations

import dataclasses
import math
import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Set, Tuple

from repro.broker.system import SummaryPubSub
from repro.model.constraints import Constraint, Operator
from repro.model.events import Event
from repro.model.ids import SubscriptionId
from repro.model.schema import Schema
from repro.model.subscriptions import Subscription
from repro.model.types import AttributeType
from repro.network.backbone import named_topology
from repro.network.topology import Topology
from repro.workload.distributions import weighted_choice, zipf_rank
from repro.workload.stocks import StockWorkload
from repro.wire.codec import ValueWidth

__all__ = [
    "ChaosEvent",
    "MixedSchemaWorkload",
    "PubRecord",
    "SCENARIOS",
    "ScenarioConfig",
    "ScenarioOutcome",
    "ScenarioScript",
    "SubRecord",
    "build_script",
    "chaos_schedules",
    "expected_deliveries",
    "run_scenario_sim",
    "scenario_config",
]

_OPS = ("publish", "subscribe", "unsubscribe")


# -- chaos schedule -------------------------------------------------------------


@dataclass(frozen=True)
class ChaosEvent:
    """One declarative fault, executed at the *start* of ``step``.

    ``kill``
        abrupt crash of ``broker`` — no drain, sockets torn mid-frame.
        ``snapshot=True`` persists the broker's state immediately before
        the kill (modelling a periodic snapshotter that had just run), so
        a later warm ``restart`` can restore it.
    ``restart``
        boot a fresh incarnation of ``broker`` on a *new* port.
        ``restore=True`` warm-starts from the snapshot taken by the
        matching kill; otherwise the broker cold-rejoins empty.
    ``flap``
        sever the live TCP connections on the ``broker``–``peer`` link in
        both directions; the lazy writers redial on the next frame.
    """

    step: int
    action: str  # "kill" | "restart" | "flap"
    broker: int
    snapshot: bool = False
    restore: bool = False
    peer: Optional[int] = None


# -- configuration --------------------------------------------------------------


@dataclass(frozen=True)
class ScenarioConfig:
    """One runnable scenario, complete and substrate-agnostic.

    ``mix`` is stored as ``(op, weight)`` pairs so the config stays
    hashable/frozen; :meth:`mix_weights` gives the dict view.  ``steps`` ×
    ``step_seconds`` is the nominal duration; per-step operation counts
    are ``target_qps * step_seconds`` scaled by the load profile
    (``flat``, ``spike`` — ``spike_factor`` over the middle third — or
    ``diurnal``, a half-sine day curve).  ``popularity_skew > 0`` draws
    publish symbols zipf-distributed with that exponent instead of
    uniformly.
    """

    name: str
    topology: str = "tree13"
    seed: int = 0
    steps: int = 6
    target_qps: float = 36.0
    step_seconds: float = 1.0
    mix: Tuple[Tuple[str, float], ...] = (
        ("publish", 0.7),
        ("subscribe", 0.2),
        ("unsubscribe", 0.1),
    )
    initial_subscriptions: int = 3
    workload: str = "stocks"  # "stocks" | "mixed"
    load_profile: str = "flat"  # "flat" | "spike" | "diurnal"
    spike_factor: float = 4.0
    popularity_skew: float = 0.0
    chaos: Tuple[ChaosEvent, ...] = ()

    def with_overrides(self, **changes) -> "ScenarioConfig":
        if "mix" in changes and isinstance(changes["mix"], Mapping):
            changes["mix"] = tuple(changes["mix"].items())
        return dataclasses.replace(self, **changes)

    def mix_weights(self) -> Dict[str, float]:
        weights = {op: 0.0 for op in _OPS}
        weights.update(dict(self.mix))
        return weights

    def load_factor(self, step: int) -> float:
        if self.load_profile == "flat":
            return 1.0
        if self.load_profile == "spike":
            third = max(1, self.steps // 3)
            return self.spike_factor if third <= step < 2 * third else 1.0
        if self.load_profile == "diurnal":
            return 0.25 + 0.75 * math.sin(math.pi * (step + 0.5) / self.steps)
        raise ValueError(f"unknown load profile {self.load_profile!r}")

    def ops_at(self, step: int) -> int:
        return max(1, round(self.target_qps * self.step_seconds * self.load_factor(step)))


def scenario_config(name: str, **overrides) -> ScenarioConfig:
    """Instantiate a named scenario from :data:`SCENARIOS`, with overrides."""
    try:
        config = SCENARIOS[name]()
    except KeyError:
        raise ValueError(
            f"unknown scenario {name!r} (have: {', '.join(sorted(SCENARIOS))})"
        ) from None
    return config.with_overrides(**overrides) if overrides else config


# -- the mixed IoT / news / ticker schema ---------------------------------------

_IOT_DEVICES = ("thermo-1", "thermo-2", "thermo-3", "thermo-4", "hygro-1", "hygro-2")
_IOT_SENSORS = ("temp", "humidity", "co2")
_NEWS_TOPICS = ("markets", "tech", "sports", "politics", "weather")
_NEWS_SOURCES = ("reuters", "ap", "afp", "bbc")
_NEWS_REGIONS = ("eu", "us", "apac")


def mixed_schema() -> Schema:
    """Stock ticker ∪ IoT telemetry ∪ news alert attributes, one schema.

    Events carry only their family's attributes (plus the shared ``when``
    clock); :meth:`Schema.validate_event` accepts partial events, and
    matching requires every constrained attribute to be present — so a
    news subscription can never fire on a stock tick.
    """
    return Schema.of(
        # ticker family (repro.model.stock_schema order)
        exchange=AttributeType.STRING,
        symbol=AttributeType.STRING,
        when=AttributeType.DATE,
        price=AttributeType.FLOAT,
        volume=AttributeType.INTEGER,
        high=AttributeType.FLOAT,
        low=AttributeType.FLOAT,
        # IoT telemetry family
        device=AttributeType.STRING,
        sensor=AttributeType.STRING,
        temperature=AttributeType.FLOAT,
        battery=AttributeType.INTEGER,
        # news alert family
        topic=AttributeType.STRING,
        source=AttributeType.STRING,
        urgency=AttributeType.INTEGER,
        region=AttributeType.STRING,
    )


class MixedSchemaWorkload:
    """Heterogeneous S-ToPSS-style traffic: tickers + IoT + news in one feed.

    Family picks, templates and values are all driven by one seeded RNG;
    the stock family delegates to :class:`StockWorkload` (sharing its
    price walks), so ``tick(symbol=...)`` still supports popularity skew.
    Every event includes a strictly monotone ``when`` so event identity is
    unique across the run — the scenario runners key deliveries by event.
    """

    _FAMILIES = ("stocks", "iot", "news")
    _WEIGHTS = (0.4, 0.3, 0.3)

    def __init__(self, seed: int = 0):
        self.schema: Schema = mixed_schema()
        self._rng = random.Random(f"mixed:{seed}")
        self._stocks = StockWorkload(seed=seed)
        self.symbols = self._stocks.symbols
        # Offset from StockWorkload's clock so the two never collide.
        self._clock = 2_000_000_000.0

    # -- subscriptions ----------------------------------------------------------

    def subscription(self) -> Subscription:
        family = weighted_choice(self._rng, self._FAMILIES, self._WEIGHTS)
        if family == "stocks":
            return self._stocks.subscription()
        if family == "iot":
            return self._iot_subscription()
        return self._news_subscription()

    def _iot_subscription(self) -> Subscription:
        rng = self._rng
        if rng.random() < 0.5:
            prefix = rng.choice(("thermo", "hygro", "th"))
            return Subscription(
                [
                    Constraint.string("device", Operator.PREFIX, prefix),
                    Constraint.arithmetic(
                        "temperature", Operator.GT, round(rng.uniform(5.0, 30.0), 1)
                    ),
                ]
            )
        return Subscription(
            [
                Constraint.string("sensor", Operator.EQ, rng.choice(_IOT_SENSORS)),
                Constraint(
                    "battery", AttributeType.INTEGER, Operator.LT, rng.randrange(20, 80)
                ),
            ]
        )

    def _news_subscription(self) -> Subscription:
        rng = self._rng
        if rng.random() < 0.5:
            return Subscription(
                [
                    Constraint.string("topic", Operator.EQ, rng.choice(_NEWS_TOPICS)),
                    Constraint(
                        "urgency", AttributeType.INTEGER, Operator.GT, rng.randrange(1, 8)
                    ),
                ]
            )
        return Subscription(
            [
                Constraint.string("region", Operator.EQ, rng.choice(_NEWS_REGIONS)),
                Constraint.string(
                    "source", Operator.PREFIX, rng.choice(_NEWS_SOURCES)[:3]
                ),
            ]
        )

    # -- events -----------------------------------------------------------------

    def tick(self, symbol: Optional[str] = None) -> Event:
        family = weighted_choice(self._rng, self._FAMILIES, self._WEIGHTS)
        if family == "stocks" or symbol is not None:
            return self._stocks.tick(symbol)
        if family == "iot":
            return self._iot_event()
        return self._news_event()

    def _next_when(self) -> float:
        self._clock += self._rng.uniform(0.05, 2.0)
        return self._clock

    def _iot_event(self) -> Event:
        rng = self._rng
        return Event.from_pairs(
            [
                ("device", AttributeType.STRING, rng.choice(_IOT_DEVICES)),
                ("sensor", AttributeType.STRING, rng.choice(_IOT_SENSORS)),
                ("when", AttributeType.DATE, self._next_when()),
                ("temperature", AttributeType.FLOAT, round(rng.uniform(-5.0, 40.0), 1)),
                ("battery", AttributeType.INTEGER, rng.randrange(0, 101)),
            ]
        )

    def _news_event(self) -> Event:
        rng = self._rng
        return Event.from_pairs(
            [
                ("topic", AttributeType.STRING, rng.choice(_NEWS_TOPICS)),
                ("source", AttributeType.STRING, rng.choice(_NEWS_SOURCES)),
                ("when", AttributeType.DATE, self._next_when()),
                ("urgency", AttributeType.INTEGER, rng.randrange(1, 11)),
                ("region", AttributeType.STRING, rng.choice(_NEWS_REGIONS)),
            ]
        )


def make_workload(config: ScenarioConfig):
    if config.workload == "stocks":
        return StockWorkload(seed=config.seed)
    if config.workload == "mixed":
        return MixedSchemaWorkload(seed=config.seed)
    raise ValueError(f"unknown workload kind {config.workload!r}")


# -- the compiled script --------------------------------------------------------


@dataclass
class SubRecord:
    """One subscription's lifetime in the scenario timeline.

    ``skipped`` subscriptions targeted a dead broker and were never
    installed anywhere.  ``unsub_step`` is set only for *effective*
    unsubscribes — an unsubscribe op aimed at a dead broker is recorded as
    a skipped :class:`ChurnOp` and leaves the nominal window open.
    """

    serial: int
    broker: int
    subscription: Subscription
    step: int
    unsub_step: Optional[int] = None
    skipped: bool = False


@dataclass(frozen=True)
class PubRecord:
    """One publish: ``broker`` is post-redirect (always alive at ``step``)."""

    serial: int
    broker: int
    event: Event
    step: int


@dataclass(frozen=True)
class ChurnOp:
    kind: str  # "subscribe" | "unsubscribe"
    serial: int
    skipped: bool = False


@dataclass(frozen=True)
class ScenarioStep:
    index: int
    chaos: Tuple[ChaosEvent, ...]
    churn: Tuple[ChurnOp, ...]
    publishes: Tuple[PubRecord, ...]


# (kill_step, restart_step — math.inf if never restarted, warm?)
DeadWindow = Tuple[int, float, bool]


@dataclass
class ScenarioScript:
    """The fully resolved, deterministic operation stream of one scenario."""

    config: ScenarioConfig
    topology: Topology
    schema: Schema
    subs: Dict[int, SubRecord]
    pubs: List[PubRecord]
    steps: List[ScenarioStep]
    windows: Dict[int, List[DeadWindow]]
    skipped_ops: int = 0

    @property
    def churn_ops(self) -> int:
        return sum(len(step.churn) for step in self.steps)

    def broker_alive(self, broker: int, step: int) -> bool:
        return not any(ks <= step < rs for ks, rs, _ in self.windows.get(broker, ()))

    def live_for(self, record: SubRecord, step: int, honor_chaos: bool = True) -> bool:
        """Is ``record`` deliverable for publishes of ``step``?

        Chaos semantics: a kill at step *k* snapshots (if at all) before
        that step's churn, so only subscriptions installed at steps < *k*
        are on the snapshot.  A cold restart (or no restart) loses them
        permanently; a warm restart merely suspends them for the dead
        window.  Subscriptions whose subscribe op was skipped (owner dead)
        never existed on any substrate.
        """
        if record.skipped or record.step > step:
            return False
        if record.unsub_step is not None and record.unsub_step <= step:
            return False
        if not honor_chaos:
            return True
        for kill_step, restart_step, warm in self.windows.get(record.broker, ()):
            if record.step < kill_step:
                if not warm and step >= kill_step:
                    return False
                if warm and kill_step <= step < restart_step:
                    return False
        return True


def _compile_windows(config: ScenarioConfig, topology: Topology) -> Dict[int, List[DeadWindow]]:
    """Validate the chaos schedule and compile per-broker dead windows."""
    brokers = set(topology.brokers)
    windows: Dict[int, List[DeadWindow]] = {}
    open_kill: Dict[int, ChaosEvent] = {}

    def alive(broker: int, step: int) -> bool:
        return not any(ks <= step < rs for ks, rs, _ in windows.get(broker, ()))

    for event in sorted(config.chaos, key=lambda e: e.step):
        if not 1 <= event.step < config.steps:
            raise ValueError(
                f"chaos step {event.step} outside [1, {config.steps}) — step 0 "
                "bootstraps the initial population"
            )
        if event.broker not in brokers:
            raise ValueError(f"chaos targets unknown broker {event.broker}")
        if event.action == "kill":
            if event.broker in open_kill or not alive(event.broker, event.step):
                raise ValueError(f"broker {event.broker} is already dead at step {event.step}")
            open_kill[event.broker] = event
            windows.setdefault(event.broker, []).append((event.step, math.inf, False))
        elif event.action == "restart":
            kill = open_kill.pop(event.broker, None)
            if kill is None:
                raise ValueError(f"restart of broker {event.broker} without a prior kill")
            if event.step <= kill.step:
                raise ValueError("restart must come at a later step than its kill")
            if event.restore and not kill.snapshot:
                raise ValueError(
                    f"restore of broker {event.broker} requires snapshot=True on its kill"
                )
            windows[event.broker][-1] = (kill.step, event.step, event.restore)
        elif event.action == "flap":
            if event.peer is None or not topology.graph.has_edge(event.broker, event.peer):
                raise ValueError(
                    f"flap needs a topology edge, got {event.broker}–{event.peer}"
                )
            if not (alive(event.broker, event.step) and alive(event.peer, event.step)):
                raise ValueError("flap endpoints must both be alive")
        else:
            raise ValueError(f"unknown chaos action {event.action!r}")

    for step in range(config.steps):
        if not any(alive(broker, step) for broker in brokers):
            raise ValueError(f"no broker alive at step {step}")
    return windows


def build_script(config: ScenarioConfig) -> ScenarioScript:
    """Compile a config into the deterministic per-step operation stream.

    Everything chaos-dependent is resolved *here*, from the declarative
    schedule: churn ops addressed to dead brokers are marked skipped (both
    substrates drop them identically), publishes at dead brokers are
    re-homed to the next live broker in id order (matching is
    location-independent, so this changes routing but not the oracle).
    The same config therefore produces byte-identical operation streams
    for the simulator and the live cluster — the parity contract.
    """
    topology = named_topology(config.topology)
    workload = make_workload(config)
    weights = config.mix_weights()
    if any(weights[op] < 0 for op in _OPS) or weights["publish"] <= 0:
        raise ValueError(f"bad operation mix {config.mix!r}")
    windows = _compile_windows(config, topology)
    rng = random.Random(f"ops:{config.name}:{config.seed}")
    brokers = sorted(topology.brokers)
    chaos_by_step: Dict[int, List[ChaosEvent]] = {}
    for event in sorted(config.chaos, key=lambda e: e.step):
        chaos_by_step.setdefault(event.step, []).append(event)

    script = ScenarioScript(
        config=config, topology=topology, schema=workload.schema,
        subs={}, pubs=[], steps=[], windows=windows,
    )

    def alive(broker: int, step: int) -> bool:
        return script.broker_alive(broker, step)

    def redirect(broker: int, step: int) -> int:
        if alive(broker, step):
            return broker
        start = brokers.index(broker)
        for offset in range(1, len(brokers) + 1):
            candidate = brokers[(start + offset) % len(brokers)]
            if alive(candidate, step):
                return candidate
        raise AssertionError("unreachable: _compile_windows guarantees a live broker")

    unsub_pool: List[int] = []  # serials never yet targeted by an unsubscribe

    def subscribe_op(step: int, broker: int) -> ChurnOp:
        serial = len(script.subs)
        record = SubRecord(
            serial=serial, broker=broker, subscription=workload.subscription(),
            step=step, skipped=not alive(broker, step),
        )
        script.subs[serial] = record
        if not record.skipped:
            unsub_pool.append(serial)
        else:
            script.skipped_ops += 1
        return ChurnOp("subscribe", serial, record.skipped)

    def unsubscribe_op(step: int) -> Optional[ChurnOp]:
        if not unsub_pool:
            return None
        serial = unsub_pool.pop(rng.randrange(len(unsub_pool)))
        record = script.subs[serial]
        # Unreachable owner (dead now) or a subscription already lost to a
        # cold kill: the op can't execute anywhere — record it skipped.
        skipped = not alive(record.broker, step) or not script.live_for(record, step)
        if skipped:
            script.skipped_ops += 1
        else:
            record.unsub_step = step
        return ChurnOp("unsubscribe", serial, skipped)

    def publish_op(step: int) -> PubRecord:
        target = redirect(rng.choice(brokers), step)
        if config.popularity_skew > 0:
            symbol = workload.symbols[
                zipf_rank(rng, len(workload.symbols), config.popularity_skew)
            ]
            event = workload.tick(symbol)
        else:
            event = workload.tick()
        record = PubRecord(serial=len(script.pubs), broker=target, event=event, step=step)
        script.pubs.append(record)
        return record

    for step in range(config.steps):
        churn: List[ChurnOp] = []
        publishes: List[PubRecord] = []
        if step == 0:
            for broker in brokers:
                for _ in range(config.initial_subscriptions):
                    churn.append(subscribe_op(0, broker))
        for _ in range(config.ops_at(step)):
            kind = weighted_choice(rng, _OPS, [weights[op] for op in _OPS])
            if kind == "publish":
                publishes.append(publish_op(step))
            elif kind == "subscribe":
                churn.append(subscribe_op(step, rng.choice(brokers)))
            else:
                op = unsubscribe_op(step)
                if op is not None:
                    churn.append(op)
        script.steps.append(
            ScenarioStep(
                index=step,
                chaos=tuple(chaos_by_step.get(step, ())),
                churn=tuple(churn),
                publishes=tuple(publishes),
            )
        )

    events = [pub.event for pub in script.pubs]
    if len(set(events)) != len(events):
        raise AssertionError("scenario events must be unique (runners key by event)")
    return script


# -- the oracle -----------------------------------------------------------------


def expected_deliveries(
    script: ScenarioScript, honor_chaos: bool = True
) -> Set[Tuple[int, int]]:
    """``{(publish_serial, sub_serial)}`` a correct run must deliver.

    Brute force over raw :meth:`Subscription.matches` — no summaries, no
    routing — restricted to each subscription's live window.  With
    ``honor_chaos`` the window additionally excludes dead-broker spans and
    cold-kill truncation; without it, it is the no-fault baseline the
    simulator run must match *exactly* (ratio 1.0, zero extras).
    """
    expected: Set[Tuple[int, int]] = set()
    records = list(script.subs.values())
    for pub in script.pubs:
        for record in records:
            if script.live_for(record, pub.step, honor_chaos) and record.subscription.matches(pub.event):
                expected.add((pub.serial, record.serial))
    return expected


# -- outcomes -------------------------------------------------------------------


@dataclass
class ScenarioOutcome:
    """What one scenario run produced, against what the oracle demanded."""

    scenario: str
    substrate: str  # "sim" | "live"
    expected: Set[Tuple[int, int]]
    achieved: Set[Tuple[int, int]]
    duplicates: int
    publishes: int
    churn_ops: int
    skipped_ops: int
    report: Optional[object] = None  # SystemReport (duck-typed to avoid a cycle)
    frames_balance: Optional[Tuple[int, int]] = None  # live: (enqueued_net, processed)
    metrics: Dict[str, int] = field(default_factory=dict)

    @property
    def delivered(self) -> int:
        return len(self.achieved & self.expected)

    @property
    def delivery_ratio(self) -> float:
        if not self.expected:
            return 1.0
        return self.delivered / len(self.expected)

    @property
    def extras(self) -> Set[Tuple[int, int]]:
        return self.achieved - self.expected

    @property
    def missing(self) -> Set[Tuple[int, int]]:
        return self.expected - self.achieved


# -- the simulator runner -------------------------------------------------------


def run_scenario_sim(config: ScenarioConfig) -> ScenarioOutcome:
    """Execute the script on :class:`SummaryPubSub`; chaos steps are inert.

    The simulator has no processes to kill, so chaos shows up only through
    the script (skipped ops, re-homed publishes); the outcome is gated
    against the ``honor_chaos=False`` oracle and must match it exactly.
    """
    from repro.analysis.report import build_report

    script = build_script(config)
    system = SummaryPubSub(
        script.topology, script.schema,
        value_width=ValueWidth.F64, matcher="compiled",
    )
    sid_by_serial: Dict[int, SubscriptionId] = {}
    serial_by_sid: Dict[Tuple[int, SubscriptionId], int] = {}
    event_serial = {pub.event: pub.serial for pub in script.pubs}
    achieved: Set[Tuple[int, int]] = set()
    duplicates = 0

    for step in script.steps:
        for op in step.churn:
            if op.skipped:
                continue
            record = script.subs[op.serial]
            if op.kind == "subscribe":
                sid = system.subscribe(record.broker, record.subscription)
                sid_by_serial[op.serial] = sid
                serial_by_sid[(record.broker, sid)] = op.serial
            else:
                system.unsubscribe(record.broker, sid_by_serial[op.serial])
        system.run_propagation_period()
        for pub in step.publishes:
            result = system.publish(pub.broker, pub.event)
            for delivery in result.deliveries:
                key = (event_serial[delivery.event], serial_by_sid[(delivery.broker, delivery.sid)])
                if key in achieved:
                    duplicates += 1
                else:
                    achieved.add(key)

    return ScenarioOutcome(
        scenario=config.name,
        substrate="sim",
        expected=expected_deliveries(script, honor_chaos=False),
        achieved=achieved,
        duplicates=duplicates,
        publishes=len(script.pubs),
        churn_ops=script.churn_ops,
        skipped_ops=script.skipped_ops,
        report=build_report(system),
        metrics={
            "events_examined": sum(b.events_examined for b in system.brokers.values()),
        },
    )


# -- randomized chaos schedules -------------------------------------------------


def chaos_schedules(
    topology_name: str = "line5",
    steps: int = 6,
    max_cycles: int = 2,
    max_flaps: int = 2,
):
    """A Hypothesis strategy drawing *valid* chaos schedules.

    Draws are correct by construction — ``restore`` only when the kill
    snapshotted, flaps only on real topology edges between endpoints alive
    at the flap step — and every draw is still pushed through
    :func:`_compile_windows` as a safety net (a residual invalid draw is
    rejected with ``assume``, never returned).

    Kill/restart windows are *closed* (every kill gets a restart) and
    *pairwise disjoint* (at most one broker dead at any step): that is the
    single-failure regime the live delivery gate is defined for.  Wider
    havoc — overlapping dead windows, permanent kills — partitions the
    overlay in ways the churn-aware oracle deliberately does not model
    (interest born on the far side of a partition cannot propagate until
    it heals); such schedules stay expressible by hand and are exercised
    by the sim-exact suite, which executes any compilable script.

    Returns a strategy over ``Tuple[ChaosEvent, ...]`` suitable for
    ``ScenarioConfig.with_overrides(chaos=...)``.  Hypothesis is imported
    lazily so this module stays importable in production environments
    without test dependencies.
    """
    from hypothesis import assume, strategies as st

    topology = named_topology(topology_name)
    brokers = sorted(topology.brokers)
    edges = sorted(
        (min(a, b), max(a, b)) for a, b in topology.graph.edges
    )
    # Each cycle consumes two distinct steps in [1, steps), so the step
    # budget bounds how many disjoint windows can exist at all.
    cycle_cap = min(max_cycles, len(brokers), (steps - 1) // 2)

    @st.composite
    def schedules(draw):
        events: List[ChaosEvent] = []
        windows: Dict[int, Tuple[int, float]] = {}
        cycles = draw(st.integers(0, cycle_cap))
        if cycles:
            bounds = sorted(
                draw(
                    st.lists(
                        st.integers(1, steps - 1),
                        min_size=2 * cycles, max_size=2 * cycles, unique=True,
                    )
                )
            )
            targets = draw(
                st.lists(
                    st.sampled_from(brokers),
                    min_size=cycles, max_size=cycles, unique=True,
                )
            )
            for index, broker in enumerate(targets):
                kill_step, restart_step = bounds[2 * index], bounds[2 * index + 1]
                snapshot = draw(st.booleans())
                restore = snapshot and draw(st.booleans())
                events.append(
                    ChaosEvent(
                        step=kill_step, action="kill", broker=broker,
                        snapshot=snapshot,
                    )
                )
                events.append(
                    ChaosEvent(
                        step=restart_step, action="restart", broker=broker,
                        restore=restore,
                    )
                )
                windows[broker] = (kill_step, restart_step)

        def alive_at(broker: int, step: int) -> bool:
            window = windows.get(broker)
            return window is None or not (window[0] <= step < window[1])

        for _ in range(draw(st.integers(0, max_flaps))):
            a, b = draw(st.sampled_from(edges))
            step = draw(st.integers(1, steps - 1))
            if alive_at(a, step) and alive_at(b, step):
                events.append(
                    ChaosEvent(step=step, action="flap", broker=a, peer=b)
                )

        schedule = tuple(sorted(events, key=lambda e: (e.step, e.action, e.broker)))
        probe = ScenarioConfig(
            name="chaos_probe", topology=topology_name, steps=steps,
            chaos=schedule,
        )
        try:
            _compile_windows(probe, topology)
        except ValueError:
            assume(False)
        return schedule

    return schedules()


# -- the named registry ---------------------------------------------------------


def _flash_crowd() -> ScenarioConfig:
    return ScenarioConfig(
        name="flash_crowd", topology="tree13", steps=6, target_qps=30.0,
        mix=(("publish", 0.85), ("subscribe", 0.10), ("unsubscribe", 0.05)),
        load_profile="spike", spike_factor=4.0,
    )


def _churn_storm() -> ScenarioConfig:
    return ScenarioConfig(
        name="churn_storm", topology="tree13", steps=6, target_qps=36.0,
        mix=(("publish", 0.40), ("subscribe", 0.35), ("unsubscribe", 0.25)),
        initial_subscriptions=4,
    )


def _diurnal() -> ScenarioConfig:
    return ScenarioConfig(
        name="diurnal", topology="tree13", steps=8, target_qps=30.0,
        load_profile="diurnal",
    )


def _hot_topics() -> ScenarioConfig:
    return ScenarioConfig(
        name="hot_topics", topology="tree13", steps=6, target_qps=36.0,
        popularity_skew=1.2,
    )


def _multi_schema() -> ScenarioConfig:
    return ScenarioConfig(
        name="multi_schema", topology="tree13", steps=6, target_qps=36.0,
        workload="mixed", initial_subscriptions=4,
    )


def _failover() -> ScenarioConfig:
    """Two abrupt kill/restart cycles on a line — the acceptance drill.

    Broker 2 (the middle of ``line5``, on every cross-cluster path) dies
    twice without drain and warm-restarts from its pre-kill snapshot on a
    fresh port each time; the delivery-ratio gate (≥ 0.99 vs the
    churn-aware oracle, zero duplicates) must hold throughout.
    """
    return ScenarioConfig(
        name="failover", topology="line5", steps=6, target_qps=30.0,
        mix=(("publish", 0.50), ("subscribe", 0.30), ("unsubscribe", 0.20)),
        initial_subscriptions=4,
        chaos=(
            ChaosEvent(step=1, action="kill", broker=2, snapshot=True),
            ChaosEvent(step=2, action="restart", broker=2, restore=True),
            ChaosEvent(step=3, action="kill", broker=2, snapshot=True),
            ChaosEvent(step=4, action="restart", broker=2, restore=True),
        ),
    )


SCENARIOS: Dict[str, Callable[[], ScenarioConfig]] = {
    "flash_crowd": _flash_crowd,
    "churn_storm": _churn_storm,
    "diurnal": _diurnal,
    "hot_topics": _hot_topics,
    "multi_schema": _multi_schema,
    "failover": _failover,
}
