"""Workload parameters (paper tables 1 and 2).

Table 1 defines the symbols; table 2 fixes the values used in the
evaluation:

====== ===========================================================
symbol  meaning / table-2 value
====== ===========================================================
nt      total attribute names in the schema — 10
S       outstanding subscriptions per broker — 1000
sigma   new per-broker subscriptions per period — 10 .. 1000
nsr     sub-range rows per arithmetic attribute — 2
sst     storage size of an arithmetic value — 4 bytes
sid     storage size of a subscription id — 4 bytes
ssv     average string value size — 10 bytes
q       subscription subsumption probability — 0.1 .. 0.9
====== ===========================================================

Derived properties from the prose: the average subscription or event has
``nt/2`` attributes, 40% arithmetic and 60% strings; the average
subscription/event is about 50 bytes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

__all__ = ["WorkloadConfig", "TABLE2_SIGMAS", "TABLE2_SUBSUMPTIONS", "TABLE2_POPULARITIES"]

#: sigma sweep of figures 8/11 ("10, ..., 1000").
TABLE2_SIGMAS: Tuple[int, ...] = (10, 50, 100, 250, 500, 750, 1000)

#: Subsumption probabilities of figures 8/9/11.
TABLE2_SUBSUMPTIONS: Tuple[float, ...] = (0.1, 0.25, 0.5, 0.75, 0.9)

#: Event popularities of figure 10 (percent of brokers matched).
TABLE2_POPULARITIES: Tuple[float, ...] = (0.10, 0.25, 0.50, 0.75, 0.90)


@dataclass(frozen=True)
class WorkloadConfig:
    """Table-2 defaults, overridable per experiment."""

    nt: int = 10  # total attributes in the schema
    outstanding: int = 1000  # S: subscriptions per broker
    sigma: int = 100  # new subscriptions per broker per period
    nsr: int = 2  # canonical sub-ranges per arithmetic attribute
    sst: int = 4  # bytes per arithmetic value
    sid: int = 4  # bytes per subscription id
    ssv: int = 10  # average string value bytes
    subsumption: float = 0.5  # q: probability a constraint is subsumable
    arithmetic_fraction: float = 0.4  # 40% arithmetic, 60% strings
    subscription_size: int = 50  # average encoded subscription/event bytes

    def __post_init__(self) -> None:
        if self.nt < 2:
            raise ValueError("need at least two attributes")
        if not 0.0 <= self.subsumption <= 1.0:
            raise ValueError("subsumption must be in [0, 1]")
        if not 0.0 < self.arithmetic_fraction < 1.0:
            raise ValueError("arithmetic fraction must be in (0, 1)")
        if min(self.outstanding, self.sigma, self.nsr, self.sst, self.sid, self.ssv) < 1:
            raise ValueError("counts and sizes must be positive")

    # -- derived quantities -----------------------------------------------------

    @property
    def attributes_per_subscription(self) -> int:
        """The 'average' subscription/event has nt/2 attributes."""
        return max(1, self.nt // 2)

    @property
    def num_arithmetic_attributes(self) -> int:
        """Arithmetic attributes in the schema (40% of nt)."""
        return max(1, round(self.nt * self.arithmetic_fraction))

    @property
    def num_string_attributes(self) -> int:
        return self.nt - self.num_arithmetic_attributes

    @property
    def nas(self) -> int:
        """Arithmetic attributes per average subscription (40% of nt/2)."""
        return max(1, round(self.attributes_per_subscription * self.arithmetic_fraction))

    @property
    def nss(self) -> int:
        """String attributes per average subscription (the remainder)."""
        return self.attributes_per_subscription - self.nas

    def with_overrides(self, **changes) -> "WorkloadConfig":
        """A copy with some fields replaced (frozen-dataclass convenience)."""
        import dataclasses

        return dataclasses.replace(self, **changes)
