"""A realistic stock-ticker workload for examples and integration tests.

The paper's running example (figures 2-6) is a stock market feed; this
module generates plausible traffic over :func:`repro.model.stock_schema`:
random-walk prices per symbol, exchange-filtered and band-filtered
subscriptions, volume triggers — the kinds of interests the paper's
subscription schema was designed to express.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Iterator, List, Sequence, Tuple

from repro.model.constraints import Constraint, Operator
from repro.model.events import Event
from repro.model.schema import Schema, stock_schema
from repro.model.subscriptions import Subscription
from repro.model.types import AttributeType

__all__ = ["StockWorkload", "DEFAULT_SYMBOLS", "DEFAULT_EXCHANGES"]

DEFAULT_SYMBOLS: Tuple[str, ...] = (
    "OTE", "OTEGLOBE", "IBM", "MSFT", "INTC", "ORCL", "SUNW", "HPQ",
    "NOK", "ERIC", "VOD", "T", "CW", "ATT", "DT", "FTE",
)
DEFAULT_EXCHANGES: Tuple[str, ...] = ("NYSE", "NASDAQ", "LSE", "ASE", "FWB")


@dataclass
class _SymbolState:
    price: float
    volatility: float


class StockWorkload:
    """Seeded generator of stock subscriptions and a ticking event feed."""

    def __init__(
        self,
        seed: int = 0,
        symbols: Sequence[str] = DEFAULT_SYMBOLS,
        exchanges: Sequence[str] = DEFAULT_EXCHANGES,
    ):
        self.schema: Schema = stock_schema()
        self.symbols = tuple(symbols)
        self.exchanges = tuple(exchanges)
        self._rng = random.Random(seed)
        self._clock = 1_057_061_125.0  # the paper's example timestamp
        self._state: Dict[str, _SymbolState] = {
            symbol: _SymbolState(
                price=round(self._rng.uniform(5.0, 120.0), 2),
                volatility=self._rng.uniform(0.005, 0.03),
            )
            for symbol in self.symbols
        }

    # -- subscriptions ------------------------------------------------------------

    def subscription(self) -> Subscription:
        """One of four realistic interest templates, at random."""
        pick = self._rng.randrange(4)
        if pick == 0:
            return self.price_band_subscription()
        if pick == 1:
            return self.volume_trigger_subscription()
        if pick == 2:
            return self.exchange_watch_subscription()
        return self.symbol_family_subscription()

    def price_band_subscription(self) -> Subscription:
        """Figure-3 style: a symbol within a price band."""
        symbol = self._rng.choice(self.symbols)
        mid = self._state[symbol].price
        band = mid * self._rng.uniform(0.02, 0.15)
        return Subscription(
            [
                Constraint.string("symbol", Operator.EQ, symbol),
                Constraint.arithmetic("price", Operator.GT, round(mid - band, 2)),
                Constraint.arithmetic("price", Operator.LT, round(mid + band, 2)),
            ]
        )

    def volume_trigger_subscription(self) -> Subscription:
        """Unusual-volume alert for a symbol prefix family."""
        prefix = self._rng.choice(self.symbols)[:2]
        threshold = self._rng.randrange(50_000, 500_000, 10_000)
        return Subscription(
            [
                Constraint.string("symbol", Operator.PREFIX, prefix),
                Constraint(
                    "volume", AttributeType.INTEGER, Operator.GT, threshold
                ),
            ]
        )

    def exchange_watch_subscription(self) -> Subscription:
        """Everything cheap on one exchange."""
        exchange = self._rng.choice(self.exchanges)
        ceiling = round(self._rng.uniform(5.0, 50.0), 2)
        return Subscription(
            [
                Constraint.string("exchange", Operator.EQ, exchange),
                Constraint.arithmetic("price", Operator.LT, ceiling),
            ]
        )

    def symbol_family_subscription(self) -> Subscription:
        """A containment pattern over related tickers (paper's 'm*t')."""
        symbol = self._rng.choice(self.symbols)
        body = symbol[1:3] if len(symbol) >= 3 else symbol
        floor = round(self._rng.uniform(1.0, 20.0), 2)
        return Subscription(
            [
                Constraint.string("symbol", Operator.CONTAINS, body),
                Constraint.arithmetic("low", Operator.GT, floor),
            ]
        )

    def subscriptions(self, count: int) -> List[Subscription]:
        return [self.subscription() for _ in range(count)]

    # -- events ----------------------------------------------------------------------

    def tick(self, symbol: str | None = None) -> Event:
        """The next trade event: one symbol's price random-walks.

        Pass ``symbol`` to pin the traded ticker — scenario drivers use this
        to impose a popularity skew (zipf over the symbol table) without
        re-implementing the price walk.
        """
        rng = self._rng
        if symbol is None:
            symbol = rng.choice(self.symbols)
        elif symbol not in self._state:
            raise KeyError(f"unknown symbol {symbol!r}")
        state = self._state[symbol]
        state.price = max(0.01, state.price * (1.0 + rng.gauss(0.0, state.volatility)))
        price = round(state.price, 2)
        self._clock += rng.uniform(0.05, 2.0)
        spread = price * rng.uniform(0.001, 0.05)
        return Event.from_pairs(
            [
                ("exchange", AttributeType.STRING, rng.choice(self.exchanges)),
                ("symbol", AttributeType.STRING, symbol),
                ("when", AttributeType.DATE, self._clock),
                ("price", AttributeType.FLOAT, price),
                ("volume", AttributeType.INTEGER, rng.randrange(1_000, 1_000_000)),
                ("high", AttributeType.FLOAT, round(price + spread, 2)),
                ("low", AttributeType.FLOAT, round(max(0.01, price - spread), 2)),
            ]
        )

    def ticks(self, count: int) -> List[Event]:
        return [self.tick() for _ in range(count)]

    def feed(self) -> Iterator[Event]:
        while True:
            yield self.tick()
