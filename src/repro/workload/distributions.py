"""Small sampling helpers used by the workload generators.

Kept dependency-light (``random.Random`` only) so generators are fully
deterministic under a seed and usable from property tests.
"""

from __future__ import annotations

import random
import string
from typing import List, Sequence, TypeVar

__all__ = ["zipf_rank", "random_identifier", "weighted_choice", "sample_distinct"]

T = TypeVar("T")

_IDENT_ALPHABET = string.ascii_uppercase + string.digits


def zipf_rank(rng: random.Random, n: int, exponent: float = 1.0) -> int:
    """Sample a rank in ``[0, n)`` with Zipf(exponent) popularity.

    Used for skewed attribute/value popularity (real subscription workloads
    concentrate on a few hot attributes).  Inverse-CDF over the finite
    harmonic weights; O(n) setup is fine for the n <= a few hundred we use.
    """
    if n < 1:
        raise ValueError("n must be positive")
    weights = [1.0 / (rank + 1) ** exponent for rank in range(n)]
    total = sum(weights)
    point = rng.random() * total
    acc = 0.0
    for rank, weight in enumerate(weights):
        acc += weight
        if point <= acc:
            return rank
    return n - 1


def random_identifier(rng: random.Random, length: int) -> str:
    """A random fixed-length uppercase identifier (string values, ssv bytes)."""
    return "".join(rng.choice(_IDENT_ALPHABET) for _ in range(length))


def weighted_choice(rng: random.Random, items: Sequence[T], weights: Sequence[float]) -> T:
    """Choose one item by weight (thin wrapper for readability)."""
    return rng.choices(items, weights=weights, k=1)[0]


def sample_distinct(rng: random.Random, items: Sequence[T], count: int) -> List[T]:
    """Sample ``count`` distinct items (all of them if fewer exist)."""
    if count >= len(items):
        return list(items)
    return rng.sample(list(items), count)
