"""Workload generation: Table-2 synthetic model, figure-10 popularity
probes, a realistic stock-ticker feed, and the production scenario driver
(:mod:`repro.workload.scenarios` — named churn/spike/chaos scenarios with
a churn-aware delivery oracle, runnable on simulator and live cluster)."""

from repro.workload.config import (
    TABLE2_POPULARITIES,
    TABLE2_SIGMAS,
    TABLE2_SUBSUMPTIONS,
    WorkloadConfig,
)
from repro.workload.distributions import (
    random_identifier,
    sample_distinct,
    weighted_choice,
    zipf_rank,
)
from repro.workload.generator import WorkloadGenerator
from repro.workload.popularity import (
    PROBE_ATTRIBUTE,
    draw_matched_sets,
    popularity_event,
    popularity_schema,
    probe_subscription,
)
from repro.workload.scenarios import (
    SCENARIOS,
    ChaosEvent,
    MixedSchemaWorkload,
    ScenarioConfig,
    ScenarioOutcome,
    ScenarioScript,
    build_script,
    expected_deliveries,
    run_scenario_sim,
    scenario_config,
)
from repro.workload.stocks import DEFAULT_EXCHANGES, DEFAULT_SYMBOLS, StockWorkload

__all__ = [
    "DEFAULT_EXCHANGES",
    "DEFAULT_SYMBOLS",
    "PROBE_ATTRIBUTE",
    "SCENARIOS",
    "TABLE2_POPULARITIES",
    "TABLE2_SIGMAS",
    "TABLE2_SUBSUMPTIONS",
    "ChaosEvent",
    "MixedSchemaWorkload",
    "ScenarioConfig",
    "ScenarioOutcome",
    "ScenarioScript",
    "StockWorkload",
    "WorkloadConfig",
    "WorkloadGenerator",
    "build_script",
    "expected_deliveries",
    "run_scenario_sim",
    "scenario_config",
    "draw_matched_sets",
    "popularity_event",
    "popularity_schema",
    "probe_subscription",
    "random_identifier",
    "sample_distinct",
    "weighted_choice",
    "zipf_rank",
]
