"""Workload generation: Table-2 synthetic model, figure-10 popularity
probes, and a realistic stock-ticker feed."""

from repro.workload.config import (
    TABLE2_POPULARITIES,
    TABLE2_SIGMAS,
    TABLE2_SUBSUMPTIONS,
    WorkloadConfig,
)
from repro.workload.distributions import (
    random_identifier,
    sample_distinct,
    weighted_choice,
    zipf_rank,
)
from repro.workload.generator import WorkloadGenerator
from repro.workload.popularity import (
    PROBE_ATTRIBUTE,
    draw_matched_sets,
    popularity_event,
    popularity_schema,
    probe_subscription,
)
from repro.workload.stocks import DEFAULT_EXCHANGES, DEFAULT_SYMBOLS, StockWorkload

__all__ = [
    "DEFAULT_EXCHANGES",
    "DEFAULT_SYMBOLS",
    "PROBE_ATTRIBUTE",
    "TABLE2_POPULARITIES",
    "TABLE2_SIGMAS",
    "TABLE2_SUBSUMPTIONS",
    "StockWorkload",
    "WorkloadConfig",
    "WorkloadGenerator",
    "draw_matched_sets",
    "popularity_event",
    "popularity_schema",
    "probe_subscription",
    "random_identifier",
    "sample_distinct",
    "weighted_choice",
    "zipf_rank",
]
