"""The Table-2 synthetic workload generator.

Reproduces the paper's workload model (section 5.2):

* a schema of ``nt`` attributes, 40% arithmetic / 60% strings;
* subscriptions with ``nt/2`` attributes each (same 40/60 split);
* a *subsumption probability* ``q`` controlling how compactable the
  constraint population is: "In arithmetic attributes, all subsumed values
  fall into the nsr ranges of the attribute.  The non-subsumed values are
  represented as different values (specified with equality operators
  outside the ranges)."

Concretely, per arithmetic attribute we fix ``nsr`` canonical value
ranges; with probability ``q`` a constraint is a random sub-range of a
canonical range (so COARSE summaries merge it into at most ``nsr`` rows),
otherwise it is an equality on a fresh value far outside the ranges (a new
``AACS_E`` row).  Per string attribute we fix ``nsr`` canonical prefix
families ``grp<k>``; a subsumed constraint is a prefix constraint inside a
family (SACS collapses the family to one row), a non-subsumed one is an
equality on a fresh ``ssv``-byte identifier.

Everything is driven by a seeded :class:`random.Random`, so workloads are
reproducible and shareable between the three systems under test.
"""

from __future__ import annotations

import random
from typing import Iterator, List, Tuple

from repro.model.attributes import AttributeSpec
from repro.model.constraints import Constraint, Operator
from repro.model.events import Event
from repro.model.schema import Schema
from repro.model.subscriptions import Subscription
from repro.model.types import AttributeType
from repro.workload.config import WorkloadConfig
from repro.workload.distributions import random_identifier, sample_distinct

__all__ = ["WorkloadGenerator"]

#: Width of each canonical sub-range.
_RANGE_WIDTH = 50.0
#: Spacing between canonical sub-ranges of one attribute.
_RANGE_STRIDE = 100.0
#: Per-attribute offset so different attributes use different value spaces.
_ATTR_STRIDE = 1000.0
#: Fresh (non-subsumed) equality values live far above every range.
_UNIQUE_FLOOR = 10_000_000.0
_UNIQUE_SPAN = 80_000_000.0


class WorkloadGenerator:
    """Deterministic generator of Table-2 subscriptions and events."""

    def __init__(self, config: WorkloadConfig, seed: int = 0):
        self.config = config
        self._rng = random.Random(seed)
        self.schema = self._build_schema(config)
        self._arith_names = self.schema.arithmetic_names()
        self._string_names = self.schema.string_names()

    @staticmethod
    def _build_schema(config: WorkloadConfig) -> Schema:
        specs: List[AttributeSpec] = []
        for index in range(config.num_arithmetic_attributes):
            specs.append(AttributeSpec(f"num{index}", AttributeType.FLOAT))
        for index in range(config.num_string_attributes):
            specs.append(AttributeSpec(f"str{index}", AttributeType.STRING))
        return Schema(specs)

    # -- canonical (subsumable) value families -------------------------------------

    def canonical_range(self, attr_index: int, range_index: int) -> Tuple[float, float]:
        """The ``range_index``-th canonical sub-range of an attribute."""
        lo = _ATTR_STRIDE * attr_index + _RANGE_STRIDE * range_index
        return lo, lo + _RANGE_WIDTH

    def prefix_family(self, range_index: int) -> str:
        return f"grp{range_index}"

    # -- subscriptions -----------------------------------------------------------------

    def subscription(self) -> Subscription:
        """One average subscription: nas arithmetic + nss string constraints."""
        rng = self._rng
        config = self.config
        constraints: List[Constraint] = []
        for name in sample_distinct(rng, self._arith_names, config.nas):
            constraints.extend(self._arithmetic_constraints(name))
        for name in sample_distinct(rng, self._string_names, config.nss):
            constraints.append(self._string_constraint(name))
        return Subscription(constraints)

    def _arithmetic_constraints(self, name: str) -> List[Constraint]:
        rng = self._rng
        attr_index = int(name[3:])
        if rng.random() < self.config.subsumption:
            # Subsumable: a random sub-range of a canonical range.
            lo, hi = self.canonical_range(attr_index, rng.randrange(self.config.nsr))
            a = rng.uniform(lo, hi)
            b = rng.uniform(lo, hi)
            lo_v, hi_v = (a, b) if a <= b else (b, a)
            if hi_v - lo_v < 1e-9:
                hi_v = lo_v + 1.0
            return [
                Constraint.arithmetic(name, Operator.GT, round(lo_v, 3)),
                Constraint.arithmetic(name, Operator.LT, round(hi_v, 3)),
            ]
        # Non-subsumable: an equality on a fresh out-of-range value.
        value = round(_UNIQUE_FLOOR + rng.random() * _UNIQUE_SPAN, 3)
        return [Constraint.arithmetic(name, Operator.EQ, value)]

    def _string_constraint(self, name: str) -> Constraint:
        rng = self._rng
        if rng.random() < self.config.subsumption:
            family = self.prefix_family(rng.randrange(self.config.nsr))
            # Half the family constraints are the bare family prefix, half
            # one level deeper — deeper ones get covered once a bare one
            # arrives, exercising SACS row substitution.
            operand = family if rng.random() < 0.5 else family + rng.choice("ABCD")
            return Constraint.string(name, Operator.PREFIX, operand)
        return Constraint.string(
            name, Operator.EQ, random_identifier(rng, self.config.ssv)
        )

    def subscriptions(self, count: int) -> List[Subscription]:
        return [self.subscription() for _ in range(count)]

    def per_broker_batches(
        self, num_brokers: int, per_broker: int
    ) -> List[List[Subscription]]:
        """One sigma-sized batch per broker (figure 8/11 input)."""
        return [self.subscriptions(per_broker) for _ in range(num_brokers)]

    # -- events ------------------------------------------------------------------------

    def event(self) -> Event:
        """One average event: nt/2 attributes, values drawn so that
        subsumption-family constraints have realistic match rates."""
        rng = self._rng
        config = self.config
        n_arith = config.nas
        n_string = config.attributes_per_subscription - n_arith
        pairs: List[Tuple[str, AttributeType, object]] = []
        for name in sample_distinct(rng, self._arith_names, n_arith):
            attr_index = int(name[3:])
            if rng.random() < config.subsumption:
                lo, hi = self.canonical_range(attr_index, rng.randrange(config.nsr))
                value: object = round(rng.uniform(lo, hi), 3)
            else:
                value = round(_UNIQUE_FLOOR + rng.random() * _UNIQUE_SPAN, 3)
            pairs.append((name, AttributeType.FLOAT, value))
        for name in sample_distinct(rng, self._string_names, n_string):
            if rng.random() < config.subsumption:
                family = self.prefix_family(rng.randrange(config.nsr))
                value = family + random_identifier(rng, 4)
            else:
                value = random_identifier(rng, config.ssv)
            pairs.append((name, AttributeType.STRING, value))
        return Event.from_pairs(pairs)

    def events(self, count: int) -> List[Event]:
        return [self.event() for _ in range(count)]

    def matching_event(self, subscription: Subscription) -> Event:
        """An event guaranteed to match ``subscription``.

        Organic collisions between independent average subscriptions and
        events are astronomically rare (the attribute sets alone coincide
        with probability ~1/120), so positive-path tests construct targeted
        events: every constrained attribute gets a satisfying value, padded
        with one extra unconstrained attribute to exercise the matcher's
        ignore-extras behavior.
        """
        rng = self._rng
        pairs: List[Tuple[str, AttributeType, object]] = []
        for name in sorted(subscription.attribute_names):
            constraints = subscription.constraints_on(name)
            value = _satisfying_value(constraints, rng)
            attr_type = constraints[0].attr_type
            if attr_type is AttributeType.INTEGER:
                value = int(value)
                if not all(c.matches(value) for c in constraints):
                    value = int(value) + 1  # rounding fell outside; step up
            pairs.append((name, attr_type, value))
        unconstrained = [
            name
            for name in self.schema.names
            if name not in subscription.attribute_names
        ]
        if unconstrained:
            extra = rng.choice(unconstrained)
            if self.schema.type_of(extra).is_string:
                pairs.append((extra, AttributeType.STRING, random_identifier(rng, 6)))
            else:
                pairs.append((extra, AttributeType.FLOAT, rng.uniform(0, 1e6)))
        event = Event.from_pairs(pairs)
        if not subscription.matches(event):  # pragma: no cover - guard
            raise ValueError(f"could not construct a matching event for {subscription}")
        return event

    def stream(self) -> Iterator[Event]:
        """An endless event stream (consumed lazily by soak tests)."""
        while True:
            yield self.event()


def _satisfying_value(constraints, rng: random.Random):
    """A value satisfying a per-attribute constraint conjunction."""
    from repro.model.constraints import Operator
    from repro.summary.intervals import intervals_for_conjunction

    if constraints[0].attr_type.is_string:
        # The generator only emits one string constraint per attribute, but
        # handle simple conjunctions by seeding from the most restrictive
        # member and verifying against all.
        for seed_constraint in constraints:
            candidate = _seed_string(seed_constraint, rng)
            if all(c.matches(candidate) for c in constraints):
                return candidate
        raise ValueError(f"unsatisfiable string conjunction: {constraints}")
    values = intervals_for_conjunction(constraints)
    if values.is_empty:
        raise ValueError(f"unsatisfiable arithmetic conjunction: {constraints}")
    interval = values.intervals[0]
    if interval.is_point:
        return interval.lo
    lo = interval.lo if interval.lo != float("-inf") else interval.hi - 1000.0
    hi = interval.hi if interval.hi != float("inf") else lo + 1000.0
    midpoint = (lo + hi) / 2.0
    return midpoint


def _seed_string(constraint, rng: random.Random) -> str:
    from repro.model.constraints import Operator

    operand = constraint.value
    if constraint.operator is Operator.EQ:
        return operand
    if constraint.operator is Operator.NE:
        return operand + "x"
    if constraint.operator is Operator.PREFIX:
        return operand + random_identifier(rng, 2)
    if constraint.operator is Operator.SUFFIX:
        return random_identifier(rng, 2) + operand
    if constraint.operator is Operator.CONTAINS:
        return random_identifier(rng, 1) + operand + random_identifier(rng, 1)
    # MATCHES: fill every star with a fixed character.
    return operand.replace("*", "x")
