"""Controlled-popularity events (figure 10's workload).

For the event-processing experiment the paper does not generate organic
events; it draws the *matched broker set* directly: "we study both methods
for varying event popularities, which captures the number of brokers that
match the event; the 'matched' brokers are randomly chosen for every
event."

To make a real routed system (not a model) match an arbitrary chosen
broker set with one event, we plant one *probe subscription* per broker —
a containment constraint on a dedicated string attribute::

    broker m subscribes:  probe * "@m@"
    event matching {3, 7}:  probe = "@3@@7@"

Containment of the per-broker marker is exact (the ``@`` fences prevent
``@1@`` matching inside ``@12@``...  more precisely the marker string
itself is fenced, so no numeric prefix ambiguity exists), giving events
that match precisely the drawn set while exercising the full SACS matching
path.
"""

from __future__ import annotations

import random
from typing import Iterable, List, Set

from repro.model.attributes import AttributeSpec
from repro.model.constraints import Constraint, Operator
from repro.model.events import Event
from repro.model.schema import Schema
from repro.model.subscriptions import Subscription
from repro.model.types import AttributeType

__all__ = [
    "PROBE_ATTRIBUTE",
    "popularity_schema",
    "probe_subscription",
    "popularity_event",
    "draw_matched_sets",
]

PROBE_ATTRIBUTE = "probe"


def popularity_schema() -> Schema:
    """A minimal schema for the figure-10 experiment: just the probe."""
    return Schema([AttributeSpec(PROBE_ATTRIBUTE, AttributeType.STRING)])


def _marker(broker: int) -> str:
    return f"@{broker}@"


def probe_subscription(broker: int) -> Subscription:
    """The subscription broker ``broker`` plants for the experiment."""
    return Subscription(
        [Constraint.string(PROBE_ATTRIBUTE, Operator.CONTAINS, _marker(broker))]
    )


def popularity_event(matched: Iterable[int]) -> Event:
    """An event matching exactly the probe subscriptions of ``matched``."""
    body = "".join(_marker(broker) for broker in sorted(set(matched)))
    if not body:
        body = "@none@"  # matches no probe (markers are digit-only)
    return Event.from_pairs([(PROBE_ATTRIBUTE, AttributeType.STRING, body)])


def draw_matched_sets(
    num_brokers: int,
    popularity: float,
    count: int,
    seed: int = 0,
) -> List[Set[int]]:
    """``count`` random matched-broker sets of size popularity x n."""
    if not 0.0 < popularity <= 1.0:
        raise ValueError("popularity must be in (0, 1]")
    rng = random.Random(seed)
    size = max(1, round(popularity * num_brokers))
    return [set(rng.sample(range(num_brokers), size)) for _ in range(count)]
