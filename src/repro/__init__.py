"""repro — Subscription Summarization for Publish/Subscribe Systems.

A full reproduction of Triantafillou & Economides, "Subscription
Summarization: A New Paradigm for Efficient Publish/Subscribe Systems"
(ICDCS 2004): the AACS/SACS summary structures, the Algorithm-1 matcher,
multi-broker summaries with Algorithm-2 propagation and Algorithm-3
BROCLI event routing, a Siena-style comparator, a broadcast baseline, and
the complete evaluation harness for figures 8-11.

Quickstart::

    from repro import SummaryPubSub, stock_schema, parse_subscription, Event
    from repro.network import cable_wireless_24

    system = SummaryPubSub(cable_wireless_24(), stock_schema())
    sid = system.subscribe(3, parse_subscription(
        system.schema, "symbol = OTE AND price < 8.70 AND price > 8.30"))
    system.run_propagation_period()
    result = system.publish(17, Event.of(symbol="OTE", price=8.40))
    assert result.matched_brokers == {3}
"""

from repro.baseline import BroadcastPubSub
from repro.broker import Delivery, PublishResult, SummaryBroker, SummaryPubSub
from repro.clients import Consumer, Producer
from repro.model import (
    AttributeSpec,
    Query,
    AttributeType,
    Constraint,
    Event,
    IdCodec,
    Operator,
    Schema,
    Subscription,
    SubscriptionId,
    parse_constraint,
    parse_query,
    parse_subscription,
    stock_schema,
)
from repro.network import Network, Topology, cable_wireless_24, paper_example_tree
from repro.runtime import (
    BrokerRuntime,
    LocalCluster,
    ProducerSession,
    SubscriberSession,
)
from repro.siena import SienaProbModel, SienaPubSub
from repro.summary import (
    AACS,
    SACS,
    BrokerSummary,
    CompiledMatcher,
    MaintainedSummary,
    NaiveMatcher,
    Precision,
    SubscriptionStore,
    match_event,
)
from repro.workload import StockWorkload, WorkloadConfig, WorkloadGenerator

__version__ = "1.0.0"

__all__ = [
    "AACS",
    "AttributeSpec",
    "AttributeType",
    "BroadcastPubSub",
    "BrokerRuntime",
    "BrokerSummary",
    "CompiledMatcher",
    "Consumer",
    "Constraint",
    "Delivery",
    "Event",
    "IdCodec",
    "LocalCluster",
    "MaintainedSummary",
    "NaiveMatcher",
    "Network",
    "Operator",
    "Precision",
    "Producer",
    "ProducerSession",
    "PublishResult",
    "Query",
    "SACS",
    "Schema",
    "SienaProbModel",
    "SienaPubSub",
    "StockWorkload",
    "Subscription",
    "SubscriptionId",
    "SubscriberSession",
    "SubscriptionStore",
    "SummaryBroker",
    "SummaryPubSub",
    "Topology",
    "WorkloadConfig",
    "WorkloadGenerator",
    "__version__",
    "cable_wireless_24",
    "match_event",
    "paper_example_tree",
    "parse_constraint",
    "parse_query",
    "parse_subscription",
    "stock_schema",
]
