"""System health/load reporting.

Aggregates a running :class:`~repro.broker.system.SummaryPubSub` into one
structured report: per-broker load (events examined, deliveries, false
positives, storage), knowledge coverage, summary compaction ratios, and —
when the system runs over a fault-injected or reliable transport — the
transport-health line (ACKs, retransmissions, abandoned sends, BROCLI
re-routes, reliability byte overhead).  Examples print it; the
virtual-degrees ablation uses the imbalance metrics to quantify hot spots.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.broker.system import SummaryPubSub
from repro.obs.metrics import collect_system_metrics

__all__ = [
    "BrokerReport",
    "SystemReport",
    "TransportReport",
    "build_cluster_report",
    "build_report",
    "gini",
]


def gini(values: List[float]) -> float:
    """Gini coefficient of a non-negative load distribution.

    0 = perfectly even, ->1 = one broker does everything.  The standard
    mean-absolute-difference form; 0 for empty/all-zero inputs.
    """
    if not values or any(value < 0 for value in values):
        if any(value < 0 for value in values or []):
            raise ValueError("loads must be non-negative")
        return 0.0
    total = sum(values)
    if total == 0:
        return 0.0
    n = len(values)
    ordered = sorted(values)
    cumulative = 0.0
    for rank, value in enumerate(ordered, start=1):
        cumulative += rank * value
    return (2.0 * cumulative) / (n * total) - (n + 1.0) / n


@dataclass(frozen=True)
class BrokerReport:
    broker: int
    local_subscriptions: int
    events_examined: int
    deliveries: int
    false_positive_notifies: int
    summary_bytes: int
    knowledge_size: int  # |Merged_Brokers|


@dataclass(frozen=True)
class TransportReport:
    """Reliability/fault counters aggregated over both traffic phases.

    All-zero on a plain :class:`~repro.network.simulator.Network`; the
    interesting numbers appear under :class:`~repro.network.faults
    .LossyNetwork` and :class:`~repro.network.reliable.ReliableNetwork`.
    """

    acks: int
    retransmits: int
    send_failures: int
    reliability_bytes: int
    bytes_sent: int
    #: BROCLI searches re-routed around an unreachable broker.
    event_reroutes: int
    #: owner notifications abandoned (the owner itself was unreachable).
    notify_failures: int

    @property
    def overhead_fraction(self) -> float:
        """ACK + retransmission bytes as a share of all bytes sent."""
        return self.reliability_bytes / self.bytes_sent if self.bytes_sent else 0.0

    @property
    def quiet(self) -> bool:
        """True when no reliability machinery ever engaged."""
        return not (
            self.acks
            or self.retransmits
            or self.send_failures
            or self.event_reroutes
            or self.notify_failures
        )


@dataclass
class SystemReport:
    brokers: List[BrokerReport] = field(default_factory=list)
    transport: Optional[TransportReport] = None
    #: Flat dotted-name snapshot of the unified
    #: :class:`~repro.obs.metrics.MetricsRegistry` (``broker.*``,
    #: ``net.propagation.*``, ``net.event.*``, ``net.reliability.*``,
    #: ``router.*``, ``trace.*`` histogram summaries) — JSON-ready.
    metrics: Dict[str, object] = field(default_factory=dict)

    # -- aggregates -----------------------------------------------------------

    @property
    def total_subscriptions(self) -> int:
        return sum(b.local_subscriptions for b in self.brokers)

    @property
    def total_deliveries(self) -> int:
        return sum(b.deliveries for b in self.brokers)

    @property
    def total_storage_bytes(self) -> int:
        return sum(b.summary_bytes for b in self.brokers)

    @property
    def false_positive_rate(self) -> float:
        """Fraction of owner notifications the exact re-check discarded."""
        rejected = sum(b.false_positive_notifies for b in self.brokers)
        accepted = self.total_deliveries
        total = rejected + accepted
        return rejected / total if total else 0.0

    @property
    def examination_gini(self) -> float:
        """Load imbalance of the matching work (the hot-spot metric)."""
        return gini([float(b.events_examined) for b in self.brokers])

    def busiest(self, count: int = 3) -> List[BrokerReport]:
        return sorted(
            self.brokers, key=lambda b: (-b.events_examined, b.broker)
        )[:count]

    def __str__(self) -> str:
        lines = [
            f"{'broker':>6} {'subs':>6} {'examined':>9} {'delivered':>10} "
            f"{'fp':>6} {'storage':>9} {'knows':>6}"
        ]
        for report in self.brokers:
            lines.append(
                f"{report.broker:>6} {report.local_subscriptions:>6} "
                f"{report.events_examined:>9} {report.deliveries:>10} "
                f"{report.false_positive_notifies:>6} "
                f"{report.summary_bytes:>9} {report.knowledge_size:>6}"
            )
        lines.append(
            f"totals: {self.total_subscriptions} subs, "
            f"{self.total_deliveries} deliveries, "
            f"fp-rate {self.false_positive_rate:.1%}, "
            f"storage {self.total_storage_bytes:,} B, "
            f"examination gini {self.examination_gini:.2f}"
        )
        if self.transport is not None and not self.transport.quiet:
            t = self.transport
            lines.append(
                f"transport: acks={t.acks} retransmits={t.retransmits} "
                f"failures={t.send_failures} reroutes={t.event_reroutes} "
                f"notify-losses={t.notify_failures} "
                f"overhead {t.overhead_fraction:.1%} "
                f"({t.reliability_bytes:,} B)"
            )
        if self.metrics:
            lines.append(
                f"metrics: {len(self.metrics)} instruments "
                f"(full snapshot in .metrics)"
            )
        return "\n".join(lines)


def _transport_report(system: SummaryPubSub) -> TransportReport:
    phases = (system.propagation_metrics, system.event_metrics)
    router = system.router
    return TransportReport(
        acks=sum(m.acks for m in phases),
        retransmits=sum(m.retransmits for m in phases),
        send_failures=sum(m.send_failures for m in phases),
        reliability_bytes=sum(m.reliability_bytes for m in phases),
        bytes_sent=sum(m.bytes_sent for m in phases),
        event_reroutes=getattr(router, "event_reroutes", 0),
        notify_failures=getattr(router, "notify_failures", 0),
    )


def build_report(system: SummaryPubSub) -> SystemReport:
    """Snapshot the system's per-broker counters into a report."""
    report = SystemReport(
        transport=_transport_report(system),
        metrics=collect_system_metrics(system).snapshot(),
    )
    for broker_id in sorted(system.brokers):
        broker = system.brokers[broker_id]
        report.brokers.append(
            BrokerReport(
                broker=broker_id,
                local_subscriptions=len(broker.store),
                events_examined=broker.events_examined,
                deliveries=len(broker.deliveries),
                false_positive_notifies=broker.false_positive_notifies,
                summary_bytes=system.wire.summary_size(broker.kept_summary),
                knowledge_size=len(broker.merged_brokers),
            )
        )
    return report


def build_cluster_report(cluster) -> SystemReport:
    """The same :class:`SystemReport`, from a live ``LocalCluster``.

    Duck-typed (no import of :mod:`repro.runtime`, which sits above this
    layer): anything exposing ``runtimes[id] -> {broker, wire, router,
    collect_metrics()}`` and a merged-``NetworkMetrics`` ``metrics()``
    works.  Killed-and-not-restarted brokers simply have no row — their
    counters live with whoever captured the dead runtime.
    """
    merged = cluster.metrics()
    routers = [runtime.router for runtime in cluster.runtimes.values()]
    report = SystemReport(
        transport=TransportReport(
            acks=merged.acks,
            retransmits=merged.retransmits,
            send_failures=merged.send_failures,
            reliability_bytes=merged.reliability_bytes,
            bytes_sent=merged.bytes_sent,
            event_reroutes=sum(getattr(r, "event_reroutes", 0) for r in routers),
            notify_failures=sum(getattr(r, "notify_failures", 0) for r in routers),
        ),
    )
    for broker_id in sorted(cluster.runtimes):
        runtime = cluster.runtimes[broker_id]
        broker = runtime.broker
        report.brokers.append(
            BrokerReport(
                broker=broker_id,
                local_subscriptions=len(broker.store),
                events_examined=broker.events_examined,
                deliveries=len(broker.deliveries),
                false_positive_notifies=broker.false_positive_notifies,
                summary_bytes=runtime.wire.summary_size(broker.kept_summary),
                knowledge_size=len(broker.merged_brokers),
            )
        )
        for key, value in runtime.collect_metrics().snapshot().items():
            report.metrics[f"broker{broker_id}.{key}"] = value
    return report
