"""Empirical complexity measurement for the section 5.2.4 claim.

The paper argues the matching algorithm is O(N) in the number of
subscriptions (T1 scan + T2 counter pass) — the "same complexity as
competing approaches" — but expects constants to be better because rows
generalize many subscriptions.  :func:`measure_matching_scaling` produces
(N, seconds/event) points for both the summary matcher and the naive
per-subscription matcher so tests (and the section-5.2.4 bench) can check
linearity and the constant-factor gap.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, List, Sequence, Tuple

from repro.model.events import Event
from repro.model.ids import SubscriptionId
from repro.model.schema import Schema
from repro.summary.matching import NaiveMatcher
from repro.summary.precision import Precision
from repro.summary.summary import BrokerSummary
from repro.workload.config import WorkloadConfig
from repro.workload.generator import WorkloadGenerator

__all__ = ["ScalingPoint", "measure_matching_scaling", "linear_fit_r2"]


@dataclass(frozen=True)
class ScalingPoint:
    subscriptions: int
    summary_seconds: float
    naive_seconds: float

    @property
    def speedup(self) -> float:
        return self.naive_seconds / self.summary_seconds if self.summary_seconds else 0.0


def measure_matching_scaling(
    sizes: Sequence[int],
    events_per_size: int = 50,
    config: WorkloadConfig = WorkloadConfig(),
    seed: int = 0,
    precision: Precision = Precision.COARSE,
) -> List[ScalingPoint]:
    """Time per-event matching at several subscription-table sizes."""
    points: List[ScalingPoint] = []
    for size in sizes:
        generator = WorkloadGenerator(config, seed=seed)
        schema = generator.schema
        summary = BrokerSummary(schema, precision)
        naive = NaiveMatcher()
        for local_id, subscription in enumerate(generator.subscriptions(size)):
            sid = SubscriptionId(
                broker=0,
                local_id=local_id,
                attr_mask=schema.mask_of(subscription),
            )
            summary.add(subscription, sid)
            naive.add(subscription, sid)
        events = generator.events(events_per_size)
        points.append(
            ScalingPoint(
                subscriptions=size,
                summary_seconds=_time_per_event(summary.match, events),
                naive_seconds=_time_per_event(naive.match, events),
            )
        )
    return points


def _time_per_event(matcher: Callable[[Event], object], events: Sequence[Event]) -> float:
    start = time.perf_counter()
    for event in events:
        matcher(event)
    return (time.perf_counter() - start) / len(events)


def linear_fit_r2(points: Sequence[Tuple[float, float]]) -> float:
    """R^2 of a least-squares line through (x, y) points — used to check
    the O(N) claim empirically without pulling in scipy."""
    n = len(points)
    if n < 2:
        raise ValueError("need at least two points")
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    sxx = sum((x - mean_x) ** 2 for x in xs)
    sxy = sum((x - mean_x) * (y - mean_y) for x, y in points)
    syy = sum((y - mean_y) ** 2 for y in ys)
    if sxx == 0 or syy == 0:
        return 1.0
    return (sxy * sxy) / (sxx * syy)
