"""The analytic cost model of paper section 5.1.

Equation (1) — size of all AACS structures of one summary::

    AACS = sum over arithmetic attributes i of
             (2 * nsr_i + ne_i) * sst_i   # the two arrays (min,max columns)
           + La_i * sid_i                 # the row id lists

Equation (2) — size of all SACS structures::

    SACS = sum over string attributes i of
             nr_i * ssv_i                 # the pattern values
           + Ls_i * sid_i                 # the row id lists

Total per-broker bandwidth TB = AACS + SACS.

The baseline broadcast bandwidth (section 5.2.1)::

    (brokers - 1) x average hops x brokers x sigma x subscription size

and the matching-time model (section 5.2.4)::

    T1 = nae * max(nsr * La, ne * La) + nse * nr * Ls
    T2 = P          (P = ids collected in step 1)

Functions here come in two flavours: ``*_size`` computes the equations for
given structure counts (including counts read off a real
:class:`~repro.summary.summary.SummaryStats`), and ``expected_*`` predicts
the counts from the Table-2 workload parameters, which is how the paper
produced its curves.  Tests check prediction against measurement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.summary.summary import SummaryStats
from repro.workload.config import WorkloadConfig

__all__ = [
    "aacs_size",
    "sacs_size",
    "summary_size_from_stats",
    "expected_structure_counts",
    "expected_summary_size",
    "baseline_bandwidth",
    "matching_step1_cost",
    "matching_step2_cost",
    "matching_total_cost",
    "ExpectedCounts",
]


# -- equations (1) and (2) ------------------------------------------------------


def aacs_size(nas: int, nsr: float, ne: float, la: float, sst: int, sid: int) -> float:
    """Equation (1) with uniform per-attribute parameters."""
    return nas * ((2.0 * nsr + ne) * sst + la * sid)


def sacs_size(nss: int, nr: float, ls: float, ssv: int, sid: int) -> float:
    """Equation (2) with uniform per-attribute parameters."""
    return nss * (nr * ssv + ls * sid)


def summary_size_from_stats(stats: SummaryStats, sst: int, sid: int) -> float:
    """Equations (1)+(2) evaluated on *measured* structure counts.

    ``stats`` already aggregates over attributes, so the per-attribute sums
    collapse: ``(2*n_sr + n_e)*sst + arithmetic_ids*sid`` plus
    ``string_value_bytes + string_ids*sid``.
    """
    arithmetic = (2.0 * stats.n_sr + stats.n_e) * sst + stats.arithmetic_id_entries * sid
    strings = stats.string_value_bytes + stats.string_id_entries * sid
    return arithmetic + strings


# -- expected counts from the workload model ----------------------------------------


@dataclass(frozen=True)
class ExpectedCounts:
    """Predicted structure counts for a summary of ``num_subscriptions``."""

    nsr: float  # sub-range rows per arithmetic attribute
    ne: float  # equality rows per arithmetic attribute
    la: float  # id entries per arithmetic attribute
    nr: float  # pattern rows per string attribute
    ls: float  # id entries per string attribute


def expected_structure_counts(
    config: WorkloadConfig, num_subscriptions: int
) -> ExpectedCounts:
    """Predict per-attribute structure counts under the Table-2 model.

    With subsumption probability q, a fraction q of the constraints on an
    attribute fall into its ``nsr`` canonical ranges (or prefix families)
    and merge; the remaining ``1 - q`` become individual equality rows.
    Id-list entries are one per constraint regardless of merging.
    """
    per_arith = (
        num_subscriptions * config.nas / config.num_arithmetic_attributes
    )
    per_string = (
        num_subscriptions * config.nss / config.num_string_attributes
    )
    q = config.subsumption
    return ExpectedCounts(
        nsr=min(float(config.nsr), q * per_arith),
        ne=(1.0 - q) * per_arith,
        la=per_arith,
        # String families collapse to at most nsr rows (+1 level of nested
        # prefixes before substitution normalizes them).
        nr=min(float(config.nsr), q * per_string) + (1.0 - q) * per_string,
        ls=per_string,
    )


def expected_summary_size(
    config: WorkloadConfig,
    num_subscriptions: int,
    sid: Optional[int] = None,
) -> float:
    """Predicted TB (equations (1)+(2)) for a broker summarizing
    ``num_subscriptions`` subscriptions."""
    counts = expected_structure_counts(config, num_subscriptions)
    sid_size = config.sid if sid is None else sid
    return aacs_size(
        config.num_arithmetic_attributes,
        counts.nsr,
        counts.ne,
        counts.la,
        config.sst,
        sid_size,
    ) + sacs_size(
        config.num_string_attributes, counts.nr, counts.ls, config.ssv, sid_size
    )


# -- baseline bandwidth --------------------------------------------------------------


def baseline_bandwidth(
    num_brokers: int, average_hops: float, sigma: int, subscription_size: int
) -> float:
    """The paper's broadcast cost: (brokers-1) x avg hops x brokers x sigma
    x average subscription size."""
    return (num_brokers - 1) * average_hops * num_brokers * sigma * subscription_size


# -- matching cost (section 5.2.4) ------------------------------------------------------


def matching_step1_cost(
    nae: int, nsr: float, ne: float, la: float, nse: int, nr: float, ls: float
) -> float:
    """T1 = nae * max(nsr*La, ne*La) + nse * nr * Ls."""
    return nae * max(nsr * la, ne * la) + nse * nr * ls


def matching_step2_cost(collected: int) -> float:
    """T2 = P, the number of ids collected in step 1."""
    return float(collected)


def matching_total_cost(
    nae: int,
    nsr: float,
    ne: float,
    la: float,
    nse: int,
    nr: float,
    ls: float,
    collected: int,
) -> float:
    return matching_step1_cost(nae, nsr, ne, la, nse, nr, ls) + matching_step2_cost(
        collected
    )
