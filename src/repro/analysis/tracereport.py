"""Trace report — per-stage latency breakdown from recorded spans.

Consumes the JSONL produced by :meth:`repro.obs.tracing.Tracer
.export_jsonl` (or a live span list) and answers the two questions the
byte/hop metrics cannot: *where does an event spend its time* and *which
pipeline stage regressed*.  The report has three parts:

1. **Stage table** — per span kind (in pipeline order): count, total,
   mean, p50/p95, max duration.  Zero-duration record kinds (``notify``,
   ``delivery``, ``summary_send``) report counts only.
2. **Publish digest** — per publish trace: hop count, notifications,
   deliveries and end-to-end duration; the report lists the slowest.
3. **Propagation digest** — per period: duration and summary sends.

Render from the command line::

    PYTHONPATH=src python -m repro.analysis.tracereport trace.jsonl
"""

from __future__ import annotations

import json
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Sequence, Union

from repro.obs.metrics import Histogram
from repro.obs.tracing import PIPELINE_KINDS, Span

__all__ = [
    "StageStats",
    "PublishDigest",
    "TraceReport",
    "load_spans",
    "build_trace_report",
]


@dataclass(frozen=True)
class StageStats:
    """Aggregate timing of one span kind."""

    kind: str
    count: int
    total_us: float
    mean_us: float
    p50_us: float
    p95_us: float
    max_us: float

    @property
    def timed(self) -> bool:
        """False for pure event records (no measured duration)."""
        return self.total_us > 0.0


@dataclass(frozen=True)
class PublishDigest:
    """One publish trace: the summarized Algorithm-3 walk."""

    trace_id: int
    origin: int
    hops: int
    matches: int
    notifies: int
    deliveries: int
    duration_us: float


def load_spans(path: Union[str, Path]) -> List[Span]:
    """Parse a tracer JSONL export back into :class:`Span` records."""
    spans: List[Span] = []
    with Path(path).open("r", encoding="utf-8") as handle:
        for line_no, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                raw = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{line_no}: invalid JSON: {exc}") from exc
            spans.append(Span(
                kind=raw["kind"],
                broker=raw.get("broker", -1),
                trace_id=raw.get("trace", 0),
                t_us=float(raw.get("t_us", 0.0)),
                dur_us=float(raw.get("dur_us", 0.0)),
                seq=int(raw.get("seq", len(spans))),
                fields=raw.get("fields", {}),
            ))
    return spans


def _kind_order(kind: str) -> tuple:
    try:
        return (0, PIPELINE_KINDS.index(kind), kind)
    except ValueError:
        return (1, 0, kind)


class TraceReport:
    """Structured + renderable view over one trace's spans."""

    def __init__(self, spans: Sequence[Span], slowest: int = 5):
        self.spans = list(spans)
        self.slowest = max(0, slowest)
        self.stages: List[StageStats] = self._build_stages()
        self.publishes: List[PublishDigest] = self._build_publishes()

    # -- aggregation --------------------------------------------------------

    def _build_stages(self) -> List[StageStats]:
        histograms: Dict[str, Histogram] = {}
        for span in self.spans:
            histogram = histograms.get(span.kind)
            if histogram is None:
                histogram = histograms[span.kind] = Histogram(span.kind)
            histogram.observe(span.dur_us)
        stages = []
        for kind in sorted(histograms, key=_kind_order):
            histogram = histograms[kind]
            stages.append(StageStats(
                kind=kind,
                count=histogram.count,
                total_us=round(histogram.total, 3),
                mean_us=round(histogram.mean, 3),
                p50_us=round(histogram.percentile(0.50), 3),
                p95_us=round(histogram.percentile(0.95), 3),
                max_us=round(histogram.max, 3) if histogram.count else 0.0,
            ))
        return stages

    def _build_publishes(self) -> List[PublishDigest]:
        digests: List[PublishDigest] = []
        for trace_id, spans in self._group_by_trace().items():
            publish = [s for s in spans if s.kind == "publish"]
            if not publish:
                continue  # propagation traces have no publish root
            hops = [s for s in spans if s.kind == "route_hop"]
            digests.append(PublishDigest(
                trace_id=trace_id,
                origin=publish[0].broker,
                hops=len(hops),
                matches=sum(
                    int(s.fields.get("matched", 0))
                    for s in spans if s.kind == "summary_match"
                ),
                notifies=len([s for s in spans if s.kind == "notify"]),
                deliveries=sum(
                    int(s.fields.get("count", 1))
                    for s in spans if s.kind == "delivery"
                ),
                duration_us=round(publish[0].dur_us, 3),
            ))
        digests.sort(key=lambda d: (-d.duration_us, d.trace_id))
        return digests

    def _group_by_trace(self) -> Dict[int, List[Span]]:
        grouped: Dict[int, List[Span]] = {}
        for span in self.spans:
            grouped.setdefault(span.trace_id, []).append(span)
        return grouped

    def stage(self, kind: str) -> StageStats:
        for stats in self.stages:
            if stats.kind == kind:
                return stats
        raise KeyError(f"no spans of kind {kind!r} in this trace")

    # -- rendering ----------------------------------------------------------

    def render(self) -> str:
        lines = [
            f"{len(self.spans)} spans, {len(self._group_by_trace())} traces, "
            f"{len(self.publishes)} publishes",
            "",
            f"{'stage':<20} {'count':>7} {'total_us':>12} {'mean_us':>10} "
            f"{'p50_us':>10} {'p95_us':>10} {'max_us':>10}",
        ]
        for stats in self.stages:
            if stats.timed:
                lines.append(
                    f"{stats.kind:<20} {stats.count:>7} {stats.total_us:>12.1f} "
                    f"{stats.mean_us:>10.1f} {stats.p50_us:>10.1f} "
                    f"{stats.p95_us:>10.1f} {stats.max_us:>10.1f}"
                )
            else:
                lines.append(
                    f"{stats.kind:<20} {stats.count:>7} {'(records)':>12}"
                )
        if self.publishes and self.slowest:
            lines.append("")
            lines.append(
                f"slowest publishes ({min(self.slowest, len(self.publishes))} "
                f"of {len(self.publishes)}):"
            )
            lines.append(
                f"{'trace':>16} {'origin':>7} {'hops':>5} {'matches':>8} "
                f"{'notifies':>9} {'delivered':>10} {'dur_us':>10}"
            )
            for digest in self.publishes[: self.slowest]:
                lines.append(
                    f"{digest.trace_id:>16x} {digest.origin:>7} "
                    f"{digest.hops:>5} {digest.matches:>8} "
                    f"{digest.notifies:>9} {digest.deliveries:>10} "
                    f"{digest.duration_us:>10.1f}"
                )
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"TraceReport({len(self.spans)} spans, {len(self.stages)} stages)"


def build_trace_report(
    spans_or_tracer: Union[Sequence[Span], Iterable[Span], "object"],
    slowest: int = 5,
) -> TraceReport:
    """Build a report from a span sequence or anything with ``.spans``."""
    spans = getattr(spans_or_tracer, "spans", spans_or_tracer)
    return TraceReport(list(spans), slowest=slowest)


def main(argv: Sequence[str] = None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    if len(args) != 1:
        print("usage: python -m repro.analysis.tracereport <trace.jsonl>",
              file=sys.stderr)
        return 2
    report = build_trace_report(load_spans(args[0]))
    print(report.render())
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI shim
    raise SystemExit(main())
