"""Analytic cost models (section 5.1) and empirical complexity checks."""

from repro.analysis.complexity import (
    ScalingPoint,
    linear_fit_r2,
    measure_matching_scaling,
)
from repro.analysis.report import (
    BrokerReport,
    SystemReport,
    TransportReport,
    build_report,
    gini,
)
from repro.analysis.tracereport import (
    PublishDigest,
    StageStats,
    TraceReport,
    build_trace_report,
    load_spans,
)
from repro.analysis.cost_model import (
    ExpectedCounts,
    aacs_size,
    baseline_bandwidth,
    expected_structure_counts,
    expected_summary_size,
    matching_step1_cost,
    matching_step2_cost,
    matching_total_cost,
    sacs_size,
    summary_size_from_stats,
)

__all__ = [
    "BrokerReport",
    "ExpectedCounts",
    "PublishDigest",
    "ScalingPoint",
    "StageStats",
    "SystemReport",
    "TraceReport",
    "aacs_size",
    "TransportReport",
    "build_report",
    "build_trace_report",
    "load_spans",
    "baseline_bandwidth",
    "expected_structure_counts",
    "expected_summary_size",
    "linear_fit_r2",
    "matching_step1_cost",
    "matching_step2_cost",
    "matching_total_cost",
    "gini",
    "measure_matching_scaling",
    "sacs_size",
    "summary_size_from_stats",
]
