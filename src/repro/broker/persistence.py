"""Broker state snapshots: crash/restart support.

A production broker must survive restarts without losing its clients'
subscriptions or the remote knowledge it accumulated over propagation
periods.  Everything durable about a :class:`SummaryBroker` is:

* its raw subscription store (with the ``c2`` id watermark),
* the set of ids still *pending* propagation,
* the kept multi-broker summary, and
* the ``Merged_Brokers`` set.

:class:`SnapshotCodec` serializes exactly that, reusing the wire codec (a
snapshot is the same bytes that would travel the network, plus the local
tables).  ``save_system``/``load_system`` snapshot a whole
:class:`~repro.broker.system.SummaryPubSub` to a directory and rebuild an
equivalent one — the recovery test asserts the rebuilt system routes
byte-for-byte identically.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Union

from repro.broker.broker import SummaryBroker
from repro.broker.system import SummaryPubSub
from repro.wire.codec import ByteReader, ByteWriter, CodecError, ValueWidth, WireCodec

__all__ = ["SnapshotCodec", "save_system", "load_system", "SNAPSHOT_MAGIC"]

PathLike = Union[str, Path]

#: Format marker + version byte at the head of every snapshot.
SNAPSHOT_MAGIC = b"RSB1"


class SnapshotCodec:
    """Serializes one broker's durable state.

    Snapshots always use 64-bit arithmetic values regardless of the
    system's wire width: the F32 width exists to mirror the paper's
    ``sst = 4`` *bandwidth accounting*, but a snapshot must restore the
    exact in-memory state (F32 rounding of range bounds and equality
    values would silently drop boundary matches after recovery).
    """

    def __init__(self, wire: WireCodec):
        self.wire = WireCodec(wire.schema, wire.id_codec, ValueWidth.F64)

    def encode_broker(self, broker: SummaryBroker) -> bytes:
        writer = ByteWriter()
        writer.raw(SNAPSHOT_MAGIC)
        writer.varint(broker.broker_id)
        writer.varint(broker.store.next_local_id)
        entries = sorted(broker.store.items())
        writer.varint(len(entries))
        for sid, subscription in entries:
            writer.raw(self.wire.id_codec.to_bytes(sid))
            self.wire.write_subscription(writer, subscription)
        pending_ids = {sid for sid, _subscription in broker.pending}
        self.wire.write_id_list(writer, pending_ids)
        self.wire.write_broker_set(writer, broker.merged_brokers)
        summary = self.wire.encode_summary(broker.kept_summary)
        writer.varint(len(summary))
        writer.raw(summary)
        return writer.getvalue()

    def restore_broker(self, data: bytes, broker: SummaryBroker) -> None:
        """Load a snapshot into a freshly-constructed (empty) broker."""
        if len(broker.store) or broker.pending:
            raise ValueError("snapshots restore into empty brokers only")
        reader = ByteReader(data)
        if reader.raw(len(SNAPSHOT_MAGIC)) != SNAPSHOT_MAGIC:
            raise CodecError("not a broker snapshot (bad magic)")
        broker_id = reader.varint()
        if broker_id != broker.broker_id:
            raise CodecError(
                f"snapshot belongs to broker {broker_id}, not {broker.broker_id}"
            )
        next_local_id = reader.varint()
        count = reader.varint()
        by_sid = {}
        for _ in range(count):
            sid = self.wire.id_codec.from_bytes(
                reader.raw(self.wire.id_codec.byte_size)
            )
            subscription = self.wire.read_subscription(reader)
            broker.store.restore(sid, subscription)
            by_sid[sid] = subscription
        pending_ids = self.wire.read_id_list(reader)
        broker.pending = [
            (sid, by_sid[sid]) for sid in sorted(pending_ids) if sid in by_sid
        ]
        broker.merged_brokers = set(self.wire.read_broker_set(reader))
        summary_bytes = reader.raw(reader.varint())
        broker.kept_summary = self.wire.decode_summary(summary_bytes)
        if not reader.at_end():
            raise CodecError(f"{reader.remaining} trailing bytes after snapshot")
        # The watermark must also cover ids unsubscribed before the snapshot.
        broker.store.advance_watermark(next_local_id)
        # Publish-id dedup tables are transient routing state, not durable
        # knowledge: a restored broker serves a *new* router generation
        # (fresh epoch), so any remembered ids are stale.  Clearing them is
        # belt-and-braces against pre-restore entries surviving into the
        # new deployment and suppressing fresh events as "duplicates".
        broker.clear_dedup()


def save_system(system: SummaryPubSub, directory: PathLike) -> List[Path]:
    """Snapshot every broker to ``<directory>/broker-<id>.snap``."""
    target = Path(directory)
    target.mkdir(parents=True, exist_ok=True)
    codec = SnapshotCodec(system.wire)
    written: List[Path] = []
    for broker_id, broker in sorted(system.brokers.items()):
        path = target / f"broker-{broker_id}.snap"
        path.write_bytes(codec.encode_broker(broker))
        written.append(path)
    return written


def load_system(system: SummaryPubSub, directory: PathLike) -> SummaryPubSub:
    """Restore snapshots into a freshly-built system (same topology/schema).

    The caller constructs the empty system (topology, schema, precision and
    codec parameters must match the saved deployment — the snapshot format
    carries subscriptions, not configuration).
    """
    source = Path(directory)
    codec = SnapshotCodec(system.wire)
    for broker_id, broker in sorted(system.brokers.items()):
        path = source / f"broker-{broker_id}.snap"
        if not path.exists():
            raise FileNotFoundError(f"missing snapshot for broker {broker_id}: {path}")
        codec.restore_broker(path.read_bytes(), broker)
    return system
