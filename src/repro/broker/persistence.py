"""Broker state snapshots: crash/restart support.

A production broker must survive restarts without losing its clients'
subscriptions or the remote knowledge it accumulated over propagation
periods.  Everything durable about a :class:`SummaryBroker` is:

* its raw subscription store (with the ``c2`` id watermark),
* the set of ids still *pending* propagation,
* the kept multi-broker summary, and
* the ``Merged_Brokers`` set.

:class:`SnapshotCodec` serializes exactly that, reusing the wire codec (a
snapshot is the same bytes that would travel the network, plus the local
tables).  ``save_system``/``load_system`` snapshot a whole
:class:`~repro.broker.system.SummaryPubSub` to a directory and rebuild an
equivalent one — the recovery test asserts the rebuilt system routes
byte-for-byte identically.

All snapshot writes are atomic (temp file + fsync + ``os.replace``), so a
crash mid-save leaves either the previous complete snapshot or the new
one, never a torn prefix; :func:`save_broker` exposes the single-broker
unit the live runtime's graceful drain uses.
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path
from typing import List, Union

from repro.broker.broker import SummaryBroker
from repro.broker.system import SummaryPubSub
from repro.wire.codec import ByteReader, ByteWriter, CodecError, ValueWidth, WireCodec

__all__ = [
    "SnapshotCodec",
    "allocate_epoch",
    "save_broker",
    "save_system",
    "load_system",
    "snapshot_path",
    "write_snapshot_atomic",
    "SNAPSHOT_MAGIC",
    "EPOCH_FILE",
]

PathLike = Union[str, Path]

#: Format marker + version byte at the head of every snapshot.
SNAPSHOT_MAGIC = b"RSB1"


class SnapshotCodec:
    """Serializes one broker's durable state.

    Snapshots always use 64-bit arithmetic values regardless of the
    system's wire width: the F32 width exists to mirror the paper's
    ``sst = 4`` *bandwidth accounting*, but a snapshot must restore the
    exact in-memory state (F32 rounding of range bounds and equality
    values would silently drop boundary matches after recovery).
    """

    def __init__(self, wire: WireCodec):
        self.wire = WireCodec(wire.schema, wire.id_codec, ValueWidth.F64)

    def encode_broker(self, broker: SummaryBroker) -> bytes:
        writer = ByteWriter()
        writer.raw(SNAPSHOT_MAGIC)
        writer.varint(broker.broker_id)
        writer.varint(broker.store.next_local_id)
        entries = sorted(broker.store.items())
        writer.varint(len(entries))
        for sid, subscription in entries:
            writer.raw(self.wire.id_codec.to_bytes(sid))
            self.wire.write_subscription(writer, subscription)
        pending_ids = {sid for sid, _subscription in broker.pending}
        self.wire.write_id_list(writer, pending_ids)
        self.wire.write_broker_set(writer, broker.merged_brokers)
        summary = self.wire.encode_summary(broker.kept_summary)
        writer.varint(len(summary))
        writer.raw(summary)
        return writer.getvalue()

    def restore_broker(self, data: bytes, broker: SummaryBroker) -> None:
        """Load a snapshot into a freshly-constructed (empty) broker.

        Any malformation — bad/absent :data:`SNAPSHOT_MAGIC`, truncation
        (e.g. a write torn by a crash on a filesystem without atomic
        rename), or corrupt interior tables — surfaces as a
        :class:`~repro.wire.codec.CodecError` naming the snapshot, never a
        cryptic struct/KeyError from deep inside the codec.
        """
        if len(broker.store) or broker.pending:
            raise ValueError("snapshots restore into empty brokers only")
        try:
            self._restore_broker_body(data, broker)
        except CodecError as exc:
            raise CodecError(
                f"corrupt snapshot for broker {broker.broker_id}: {exc}"
            ) from exc
        except (ValueError, KeyError, TypeError, OverflowError) as exc:
            raise CodecError(
                f"corrupt snapshot for broker {broker.broker_id}: {exc!r}"
            ) from exc

    def _restore_broker_body(self, data: bytes, broker: SummaryBroker) -> None:
        reader = ByteReader(data)
        if len(data) < len(SNAPSHOT_MAGIC):
            raise CodecError(
                f"truncated header: {len(data)} bytes, "
                f"need at least {len(SNAPSHOT_MAGIC)} (bad or torn write?)"
            )
        if reader.raw(len(SNAPSHOT_MAGIC)) != SNAPSHOT_MAGIC:
            raise CodecError(
                f"not a broker snapshot (bad magic, expected {SNAPSHOT_MAGIC!r})"
            )
        broker_id = reader.varint()
        if broker_id != broker.broker_id:
            raise CodecError(
                f"snapshot belongs to broker {broker_id}, not {broker.broker_id}"
            )
        next_local_id = reader.varint()
        count = reader.varint()
        by_sid = {}
        for _ in range(count):
            sid = self.wire.id_codec.from_bytes(
                reader.raw(self.wire.id_codec.byte_size)
            )
            subscription = self.wire.read_subscription(reader)
            broker.store.restore(sid, subscription)
            by_sid[sid] = subscription
        pending_ids = self.wire.read_id_list(reader)
        broker.pending = [
            (sid, by_sid[sid]) for sid in sorted(pending_ids) if sid in by_sid
        ]
        broker.merged_brokers = set(self.wire.read_broker_set(reader))
        summary_bytes = reader.raw(reader.varint())
        broker.kept_summary = self.wire.decode_summary(summary_bytes)
        if not reader.at_end():
            raise CodecError(f"{reader.remaining} trailing bytes after snapshot")
        # The watermark must also cover ids unsubscribed before the snapshot.
        broker.store.advance_watermark(next_local_id)
        # Publish-id dedup tables are transient routing state, not durable
        # knowledge: a restored broker serves a *new* router generation
        # (fresh epoch), so any remembered ids are stale.  Clearing them is
        # belt-and-braces against pre-restore entries surviving into the
        # new deployment and suppressing fresh events as "duplicates".
        broker.clear_dedup()
        # Suppression maps are likewise transient (snapshots predate them
        # or were taken by a broker with suppression off): rebuild the
        # covering frontier around what the snapshot says is already
        # visible to the outside world.  Delta-generation chains are NOT
        # persisted on purpose — peers' next deltas fail the
        # base-generation check and fall back to full summaries, which is
        # exactly the resync a restarted broker needs.
        broker.rebuild_suppression_from_state()


def write_snapshot_atomic(path: Path, data: bytes) -> None:
    """Write snapshot bytes so a crash can never leave a torn file.

    The bytes go to a temp file *in the same directory* (``os.replace`` is
    only atomic within one filesystem) and are fsynced before the rename,
    so after a crash the target is either the complete old snapshot or the
    complete new one — never a prefix.
    """
    path = Path(path)
    fd, tmp_name = tempfile.mkstemp(
        prefix=f".{path.name}.", suffix=".tmp", dir=path.parent
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def snapshot_path(directory: PathLike, broker_id: int) -> Path:
    """Canonical ``broker-<id>.snap`` location inside a snapshot dir."""
    return Path(directory) / f"broker-{broker_id}.snap"


#: Durable epoch counter kept next to the snapshots.
EPOCH_FILE = "epoch.counter"


def allocate_epoch(
    directory: "Union[str, Path, None]" = None, broker_id: "Union[int, None]" = None
) -> int:
    """Mint a publish-id epoch for a (re)starting broker process.

    The 49-bit publish-id namespace is ``[1 | epoch:8 | origin:16 |
    seq:24]``; surviving peers keep recently seen ids in their dedup
    tables, so a broker that cold-rejoins after a crash (no snapshot, no
    memory of its last sequence number) **must not** reuse its previous
    epoch — its fresh events would re-mint already-seen ids and be eaten
    as duplicates at the first surviving hop.

    With a ``directory`` the epoch is a durable monotonic counter
    (atomically written next to the snapshots, one counter per broker when
    ``broker_id`` is given), guaranteeing a fresh value for up to 255
    consecutive restarts (the wire field is ``epoch mod 256``).  Without
    one there is nothing durable to count on, so the fallback is a random
    16-bit draw — a 1/256 chance of colliding with the previous
    incarnation mod 256, which the docstringed caller accepts in exchange
    for zero persistent state.
    """
    if directory is None:
        return int.from_bytes(os.urandom(2), "big") | 1
    target = Path(directory)
    target.mkdir(parents=True, exist_ok=True)
    name = EPOCH_FILE if broker_id is None else f"epoch-{broker_id}.counter"
    path = target / name
    previous = 0
    if path.exists():
        try:
            previous = int(path.read_text().strip() or 0)
        except ValueError:
            previous = 0
    epoch = previous + 1
    write_snapshot_atomic(path, str(epoch).encode("ascii"))
    return epoch


def save_broker(broker: SummaryBroker, directory: PathLike, wire: WireCodec) -> Path:
    """Atomically snapshot one broker to ``<directory>/broker-<id>.snap``.

    This is the unit the live runtime's graceful drain uses (one
    :class:`~repro.runtime.server.BrokerRuntime` owns one broker); the
    whole-system :func:`save_system` is a loop over it.
    """
    target = Path(directory)
    target.mkdir(parents=True, exist_ok=True)
    path = snapshot_path(target, broker.broker_id)
    write_snapshot_atomic(path, SnapshotCodec(wire).encode_broker(broker))
    return path


def save_system(system: SummaryPubSub, directory: PathLike) -> List[Path]:
    """Snapshot every broker to ``<directory>/broker-<id>.snap`` (each file
    written atomically — see :func:`write_snapshot_atomic`)."""
    target = Path(directory)
    target.mkdir(parents=True, exist_ok=True)
    codec = SnapshotCodec(system.wire)
    written: List[Path] = []
    for broker_id, broker in sorted(system.brokers.items()):
        path = snapshot_path(target, broker_id)
        write_snapshot_atomic(path, codec.encode_broker(broker))
        written.append(path)
    return written


def load_system(system: SummaryPubSub, directory: PathLike) -> SummaryPubSub:
    """Restore snapshots into a freshly-built system (same topology/schema).

    The caller constructs the empty system (topology, schema, precision and
    codec parameters must match the saved deployment — the snapshot format
    carries subscriptions, not configuration).

    Every broker in the topology must have its snapshot, and every
    ``broker-*.snap`` file in the directory must belong to a broker in the
    topology: a stray snapshot means the directory was written by a
    *different* deployment (more brokers, different numbering), and
    silently ignoring it would half-restore that deployment's state.
    """
    source = Path(directory)
    expected = {snapshot_path(source, b).name for b in system.brokers}
    strays = sorted(
        p.name for p in source.glob("broker-*.snap") if p.name not in expected
    )
    if strays:
        raise ValueError(
            f"snapshot directory {source} holds snapshots for brokers not in "
            f"this topology ({', '.join(strays)}); refusing to half-restore a "
            f"mismatched deployment"
        )
    codec = SnapshotCodec(system.wire)
    for broker_id, broker in sorted(system.brokers.items()):
        path = snapshot_path(source, broker_id)
        if not path.exists():
            raise FileNotFoundError(f"missing snapshot for broker {broker_id}: {path}")
        codec.restore_broker(path.read_bytes(), broker)
    return system
