"""The summary-centric broker (paper sections 3-4).

A :class:`SummaryBroker` owns:

* its clients' raw subscriptions (:class:`SubscriptionStore` — these never
  leave the broker; they allocate ids and perform the exact re-check),
* the *pending batch* of subscriptions accepted since the last propagation
  period (the paper's sigma),
* the *kept* multi-broker summary — its own subscriptions merged with every
  summary received in past propagation periods — plus the matching
  ``Merged_Brokers`` set, and
* per-period propagation scratch state (Algorithm 2).

Message handling is split by concern: :mod:`repro.broker.propagation`
drives Algorithm 2 and :mod:`repro.broker.routing` implements Algorithm 3;
this module is the broker state they act on.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.model.events import Event
from repro.model.ids import SubscriptionId
from repro.model.schema import Schema
from repro.model.subscriptions import Subscription
from repro.obs.tracing import NULL_TRACER
from repro.summary.compiled import CompiledMatcher
from repro.summary.maintenance import SubscriptionStore
from repro.summary.precision import Precision
from repro.summary.summary import BrokerSummary

__all__ = ["SummaryBroker", "DeliveryCallback", "MATCHERS"]

#: Valid values for the ``matcher`` option: ``"reference"`` walks the live
#: summary structures (Algorithm 1 exactly as the paper states it; the
#: default, used by all figure-reproduction code), ``"compiled"`` matches
#: against a flat :class:`~repro.summary.compiled.CompiledMatcher` snapshot
#: that self-invalidates on summary mutation (the production fast path).
MATCHERS = ("reference", "compiled")

#: Called when an event is delivered to a subscription's consumer:
#: ``(broker_id, subscription_id, event)``.
DeliveryCallback = Callable[[int, SubscriptionId, Event], None]


class SummaryBroker:
    """State of one broker in the summary-based system."""

    #: Observability hooks.  Plain attributes (not ctor params) so the
    #: system — and the ext systems that override broker creation — can
    #: attach them after construction; the defaults cost one attribute
    #: check per use.  ``paranoid`` additionally enables the
    #: compiled-vs-reference parity cross-check inside :meth:`match_kept`.
    tracer = NULL_TRACER
    paranoid = False

    def __init__(
        self,
        broker_id: int,
        schema: Schema,
        precision: Precision = Precision.COARSE,
        on_delivery: Optional[DeliveryCallback] = None,
        matcher: str = "reference",
        dedup_capacity: int = 4096,
        max_subscriptions: Optional[int] = None,
        match_cache_size: int = 0,
        suppress_covered: bool = True,
    ):
        if matcher not in MATCHERS:
            raise ValueError(
                f"unknown matcher {matcher!r}; expected one of {MATCHERS}"
            )
        if dedup_capacity < 1:
            raise ValueError("dedup capacity must be positive")
        if match_cache_size < 0:
            raise ValueError("match cache size must be >= 0")
        self.broker_id = broker_id
        self.schema = schema
        self.precision = precision
        self.matcher = matcher
        #: LRU entries of the compiled matcher's ``match_many`` cache
        #: (0 disables caching; only meaningful with ``matcher="compiled"``).
        self.match_cache_size = match_cache_size
        self.store = SubscriptionStore(schema, broker_id, max_subscriptions)
        self.on_delivery = on_delivery
        #: Lazily (re)built compiled snapshot of ``kept_summary`` when the
        #: ``"compiled"`` matcher is selected.
        self._compiled: Optional[CompiledMatcher] = None

        #: Subscriptions accepted since the last propagation period.
        self.pending: List[Tuple[SubscriptionId, Subscription]] = []

        #: Own + everything received in past periods (what events match on).
        self.kept_summary = BrokerSummary(schema, precision)
        #: Brokers whose subscriptions are inside ``kept_summary``.
        self.merged_brokers: Set[int] = {broker_id}

        # -- per-period propagation scratch (Algorithm 2) --
        self.delta_summary: Optional[BrokerSummary] = None
        self.delta_brokers: Set[int] = set()
        self.contacted: Set[int] = set()
        #: Whether this broker already sent its period delta (Algorithm 2
        #: acts once per period).  Unsubscribes consult it to decide whether
        #: a removal can still ride the current period or must wait.
        self.period_acted = False
        #: The pending sids folded into the in-flight period's delta at
        #: ``begin_period``.  ``finish_period`` retires exactly these from
        #: ``pending``: ids that arrive *mid-period* — a late subscribe, or
        #: an orphan promoted by ``_frontier_remove`` when its coverer
        #: unsubscribes — were never summarized into any frame and must
        #: stay pending for the next period, or remote brokers would never
        #: learn them.
        self._period_folded: Set[SubscriptionId] = set()
        #: True while a ``begin_period``-built delta is in flight — i.e. the
        #: delta already contains everything that was pending at period
        #: start.  The live runtime folds pending at *act* time instead
        #: (``BrokerRuntime.period_act``) and leaves this False, so
        #: mid-period frontier promotions know which regime they are in.
        self._delta_prefolded = False

        # -- incremental (delta-mode) propagation state --
        #: Own ids unsubscribed after they were propagated; they ship as the
        #: removal block of the next period's delta frame.
        self.removed_pending: Set[SubscriptionId] = set()
        #: Removal block of the in-flight period: the snapshot of
        #: ``removed_pending`` taken at ``begin_period`` plus every removal
        #: received from peers this period.  Applied to ``kept_summary`` by
        #: ``finish_period`` (after the delta adds merge — removal wins).
        self.delta_removed: Set[SubscriptionId] = set()
        #: Per-directed-link delta generations: ``link_generations_out[dst]``
        #: is the generation of the last delta sent to ``dst``;
        #: ``link_generations_in[src]`` the last applied from ``src``.  A
        #: delta whose ``base_generation`` does not match the receiver's
        #: ``in`` entry is rejected (the chain broke — a refresh, restart or
        #: loss happened) and the receiver falls back to requesting a full
        #: summary.
        self.link_generations_out: Dict[int, int] = {}
        self.link_generations_in: Dict[int, int] = {}

        # -- covered-id suppression (folded in from repro.ext.hybrid) --
        #: Frontier of covering subscriptions: only frontier members are
        #: summarized and propagated; covered ids never hit the wire.
        self._frontier = None  # Optional[SidCoveringIndex]
        #: coverer sid -> ids it suppresses (and the inverse map).
        self._covered_by: Dict[SubscriptionId, Set[SubscriptionId]] = {}
        self._coverer_of: Dict[SubscriptionId, SubscriptionId] = {}
        #: Unsubscribed frontier members -> the ids they covered at removal
        #: time.  Remote summaries keep naming a dead coverer until the
        #: removal block (or a refresh) reaches them, so notifications for
        #: the stale id must still expand to its former dependents — else
        #: the covered subscriptions silently lose deliveries during the
        #: churn window.  LRU-bounded like the dedup tables (full-summary
        #: mode never sheds remote ids incrementally, so entries have no
        #: natural expiry).
        self._ghost_covers: OrderedDict = OrderedDict()
        if suppress_covered:
            # Deferred import: the siena package's __init__ imports the
            # siena broker, which imports this module — resolvable only
            # after both modules finish loading.
            from repro.siena.poset import SidCoveringIndex

            self._frontier = SidCoveringIndex()

        # -- statistics --
        self.deliveries: List[Tuple[SubscriptionId, Event]] = []
        self.false_positive_notifies = 0
        self.events_examined = 0
        self.duplicates_suppressed = 0

        # -- at-least-once tolerance: recently seen publish ids (LRU) --
        self._routed_publishes: OrderedDict = OrderedDict()
        self._delivered_publishes: OrderedDict = OrderedDict()
        self._dedup_capacity = dedup_capacity

    # -- subscription side ----------------------------------------------------

    def subscribe(self, subscription: Subscription) -> SubscriptionId:
        """Accept a client subscription; it propagates at the next period.

        Under covered-id suppression a subscription subsumed by an existing
        frontier member is stored (it still allocates an id and takes part
        in the exact re-check) but never summarized or propagated: every
        event it matches also matches its coverer, so the coverer's
        presence in remote summaries already routes those events here.
        """
        sid = self.store.subscribe(subscription)
        if self._frontier is not None:
            coverer = self._frontier.find_coverer(subscription)
            if coverer is not None:
                self._coverer_of[sid] = coverer
                self._covered_by.setdefault(coverer, set()).add(sid)
                return sid
            self._frontier.add(sid, subscription)
        self.pending.append((sid, subscription))
        return sid

    def unsubscribe(self, sid: SubscriptionId) -> bool:
        """Drop a client subscription.

        The id is removed from the local kept summary immediately; remote
        kept summaries retain it until the removal propagates (the next
        delta period in delta mode, a full refresh otherwise), and their
        matches in the meantime are harmless — the exact re-check here
        drops them.

        The id must also leave the *in-flight period delta*: when an
        unsubscribe lands between ``begin_period`` and ``finish_period``,
        the delta still holds the id (it was pending when the period
        started), and ``finish_period`` merges the delta into
        ``kept_summary`` — silently resurrecting the id until the next
        full refresh.  The :class:`~repro.obs.audit.SummaryAuditor`'s
        ``local-liveness`` check exists to catch exactly this divergence.

        Removal scheduling (delta mode): an id that may already live in
        remote summaries lands in ``delta_removed`` when the current
        period's delta has not been sent yet, otherwise in
        ``removed_pending`` for the next period.  Ids that provably never
        left this broker (still pending, or scrubbed from an unsent delta)
        are not propagated at all.  ``c2`` values are never reused, so
        over-approximating removals is always safe.
        """
        if self.store.unsubscribe(sid) is None:
            return False
        if self._frontier is not None and sid in self._coverer_of:
            # Covered ids were never summarized nor propagated: dropping
            # one is a pure store-side operation.
            coverer = self._coverer_of.pop(sid)
            siblings = self._covered_by.get(coverer)
            if siblings is not None:
                siblings.discard(sid)
                if not siblings:
                    del self._covered_by[coverer]
            return True
        was_pending = any(p_sid == sid for p_sid, _ in self.pending)
        self.pending = [(p_sid, p_sub) for p_sid, p_sub in self.pending if p_sid != sid]
        self.kept_summary.remove(sid)
        in_period = self.delta_summary is not None
        removed_from_delta = self.delta_summary.remove(sid) if in_period else False
        if removed_from_delta and not self.period_acted:
            pass  # scrubbed from the only frame that would have carried it
        elif was_pending and not (in_period and self.period_acted):
            pass  # never folded into any sent delta
        elif in_period and not self.period_acted:
            self.delta_removed.add(sid)  # rides this period's delta frame
        else:
            self.removed_pending.add(sid)  # ships next period
        if self._frontier is not None and sid in self._frontier:
            self._frontier_remove(sid)
        return True

    # -- propagation-period state (driven by PropagationEngine) -----------------

    def begin_period(self) -> None:
        """Build the delta summary of this period's new subscriptions."""
        delta = BrokerSummary(self.schema, self.precision)
        for sid, subscription in self.pending:
            delta.add(subscription, sid)
        self._period_folded = {sid for sid, _ in self.pending}
        self._delta_prefolded = True
        self.delta_summary = delta
        self.delta_brokers = {self.broker_id}
        self.contacted = set()
        # Snapshot (without clearing — unsubscribes landing mid-period
        # after the delta was sent keep accumulating for the next one).
        self.delta_removed = set(self.removed_pending)
        self.period_acted = False

    def absorb_summary(self, src: int, summary: BrokerSummary, brokers: Set[int]) -> None:
        """Handle a received SummaryMessage: merge into the period delta.

        A full summary also restarts the delta-generation chain of the
        ``src`` link: the next delta from ``src`` must base itself on this
        snapshot (``base_generation == 0``).
        """
        if self.delta_summary is None:
            raise RuntimeError(
                f"broker {self.broker_id} received a summary outside a "
                f"propagation period"
            )
        self.delta_summary.merge(summary)
        self.delta_brokers |= brokers
        self.contacted.add(src)
        self.link_generations_in[src] = 0

    def absorb_summary_snapshot(
        self, src: int, summary: BrokerSummary, brokers: Set[int]
    ) -> None:
        """Absorb a full summary at *any* time, even between periods.

        The live runtime's fallback resync (chain mismatch -> full-summary
        reply) can straddle a period close — a broker restarted mid-run may
        request or receive snapshots while no period is open.  A full
        summary is ground truth, so between periods it folds straight into
        the kept summary instead of the (absent) period delta.
        """
        if self.delta_summary is not None:
            self.absorb_summary(src, summary, brokers)
            return
        self.kept_summary.merge(summary)
        self.merged_brokers |= set(brokers)
        self.link_generations_in[src] = 0

    def absorb_delta(
        self,
        src: int,
        adds: BrokerSummary,
        removed: Set[SubscriptionId],
        brokers: Set[int],
        base_generation: int,
        generation: int,
    ) -> bool:
        """Handle a received SummaryDeltaMessage.

        Returns False — *without touching any state* — when the delta does
        not chain onto the last frame applied from ``src`` (its
        ``base_generation`` disagrees with ``link_generations_in``), which
        happens after a full refresh, a restart, or message loss.  The
        caller reacts by requesting a full summary from ``src``.
        """
        if self.delta_summary is None:
            return False  # between periods: can't fold, ask for a snapshot
        if base_generation != self.link_generations_in.get(src, 0):
            return False
        self.link_generations_in[src] = generation
        self.delta_summary.merge(adds)
        self.delta_removed |= removed
        self.delta_brokers |= brokers
        self.contacted.add(src)
        return True

    def finish_period(self) -> None:
        """Fold the period's delta into the kept multi-broker summary.

        Adds merge first, then the period's removal block applies on top —
        so a subscription added and removed within the same period ends up
        removed (``c2`` values are never reused, which makes this ordering
        unconditionally safe).
        """
        if self.delta_summary is None:
            return
        self.kept_summary.merge(self.delta_summary)
        if self.delta_removed:
            for sid in self.delta_removed:
                self.kept_summary.remove(sid)
            self.removed_pending -= self.delta_removed
        self.merged_brokers |= self.delta_brokers
        self.delta_summary = None
        self.delta_brokers = set()
        self.delta_removed = set()
        # Retire only what this period's delta actually carried: ids that
        # arrived after ``begin_period`` (mid-period subscribes, orphans
        # promoted by a coverer's unsubscribe) still await propagation.
        self.pending = [
            (sid, sub) for sid, sub in self.pending
            if sid not in self._period_folded
        ]
        self._period_folded = set()
        self._delta_prefolded = False
        self.period_acted = False

    def rebuild_own_summary(self) -> BrokerSummary:
        """A fresh summary of all currently stored subscriptions — or, under
        covered-id suppression, of the covering frontier only (used by
        full-refresh periods after heavy unsubscription churn)."""
        if self._frontier is None:
            return self.store.build_summary(self.precision)
        summary = BrokerSummary(self.schema, self.precision)
        for sid, subscription in sorted(self._frontier.items()):
            summary.add(subscription, sid)
        return summary

    def refresh_batch(self) -> List[Tuple[SubscriptionId, Subscription]]:
        """The subscriptions a full-refresh period re-propagates: every
        stored one, or only the frontier members under suppression."""
        if self._frontier is None:
            return list(self.store.items())
        return sorted(self._frontier.items())

    def reset_merged_state(self) -> None:
        """Forget remote knowledge (full-refresh support): the kept summary
        restarts from the local store.

        The per-period propagation scratch is cleared too: a refresh
        started while a period is in flight must not let ``finish_period``
        fold the pre-reset delta (old remote knowledge) back into the
        freshly rebuilt kept summary.

        Delta-chain state resets with it: pending removals are pointless
        (the refresh re-ships ground truth) and both generation maps clear,
        so any in-flight delta that arrives after the refresh fails the
        ``base_generation`` check and falls back to a full summary instead
        of silently merging stale rows.
        """
        if self._frontier is not None:
            self._rebuild_suppression()
        self.kept_summary = self.rebuild_own_summary()
        self.merged_brokers = {self.broker_id}
        self.pending = []
        self.delta_summary = None
        self.delta_brokers = set()
        self.contacted = set()
        self.removed_pending = set()
        self.delta_removed = set()
        self.period_acted = False
        self.link_generations_out = {}
        self.link_generations_in = {}

    # -- covered-id suppression internals ---------------------------------------

    @property
    def suppress_covered(self) -> bool:
        """Whether covered-id suppression is active on this broker."""
        return self._frontier is not None

    @property
    def suppressed(self) -> int:
        """Stored subscriptions currently suppressed (covered by a frontier
        member).  Exact by construction: every covered id holds exactly one
        entry in ``_coverer_of``."""
        return len(self._coverer_of)

    @property
    def frontier_size(self) -> int:
        """Frontier members (0 with suppression disabled — everything is
        propagated, nothing is tracked)."""
        return len(self._frontier) if self._frontier is not None else 0

    def _frontier_remove(self, sid: SubscriptionId) -> None:
        """Drop a frontier member and re-home the ids it covered.

        Strictly local (the incremental rebuild): only ``sid``'s own
        covered set is reconsidered.  Each orphan either re-homes under a
        surviving coverer or promotes into the frontier — entering
        ``kept_summary`` (it must match local events immediately) and
        ``pending`` (remote brokers learn it next period).  Orphans are
        processed in sorted order, so a promoted orphan can deterministically
        become the coverer of its later siblings.
        """
        self._frontier.remove(sid)
        orphans = self._covered_by.pop(sid, set())
        survivors = {
            orphan for orphan in orphans if self.store.get(orphan) is not None
        }
        if survivors:
            # Remote brokers notify on the dead coverer's id until the
            # removal propagates; route those to its former dependents.
            self._ghost_covers[sid] = frozenset(survivors)
            if len(self._ghost_covers) > self._dedup_capacity:
                self._ghost_covers.popitem(last=False)
        for orphan in sorted(orphans):
            subscription = self.store.get(orphan)
            if subscription is None:
                del self._coverer_of[orphan]
                continue
            coverer = self._frontier.find_coverer(subscription)
            if coverer is not None:
                self._coverer_of[orphan] = coverer
                self._covered_by.setdefault(coverer, set()).add(orphan)
                continue
            del self._coverer_of[orphan]
            self._frontier.add(orphan, subscription)
            self.kept_summary.add(subscription, orphan)
            self.pending.append((orphan, subscription))
            if (
                self._delta_prefolded
                and self.delta_summary is not None
                and not self.period_acted
            ):
                # The in-flight delta was built from ``pending`` at
                # ``begin_period`` and has not been sent yet.  Without
                # suppression this id would have been pending then and
                # ridden this very frame — promoting it only into
                # ``pending`` would delay its propagation a full period
                # behind its coverer's removal, leaving a window where no
                # remote summary routes events to this broker at all.
                self.delta_summary.add(subscription, orphan)
                self._period_folded.add(orphan)

    def _rebuild_suppression(self) -> None:
        """Recompute the frontier and cover maps from the store (refresh
        support — unsubscribe churn may have left the frontier larger than
        it needs to be, since adds never evict)."""
        from repro.siena.poset import SidCoveringIndex

        frontier = SidCoveringIndex()
        self._covered_by = {}
        self._coverer_of = {}
        for sid, subscription in sorted(self.store.items()):
            coverer = frontier.find_coverer(subscription)
            if coverer is None:
                frontier.add(sid, subscription)
            else:
                self._coverer_of[sid] = coverer
                self._covered_by.setdefault(coverer, set()).add(sid)
        self._frontier = frontier

    def rebuild_suppression_from_state(self) -> None:
        """Reconstruct suppression maps after a snapshot restore.

        The restored ``kept_summary``/``pending`` say which own ids are
        visible to the outside world — those must stay frontier members
        (demoting one would strand a summarized id without its exact-check
        owner mapping).  Every other stored id re-homes under that frontier
        or promotes.
        """
        if self._frontier is None:
            return
        from repro.siena.poset import SidCoveringIndex

        visible = {
            sid for sid in self.kept_summary.all_ids() if sid.broker == self.broker_id
        }
        visible |= {sid for sid, _ in self.pending}
        frontier = SidCoveringIndex()
        self._covered_by = {}
        self._coverer_of = {}
        rest: List[Tuple[SubscriptionId, Subscription]] = []
        for sid, subscription in sorted(self.store.items()):
            if sid in visible:
                frontier.add(sid, subscription)
            else:
                rest.append((sid, subscription))
        self._frontier = frontier
        for sid, subscription in rest:
            coverer = frontier.find_coverer(subscription)
            if coverer is not None:
                self._coverer_of[sid] = coverer
                self._covered_by.setdefault(coverer, set()).add(sid)
            else:
                # Snapshot predates suppression (or was taken with it off):
                # promote so the id keeps matching.
                frontier.add(sid, subscription)
                self.kept_summary.add(subscription, sid)
                self.pending.append((sid, subscription))

    # -- event side -------------------------------------------------------------

    def first_routing_of(self, publish_id: int) -> bool:
        """Whether this broker has NOT yet run the routing step for this
        publish (duplicate EVENT messages return False and are dropped).
        ``publish_id == 0`` (unidentified) always counts as first."""
        if publish_id == 0:
            return True
        if publish_id in self._routed_publishes:
            # LRU, not FIFO: a re-seen id is hot (retransmissions in
            # flight) and must outlive colder entries.
            self._routed_publishes.move_to_end(publish_id)
            self.duplicates_suppressed += 1
            return False
        self._remember(self._routed_publishes, publish_id)
        return True

    def _remember(self, table: OrderedDict, publish_id: int) -> None:
        """Insert at the MRU end, evicting the LRU entry past capacity."""
        table[publish_id] = None
        if len(table) > self._dedup_capacity:
            table.popitem(last=False)

    def clear_dedup(self) -> None:
        """Forget all remembered publish ids (crash-recovery support: a
        restored broker must not treat a new router generation's ids as
        duplicates of pre-snapshot traffic)."""
        self._routed_publishes.clear()
        self._delivered_publishes.clear()

    # -- dedup introspection (read-only; the auditor checks capacity) --

    @property
    def dedup_capacity(self) -> int:
        """Configured bound of each publish-id LRU table."""
        return self._dedup_capacity

    @property
    def routed_dedup_size(self) -> int:
        """Entries currently held by the routing-side dedup table."""
        return len(self._routed_publishes)

    @property
    def delivered_dedup_size(self) -> int:
        """Entries currently held by the delivery-side dedup table."""
        return len(self._delivered_publishes)

    def match_kept(self, event: Event) -> Set[SubscriptionId]:
        """Match an event against the kept multi-broker summary.

        With ``matcher="compiled"`` this goes through a flat
        :class:`CompiledMatcher` snapshot of the kept summary; the snapshot
        tracks the summary's generation counter, so mutations from
        propagation periods (``merge``), subscriptions (``add``) and
        unsubscriptions (``remove``) transparently trigger a lazy rebuild.
        Both paths return identical id sets (see
        ``tests/summary/test_compiled_differential.py``).
        """
        self.events_examined += 1
        if self.matcher == "compiled":
            matched = self._compiled_matcher().match(event)
            if self.paranoid:
                self._check_match_parity(matched, event)
            return matched
        return self.kept_summary.match(event)

    def match_kept_many(self, events: List[Event]) -> List[Set[SubscriptionId]]:
        """Match a batch of events against the kept summary, in order.

        The batched form of :meth:`match_kept`: with ``matcher="compiled"``
        it goes through :meth:`CompiledMatcher.match_many`, which amortizes
        the staleness check over the batch and (with
        ``match_cache_size > 0``) serves repeated events from an LRU that
        a summary-generation bump fully evicts.  The reference matcher
        falls back to a per-event walk — identical results either way.
        """
        self.events_examined += len(events)
        if self.matcher == "compiled":
            results = self._compiled_matcher().match_many(events)
            if self.paranoid:
                for event, matched in zip(events, results):
                    self._check_match_parity(matched, event)
            return results
        return [self.kept_summary.match(event) for event in events]

    def _compiled_matcher(self) -> CompiledMatcher:
        compiled = self._compiled
        if compiled is None or compiled.summary is not self.kept_summary:
            # ``reset_merged_state`` swaps in a brand-new summary object;
            # rebind the snapshot to whatever is current.
            compiled = self._compiled = CompiledMatcher(
                self.kept_summary, cache_size=self.match_cache_size
            )
        return compiled

    def _check_match_parity(self, fast: Set[SubscriptionId], event: Event) -> None:
        """Paranoid-mode cross-check: the compiled snapshot must agree with
        the reference Algorithm-1 walk on every event (cold path — only
        runs when :attr:`paranoid` is set)."""
        reference = self.kept_summary.match(event)
        if fast == reference:
            return
        from repro.obs.audit import AuditError, Violation

        raise AuditError([Violation(
            "match-parity", self.broker_id,
            f"compiled/reference disagree on {event!r}: "
            f"only-compiled={sorted(fast - reference)[:3]} "
            f"only-reference={sorted(reference - fast)[:3]}",
        )])

    def deliver(
        self, sids: Set[SubscriptionId], event: Event, publish_id: int = 0
    ) -> Set[SubscriptionId]:
        """Owner-side delivery: exact re-check, then hand to consumers.

        Returns the confirmed ids; the difference is the COARSE false
        positives (or ids unsubscribed since the summary was propagated).
        Duplicate notifications for an already-delivered publish are
        suppressed (at-least-once transport tolerance).

        Under covered-id suppression the candidate set only names frontier
        members (covered ids are in no summary), so each candidate expands
        to the ids it covers before the exact re-check — a covered
        subscription matches a subset of what its coverer matches, so this
        expansion is exactly the candidate set the unsuppressed system
        would have produced, filtered by the same re-check.
        """
        if self._covered_by or self._ghost_covers:
            # Transitive closure: a ghost's dependent can itself have died
            # and become a ghost before the first removal ever propagated.
            expanded = set(sids)
            frontier_sids = list(sids)
            while frontier_sids:
                candidate = frontier_sids.pop()
                for covered in (
                    self._covered_by.get(candidate),
                    self._ghost_covers.get(candidate),
                ):
                    if covered:
                        for dependent in covered:
                            if dependent not in expanded:
                                expanded.add(dependent)
                                frontier_sids.append(dependent)
            sids = expanded
        if publish_id:
            if publish_id in self._delivered_publishes:
                self._delivered_publishes.move_to_end(publish_id)  # LRU touch
                self.duplicates_suppressed += 1
                return set()
            self._remember(self._delivered_publishes, publish_id)
        tracer = self.tracer
        if tracer.enabled:
            with tracer.span(
                "recheck", broker=self.broker_id, trace_id=publish_id,
                candidates=len(sids),
            ) as span:
                confirmed = self.store.recheck(event, sids)
                span.note(
                    confirmed=len(confirmed),
                    false_positives=len(sids) - len(confirmed),
                )
        else:
            confirmed = self.store.recheck(event, sids)
        self.false_positive_notifies += len(sids) - len(confirmed)
        for sid in sorted(confirmed):
            self.deliveries.append((sid, event))
            if self.on_delivery is not None:
                self.on_delivery(self.broker_id, sid, event)
        if confirmed and tracer.enabled:
            tracer.record(
                "delivery", broker=self.broker_id, trace_id=publish_id,
                count=len(confirmed),
            )
        return confirmed

    def __repr__(self) -> str:
        return (
            f"SummaryBroker(id={self.broker_id}, subs={len(self.store)}, "
            f"knows={sorted(self.merged_brokers)})"
        )
