"""The summary-centric broker (paper sections 3-4).

A :class:`SummaryBroker` owns:

* its clients' raw subscriptions (:class:`SubscriptionStore` — these never
  leave the broker; they allocate ids and perform the exact re-check),
* the *pending batch* of subscriptions accepted since the last propagation
  period (the paper's sigma),
* the *kept* multi-broker summary — its own subscriptions merged with every
  summary received in past propagation periods — plus the matching
  ``Merged_Brokers`` set, and
* per-period propagation scratch state (Algorithm 2).

Message handling is split by concern: :mod:`repro.broker.propagation`
drives Algorithm 2 and :mod:`repro.broker.routing` implements Algorithm 3;
this module is the broker state they act on.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.model.events import Event
from repro.model.ids import SubscriptionId
from repro.model.schema import Schema
from repro.model.subscriptions import Subscription
from repro.obs.tracing import NULL_TRACER
from repro.summary.compiled import CompiledMatcher
from repro.summary.maintenance import SubscriptionStore
from repro.summary.precision import Precision
from repro.summary.summary import BrokerSummary

__all__ = ["SummaryBroker", "DeliveryCallback", "MATCHERS"]

#: Valid values for the ``matcher`` option: ``"reference"`` walks the live
#: summary structures (Algorithm 1 exactly as the paper states it; the
#: default, used by all figure-reproduction code), ``"compiled"`` matches
#: against a flat :class:`~repro.summary.compiled.CompiledMatcher` snapshot
#: that self-invalidates on summary mutation (the production fast path).
MATCHERS = ("reference", "compiled")

#: Called when an event is delivered to a subscription's consumer:
#: ``(broker_id, subscription_id, event)``.
DeliveryCallback = Callable[[int, SubscriptionId, Event], None]


class SummaryBroker:
    """State of one broker in the summary-based system."""

    #: Observability hooks.  Plain attributes (not ctor params) so the
    #: system — and the ext systems that override broker creation — can
    #: attach them after construction; the defaults cost one attribute
    #: check per use.  ``paranoid`` additionally enables the
    #: compiled-vs-reference parity cross-check inside :meth:`match_kept`.
    tracer = NULL_TRACER
    paranoid = False

    def __init__(
        self,
        broker_id: int,
        schema: Schema,
        precision: Precision = Precision.COARSE,
        on_delivery: Optional[DeliveryCallback] = None,
        matcher: str = "reference",
        dedup_capacity: int = 4096,
        max_subscriptions: Optional[int] = None,
        match_cache_size: int = 0,
    ):
        if matcher not in MATCHERS:
            raise ValueError(
                f"unknown matcher {matcher!r}; expected one of {MATCHERS}"
            )
        if dedup_capacity < 1:
            raise ValueError("dedup capacity must be positive")
        if match_cache_size < 0:
            raise ValueError("match cache size must be >= 0")
        self.broker_id = broker_id
        self.schema = schema
        self.precision = precision
        self.matcher = matcher
        #: LRU entries of the compiled matcher's ``match_many`` cache
        #: (0 disables caching; only meaningful with ``matcher="compiled"``).
        self.match_cache_size = match_cache_size
        self.store = SubscriptionStore(schema, broker_id, max_subscriptions)
        self.on_delivery = on_delivery
        #: Lazily (re)built compiled snapshot of ``kept_summary`` when the
        #: ``"compiled"`` matcher is selected.
        self._compiled: Optional[CompiledMatcher] = None

        #: Subscriptions accepted since the last propagation period.
        self.pending: List[Tuple[SubscriptionId, Subscription]] = []

        #: Own + everything received in past periods (what events match on).
        self.kept_summary = BrokerSummary(schema, precision)
        #: Brokers whose subscriptions are inside ``kept_summary``.
        self.merged_brokers: Set[int] = {broker_id}

        # -- per-period propagation scratch (Algorithm 2) --
        self.delta_summary: Optional[BrokerSummary] = None
        self.delta_brokers: Set[int] = set()
        self.contacted: Set[int] = set()

        # -- statistics --
        self.deliveries: List[Tuple[SubscriptionId, Event]] = []
        self.false_positive_notifies = 0
        self.events_examined = 0
        self.duplicates_suppressed = 0

        # -- at-least-once tolerance: recently seen publish ids (LRU) --
        self._routed_publishes: OrderedDict = OrderedDict()
        self._delivered_publishes: OrderedDict = OrderedDict()
        self._dedup_capacity = dedup_capacity

    # -- subscription side ----------------------------------------------------

    def subscribe(self, subscription: Subscription) -> SubscriptionId:
        """Accept a client subscription; it propagates at the next period."""
        sid = self.store.subscribe(subscription)
        self.pending.append((sid, subscription))
        return sid

    def unsubscribe(self, sid: SubscriptionId) -> bool:
        """Drop a client subscription.

        The id is removed from the local kept summary immediately; remote
        kept summaries retain it until a full refresh period, but their
        matches are harmless — the exact re-check here drops them.

        The id must also leave the *in-flight period delta*: when an
        unsubscribe lands between ``begin_period`` and ``finish_period``,
        the delta still holds the id (it was pending when the period
        started), and ``finish_period`` merges the delta into
        ``kept_summary`` — silently resurrecting the id until the next
        full refresh.  The :class:`~repro.obs.audit.SummaryAuditor`'s
        ``local-liveness`` check exists to catch exactly this divergence.
        """
        if self.store.unsubscribe(sid) is None:
            return False
        self.pending = [(p_sid, p_sub) for p_sid, p_sub in self.pending if p_sid != sid]
        self.kept_summary.remove(sid)
        if self.delta_summary is not None:
            self.delta_summary.remove(sid)
        return True

    # -- propagation-period state (driven by PropagationEngine) -----------------

    def begin_period(self) -> None:
        """Build the delta summary of this period's new subscriptions."""
        delta = BrokerSummary(self.schema, self.precision)
        for sid, subscription in self.pending:
            delta.add(subscription, sid)
        self.delta_summary = delta
        self.delta_brokers = {self.broker_id}
        self.contacted = set()

    def absorb_summary(self, src: int, summary: BrokerSummary, brokers: Set[int]) -> None:
        """Handle a received SummaryMessage: merge into the period delta."""
        if self.delta_summary is None:
            raise RuntimeError(
                f"broker {self.broker_id} received a summary outside a "
                f"propagation period"
            )
        self.delta_summary.merge(summary)
        self.delta_brokers |= brokers
        self.contacted.add(src)

    def finish_period(self) -> None:
        """Fold the period's delta into the kept multi-broker summary."""
        if self.delta_summary is None:
            return
        self.kept_summary.merge(self.delta_summary)
        self.merged_brokers |= self.delta_brokers
        self.delta_summary = None
        self.delta_brokers = set()
        self.pending = []

    def rebuild_own_summary(self) -> BrokerSummary:
        """A fresh summary of all currently stored subscriptions (used by
        full-refresh periods after heavy unsubscription churn)."""
        return self.store.build_summary(self.precision)

    def reset_merged_state(self) -> None:
        """Forget remote knowledge (full-refresh support): the kept summary
        restarts from the local store.

        The per-period propagation scratch is cleared too: a refresh
        started while a period is in flight must not let ``finish_period``
        fold the pre-reset delta (old remote knowledge) back into the
        freshly rebuilt kept summary.
        """
        self.kept_summary = self.rebuild_own_summary()
        self.merged_brokers = {self.broker_id}
        self.pending = []
        self.delta_summary = None
        self.delta_brokers = set()
        self.contacted = set()

    # -- event side -------------------------------------------------------------

    def first_routing_of(self, publish_id: int) -> bool:
        """Whether this broker has NOT yet run the routing step for this
        publish (duplicate EVENT messages return False and are dropped).
        ``publish_id == 0`` (unidentified) always counts as first."""
        if publish_id == 0:
            return True
        if publish_id in self._routed_publishes:
            # LRU, not FIFO: a re-seen id is hot (retransmissions in
            # flight) and must outlive colder entries.
            self._routed_publishes.move_to_end(publish_id)
            self.duplicates_suppressed += 1
            return False
        self._remember(self._routed_publishes, publish_id)
        return True

    def _remember(self, table: OrderedDict, publish_id: int) -> None:
        """Insert at the MRU end, evicting the LRU entry past capacity."""
        table[publish_id] = None
        if len(table) > self._dedup_capacity:
            table.popitem(last=False)

    def clear_dedup(self) -> None:
        """Forget all remembered publish ids (crash-recovery support: a
        restored broker must not treat a new router generation's ids as
        duplicates of pre-snapshot traffic)."""
        self._routed_publishes.clear()
        self._delivered_publishes.clear()

    # -- dedup introspection (read-only; the auditor checks capacity) --

    @property
    def dedup_capacity(self) -> int:
        """Configured bound of each publish-id LRU table."""
        return self._dedup_capacity

    @property
    def routed_dedup_size(self) -> int:
        """Entries currently held by the routing-side dedup table."""
        return len(self._routed_publishes)

    @property
    def delivered_dedup_size(self) -> int:
        """Entries currently held by the delivery-side dedup table."""
        return len(self._delivered_publishes)

    def match_kept(self, event: Event) -> Set[SubscriptionId]:
        """Match an event against the kept multi-broker summary.

        With ``matcher="compiled"`` this goes through a flat
        :class:`CompiledMatcher` snapshot of the kept summary; the snapshot
        tracks the summary's generation counter, so mutations from
        propagation periods (``merge``), subscriptions (``add``) and
        unsubscriptions (``remove``) transparently trigger a lazy rebuild.
        Both paths return identical id sets (see
        ``tests/summary/test_compiled_differential.py``).
        """
        self.events_examined += 1
        if self.matcher == "compiled":
            matched = self._compiled_matcher().match(event)
            if self.paranoid:
                self._check_match_parity(matched, event)
            return matched
        return self.kept_summary.match(event)

    def match_kept_many(self, events: List[Event]) -> List[Set[SubscriptionId]]:
        """Match a batch of events against the kept summary, in order.

        The batched form of :meth:`match_kept`: with ``matcher="compiled"``
        it goes through :meth:`CompiledMatcher.match_many`, which amortizes
        the staleness check over the batch and (with
        ``match_cache_size > 0``) serves repeated events from an LRU that
        a summary-generation bump fully evicts.  The reference matcher
        falls back to a per-event walk — identical results either way.
        """
        self.events_examined += len(events)
        if self.matcher == "compiled":
            results = self._compiled_matcher().match_many(events)
            if self.paranoid:
                for event, matched in zip(events, results):
                    self._check_match_parity(matched, event)
            return results
        return [self.kept_summary.match(event) for event in events]

    def _compiled_matcher(self) -> CompiledMatcher:
        compiled = self._compiled
        if compiled is None or compiled.summary is not self.kept_summary:
            # ``reset_merged_state`` swaps in a brand-new summary object;
            # rebind the snapshot to whatever is current.
            compiled = self._compiled = CompiledMatcher(
                self.kept_summary, cache_size=self.match_cache_size
            )
        return compiled

    def _check_match_parity(self, fast: Set[SubscriptionId], event: Event) -> None:
        """Paranoid-mode cross-check: the compiled snapshot must agree with
        the reference Algorithm-1 walk on every event (cold path — only
        runs when :attr:`paranoid` is set)."""
        reference = self.kept_summary.match(event)
        if fast == reference:
            return
        from repro.obs.audit import AuditError, Violation

        raise AuditError([Violation(
            "match-parity", self.broker_id,
            f"compiled/reference disagree on {event!r}: "
            f"only-compiled={sorted(fast - reference)[:3]} "
            f"only-reference={sorted(reference - fast)[:3]}",
        )])

    def deliver(
        self, sids: Set[SubscriptionId], event: Event, publish_id: int = 0
    ) -> Set[SubscriptionId]:
        """Owner-side delivery: exact re-check, then hand to consumers.

        Returns the confirmed ids; the difference is the COARSE false
        positives (or ids unsubscribed since the summary was propagated).
        Duplicate notifications for an already-delivered publish are
        suppressed (at-least-once transport tolerance).
        """
        if publish_id:
            if publish_id in self._delivered_publishes:
                self._delivered_publishes.move_to_end(publish_id)  # LRU touch
                self.duplicates_suppressed += 1
                return set()
            self._remember(self._delivered_publishes, publish_id)
        tracer = self.tracer
        if tracer.enabled:
            with tracer.span(
                "recheck", broker=self.broker_id, trace_id=publish_id,
                candidates=len(sids),
            ) as span:
                confirmed = self.store.recheck(event, sids)
                span.note(
                    confirmed=len(confirmed),
                    false_positives=len(sids) - len(confirmed),
                )
        else:
            confirmed = self.store.recheck(event, sids)
        self.false_positive_notifies += len(sids) - len(confirmed)
        for sid in sorted(confirmed):
            self.deliveries.append((sid, event))
            if self.on_delivery is not None:
                self.on_delivery(self.broker_id, sid, event)
        if confirmed and tracer.enabled:
            tracer.record(
                "delivery", broker=self.broker_id, trace_id=publish_id,
                count=len(confirmed),
            )
        return confirmed

    def __repr__(self) -> str:
        return (
            f"SummaryBroker(id={self.broker_id}, subs={len(self.store)}, "
            f"knows={sorted(self.merged_brokers)})"
        )
