"""The summary-centric broker system (paper sections 3-4)."""

from repro.broker.broker import DeliveryCallback, SummaryBroker
from repro.broker.persistence import SnapshotCodec, load_system, save_system
from repro.broker.propagation import PropagationEngine
from repro.broker.routing import EventRouter
from repro.broker.system import Delivery, PublishResult, SummaryPubSub

__all__ = [
    "Delivery",
    "SnapshotCodec",
    "load_system",
    "save_system",
    "DeliveryCallback",
    "EventRouter",
    "PropagationEngine",
    "PublishResult",
    "SummaryBroker",
    "SummaryPubSub",
]
