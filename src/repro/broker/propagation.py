"""Algorithm 2 — subscription summary propagation (paper section 4.2).

The process runs in ``MAX_DEGREE`` iterations.  At iteration ``i`` every
broker whose overlay degree equals ``i``:

1. merges its own (delta) summary with all summaries received in previous
   iterations, updating its ``Merged_Brokers`` set, and
2. sends the merged summary plus ``Merged_Brokers`` to ONE neighbor it has
   not communicated with in any previous iteration, restricted to neighbors
   of equal or higher degree and preferring the smallest such degree
   (ties broken by smallest broker id, making runs deterministic).

A broker with no eligible neighbor (every equal-or-higher-degree neighbor
already contacted, or none exists — the maximum-degree broker, or hub
patterns in non-tree overlays) simply does not send; the knowledge
fragmentation this leaves is intentional and is what the BROCLI list in
Algorithm 3 compensates for during event routing.

Each broker therefore transmits at most once per period, which is why the
paper observes that full propagation "always requires a number of hops that
is smaller than the number of brokers in the system".

**Target-selection policy.**  When several eligible neighbors exist the
paper's text prefers "the one with the smallest degree" — a load-balancing
hint.  On mesh overlays (unlike the paper's figure-7 tree) that preference
routes summaries *away* from hubs and strands knowledge in many small
clusters, which lengthens the figure-10 BROCLI chains beyond anything
consistent with the paper's own reported results.  The engine therefore
supports both policies (:class:`TargetPolicy`); ``HIGHEST_DEGREE`` is the
default used by the experiments, ``SMALLEST_DEGREE`` is the literal paper
text, and ``benchmarks/test_ablation_policy.py`` quantifies the gap.  See
DESIGN.md section 5.3.
"""

from __future__ import annotations

import enum
from typing import Dict, Optional

from repro.broker.broker import SummaryBroker
from repro.network.simulator import Network
from repro.obs.tracing import NULL_TRACER
from repro.wire.messages import (
    Message,
    SummaryDeltaMessage,
    SummaryMessage,
    SummaryRequestMessage,
)

__all__ = [
    "PROPAGATION_MODES",
    "PropagationEngine",
    "TargetPolicy",
    "select_period_target",
]

#: ``"delta"`` ships :class:`SummaryDeltaMessage` frames (compressed id
#: sets, removal blocks, per-link generation chaining with full-summary
#: fallback); ``"full"`` is the original per-period
#: :class:`SummaryMessage` path used by the committed figure runs.
PROPAGATION_MODES = ("delta", "full")


class TargetPolicy(enum.Enum):
    """Which eligible neighbor receives the merged summary."""

    HIGHEST_DEGREE = "highest"  # funnel towards hubs (experiment default)
    SMALLEST_DEGREE = "smallest"  # the paper's literal load-balancing hint


def select_period_target(
    topology, broker: SummaryBroker, policy: TargetPolicy = TargetPolicy.HIGHEST_DEGREE
) -> Optional[int]:
    """Algorithm 2 step 2's target: the not-yet-contacted neighbor of
    equal-or-higher degree preferred by ``policy`` (smallest id on ties),
    or None when no eligible neighbor remains.

    Shared by the round-based :class:`PropagationEngine` and the live
    :class:`~repro.runtime.server.BrokerRuntime`, so both substrates make
    identical propagation-routing decisions for the same broker state.
    """
    own_degree = topology.degree(broker.broker_id)
    candidates = [
        neighbor
        for neighbor in topology.neighbors(broker.broker_id)
        if neighbor not in broker.contacted
        and topology.degree(neighbor) >= own_degree
    ]
    if not candidates:
        return None
    if policy is TargetPolicy.SMALLEST_DEGREE:
        return min(candidates, key=lambda nb: (topology.degree(nb), nb))
    return min(candidates, key=lambda nb: (-topology.degree(nb), nb))


class PropagationEngine:
    """Drives Algorithm 2 over a simulated network of summary brokers."""

    #: Observability hook — assigned by the system facade; the null
    #: default costs one attribute check per period.
    tracer = NULL_TRACER

    def __init__(
        self,
        network: Network,
        brokers: Dict[int, SummaryBroker],
        policy: TargetPolicy = TargetPolicy.HIGHEST_DEGREE,
        mode: str = "delta",
    ):
        if set(brokers) != set(network.topology.brokers):
            raise ValueError("need exactly one broker object per topology node")
        if mode not in PROPAGATION_MODES:
            raise ValueError(
                f"unknown propagation mode {mode!r}; expected one of "
                f"{PROPAGATION_MODES}"
            )
        self.network = network
        self.brokers = brokers
        self.policy = policy
        self.mode = mode
        self.periods_run = 0
        #: True while :meth:`run_full_refresh` drives the current period —
        #: refresh periods always send full :class:`SummaryMessage` frames
        #: (they re-establish ground truth, so chaining is pointless).
        self._refresh_active = False
        # -- delta-mode fallback statistics --
        self.fallback_requests = 0
        self.fallback_replies = 0

    # -- the period ------------------------------------------------------------

    def run_period(self) -> None:
        """One full propagation period over the pending subscription batches."""
        tracer = self.tracer
        if not tracer.enabled:
            self._run_period_body()
            return
        pending = sum(len(b.pending) for b in self.brokers.values())
        with tracer.span(
            "propagation_period", trace_id=self.periods_run + 1,
            pending_subscriptions=pending,
        ):
            self._run_period_body()

    def _run_period_body(self) -> None:
        topology = self.network.topology
        for broker in self.brokers.values():
            broker.begin_period()
        for iteration in range(1, topology.max_degree + 1):
            for broker_id in topology.brokers_by_degree(iteration):
                self._act(self.brokers[broker_id])
            # Deliver this iteration's messages before the next degree class
            # acts — receivers fold them into their deltas via receive().
            self.network.flush_iteration()
        # Delta-mode fallback exchanges (reject -> request -> full summary)
        # straddle iteration boundaries; drain them before the period
        # closes so the replies still land inside it.  Each chain is at
        # most two hops, so the bound is generous and never loops.
        for _ in range(2 * len(self.brokers) + 2):
            if not self.network.has_pending:
                break
            self.network.flush_iteration()
        for broker in self.brokers.values():
            broker.finish_period()
        self.periods_run += 1

    def _act(self, broker: SummaryBroker) -> None:
        """Steps 1-2 of Algorithm 2 for one broker at its iteration."""
        assert broker.delta_summary is not None, "begin_period() not called"
        target = self._select_target(broker)
        # The broker's one send opportunity for this period has now passed
        # (even if no eligible target exists): later unsubscribes queue
        # their removals for the next period's frame.
        broker.period_acted = True
        if target is None:
            return
        if self.mode == "delta" and not self._refresh_active:
            base = broker.link_generations_out.get(target, 0)
            generation = base + 1
            broker.link_generations_out[target] = generation
            message: Message = SummaryDeltaMessage(
                adds=broker.delta_summary.copy(),
                removed=frozenset(broker.delta_removed),
                merged_brokers=frozenset(broker.delta_brokers),
                base_generation=base,
                generation=generation,
            )
        else:
            message = SummaryMessage(
                summary=broker.delta_summary.copy(),
                merged_brokers=frozenset(broker.delta_brokers),
            )
            # A full frame restarts the chain towards this neighbor.
            broker.link_generations_out[target] = 0
        broker.contacted.add(target)
        tracer = self.tracer
        if tracer.enabled:
            tracer.record(
                "summary_send", broker=broker.broker_id,
                trace_id=self.periods_run + 1, target=target,
                merged_brokers=len(broker.delta_brokers),
                ids=len(broker.delta_summary.all_ids()),
            )
        self.network.send(broker.broker_id, target, message)

    def _select_target(self, broker: SummaryBroker) -> Optional[int]:
        """See :func:`select_period_target` (shared with the live runtime)."""
        return select_period_target(self.network.topology, broker, self.policy)

    # -- full refresh ---------------------------------------------------------------

    def run_full_refresh(self) -> None:
        """Re-propagate *complete* summaries from scratch.

        Used after unsubscription churn: remote kept summaries cannot shed
        removed ids incrementally (COARSE rows forget boundaries), so a
        refresh period rebuilds every broker's summary from its raw store
        and replaces all remote knowledge.
        """
        tracer = self.tracer
        if tracer.enabled:
            with tracer.span("full_refresh", trace_id=self.periods_run + 1):
                self._run_full_refresh_body()
            return
        self._run_full_refresh_body()

    def _run_full_refresh_body(self) -> None:
        for broker in self.brokers.values():
            broker.reset_merged_state()
            # The refresh batch (full store contents — or the covering
            # frontier under suppression) becomes this period's "new" batch.
            broker.pending = broker.refresh_batch()
            # reset_merged_state() already folded the batch into the kept
            # summary; begin_period() will rebuild the delta from pending.
        self._refresh_active = True
        try:
            self.run_period()
        finally:
            self._refresh_active = False

    # -- message handling (called by the system's dispatch) ---------------------------

    def handle_message(self, dst: int, src: int, message: Message) -> bool:
        """Route a propagation frame to its broker; returns False for other
        message kinds so the caller can try the event-routing handler."""
        if isinstance(message, SummaryMessage):
            self.brokers[dst].absorb_summary(
                src, message.summary, set(message.merged_brokers)
            )
            return True
        if isinstance(message, SummaryDeltaMessage):
            applied = self.brokers[dst].absorb_delta(
                src,
                message.adds,
                set(message.removed),
                set(message.merged_brokers),
                message.base_generation,
                message.generation,
            )
            if not applied:
                # Chain broke (refresh, restart, loss): ask for a full
                # summary instead of silently merging a stale delta.
                self.fallback_requests += 1
                if self.tracer.enabled:
                    self.tracer.record(
                        "delta_rejected", broker=dst,
                        trace_id=self.periods_run + 1, src=src,
                        base_generation=message.base_generation,
                    )
                self.network.send(dst, src, SummaryRequestMessage(
                    generation=message.generation,
                ))
            return True
        if isinstance(message, SummaryRequestMessage):
            broker = self.brokers[dst]
            if broker.delta_summary is not None:
                summary = broker.delta_summary.copy()
                merged = frozenset(broker.delta_brokers)
            else:  # between periods: answer with current knowledge
                summary = broker.kept_summary.copy()
                merged = frozenset(broker.merged_brokers)
            # Restart the chain: the requester resyncs on this snapshot
            # and the next delta towards it bases itself on generation 0.
            broker.link_generations_out[src] = 0
            self.fallback_replies += 1
            self.network.send(dst, src, SummaryMessage(
                summary=summary, merged_brokers=merged,
            ))
            return True
        return False
