"""Algorithm 2 — subscription summary propagation (paper section 4.2).

The process runs in ``MAX_DEGREE`` iterations.  At iteration ``i`` every
broker whose overlay degree equals ``i``:

1. merges its own (delta) summary with all summaries received in previous
   iterations, updating its ``Merged_Brokers`` set, and
2. sends the merged summary plus ``Merged_Brokers`` to ONE neighbor it has
   not communicated with in any previous iteration, restricted to neighbors
   of equal or higher degree and preferring the smallest such degree
   (ties broken by smallest broker id, making runs deterministic).

A broker with no eligible neighbor (every equal-or-higher-degree neighbor
already contacted, or none exists — the maximum-degree broker, or hub
patterns in non-tree overlays) simply does not send; the knowledge
fragmentation this leaves is intentional and is what the BROCLI list in
Algorithm 3 compensates for during event routing.

Each broker therefore transmits at most once per period, which is why the
paper observes that full propagation "always requires a number of hops that
is smaller than the number of brokers in the system".

**Target-selection policy.**  When several eligible neighbors exist the
paper's text prefers "the one with the smallest degree" — a load-balancing
hint.  On mesh overlays (unlike the paper's figure-7 tree) that preference
routes summaries *away* from hubs and strands knowledge in many small
clusters, which lengthens the figure-10 BROCLI chains beyond anything
consistent with the paper's own reported results.  The engine therefore
supports both policies (:class:`TargetPolicy`); ``HIGHEST_DEGREE`` is the
default used by the experiments, ``SMALLEST_DEGREE`` is the literal paper
text, and ``benchmarks/test_ablation_policy.py`` quantifies the gap.  See
DESIGN.md section 5.3.
"""

from __future__ import annotations

import enum
from typing import Dict, Optional

from repro.broker.broker import SummaryBroker
from repro.network.simulator import Network
from repro.obs.tracing import NULL_TRACER
from repro.wire.messages import Message, SummaryMessage

__all__ = ["PropagationEngine", "TargetPolicy", "select_period_target"]


class TargetPolicy(enum.Enum):
    """Which eligible neighbor receives the merged summary."""

    HIGHEST_DEGREE = "highest"  # funnel towards hubs (experiment default)
    SMALLEST_DEGREE = "smallest"  # the paper's literal load-balancing hint


def select_period_target(
    topology, broker: SummaryBroker, policy: TargetPolicy = TargetPolicy.HIGHEST_DEGREE
) -> Optional[int]:
    """Algorithm 2 step 2's target: the not-yet-contacted neighbor of
    equal-or-higher degree preferred by ``policy`` (smallest id on ties),
    or None when no eligible neighbor remains.

    Shared by the round-based :class:`PropagationEngine` and the live
    :class:`~repro.runtime.server.BrokerRuntime`, so both substrates make
    identical propagation-routing decisions for the same broker state.
    """
    own_degree = topology.degree(broker.broker_id)
    candidates = [
        neighbor
        for neighbor in topology.neighbors(broker.broker_id)
        if neighbor not in broker.contacted
        and topology.degree(neighbor) >= own_degree
    ]
    if not candidates:
        return None
    if policy is TargetPolicy.SMALLEST_DEGREE:
        return min(candidates, key=lambda nb: (topology.degree(nb), nb))
    return min(candidates, key=lambda nb: (-topology.degree(nb), nb))


class PropagationEngine:
    """Drives Algorithm 2 over a simulated network of summary brokers."""

    #: Observability hook — assigned by the system facade; the null
    #: default costs one attribute check per period.
    tracer = NULL_TRACER

    def __init__(
        self,
        network: Network,
        brokers: Dict[int, SummaryBroker],
        policy: TargetPolicy = TargetPolicy.HIGHEST_DEGREE,
    ):
        if set(brokers) != set(network.topology.brokers):
            raise ValueError("need exactly one broker object per topology node")
        self.network = network
        self.brokers = brokers
        self.policy = policy
        self.periods_run = 0

    # -- the period ------------------------------------------------------------

    def run_period(self) -> None:
        """One full propagation period over the pending subscription batches."""
        tracer = self.tracer
        if not tracer.enabled:
            self._run_period_body()
            return
        pending = sum(len(b.pending) for b in self.brokers.values())
        with tracer.span(
            "propagation_period", trace_id=self.periods_run + 1,
            pending_subscriptions=pending,
        ):
            self._run_period_body()

    def _run_period_body(self) -> None:
        topology = self.network.topology
        for broker in self.brokers.values():
            broker.begin_period()
        for iteration in range(1, topology.max_degree + 1):
            for broker_id in topology.brokers_by_degree(iteration):
                self._act(self.brokers[broker_id])
            # Deliver this iteration's messages before the next degree class
            # acts — receivers fold them into their deltas via receive().
            self.network.flush_iteration()
        for broker in self.brokers.values():
            broker.finish_period()
        self.periods_run += 1

    def _act(self, broker: SummaryBroker) -> None:
        """Steps 1-2 of Algorithm 2 for one broker at its iteration."""
        assert broker.delta_summary is not None, "begin_period() not called"
        target = self._select_target(broker)
        if target is None:
            return
        message = SummaryMessage(
            summary=broker.delta_summary.copy(),
            merged_brokers=frozenset(broker.delta_brokers),
        )
        broker.contacted.add(target)
        tracer = self.tracer
        if tracer.enabled:
            tracer.record(
                "summary_send", broker=broker.broker_id,
                trace_id=self.periods_run + 1, target=target,
                merged_brokers=len(broker.delta_brokers),
                ids=len(broker.delta_summary.all_ids()),
            )
        self.network.send(broker.broker_id, target, message)

    def _select_target(self, broker: SummaryBroker) -> Optional[int]:
        """See :func:`select_period_target` (shared with the live runtime)."""
        return select_period_target(self.network.topology, broker, self.policy)

    # -- full refresh ---------------------------------------------------------------

    def run_full_refresh(self) -> None:
        """Re-propagate *complete* summaries from scratch.

        Used after unsubscription churn: remote kept summaries cannot shed
        removed ids incrementally (COARSE rows forget boundaries), so a
        refresh period rebuilds every broker's summary from its raw store
        and replaces all remote knowledge.
        """
        tracer = self.tracer
        if tracer.enabled:
            with tracer.span("full_refresh", trace_id=self.periods_run + 1):
                self._run_full_refresh_body()
            return
        self._run_full_refresh_body()

    def _run_full_refresh_body(self) -> None:
        for broker in self.brokers.values():
            broker.reset_merged_state()
            # The full store contents become this period's "new" batch.
            broker.pending = [
                (sid, subscription) for sid, subscription in broker.store.items()
            ]
            # reset_merged_state() already folded the store into the kept
            # summary; begin_period() will rebuild the delta from pending.
        self.run_period()

    # -- message handling (called by the system's dispatch) ---------------------------

    def handle_message(self, dst: int, src: int, message: Message) -> bool:
        """Route a SummaryMessage to its broker; returns False for other
        message kinds so the caller can try the event-routing handler."""
        if not isinstance(message, SummaryMessage):
            return False
        self.brokers[dst].absorb_summary(
            src, message.summary, set(message.merged_brokers)
        )
        return True
