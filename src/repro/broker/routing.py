"""Algorithm 3 — distributed event processing (paper section 4.3).

Each broker that an event visits:

1. checks its local merged (kept) summary for matches,
2. updates the event's ``BROCLI`` list — the brokers whose subscriptions
   have already been examined — by adding its ``Merged_Brokers`` set,
3. forwards the event (as a :class:`NotifyMessage`) to every broker that
   owns matched subscriptions, identified by the ``c1`` field of the ids,
4. if ``BROCLI`` does not yet contain all brokers, forwards the event plus
   the updated ``BROCLI`` to the highest-degree broker not yet in it
   (ties broken by smallest id).

Matched ids whose owner is already in the *incoming* BROCLI are skipped:
that owner's subscriptions were examined (and notified) by an earlier hop,
so re-notifying would deliver duplicates when visited brokers have
overlapping knowledge.

Step 1's summary check goes through :meth:`SummaryBroker.match_kept`, which
dispatches to the broker's configured matching engine — the reference
Algorithm-1 walk or the compiled fast path
(:class:`repro.summary.compiled.CompiledMatcher`).  Both return identical
id sets, so every routing decision (owner notifications, BROCLI forwarding
targets, hop counts) is matcher-independent; this is asserted end-to-end by
``tests/broker/test_routing.py::TestCompiledMatcherParity``.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Set

from repro.broker.broker import SummaryBroker
from repro.model.events import Event
from repro.model.ids import SubscriptionId
from repro.network.simulator import Network
from repro.wire.messages import EventMessage, Message, NotifyMessage

__all__ = ["EventRouter"]


class EventRouter:
    """Drives Algorithm 3 over a simulated network of summary brokers.

    Every publish gets a unique ``publish_id`` carried by its EVENT and
    NOTIFY messages; brokers remember recently-seen ids so duplicated
    messages (at-least-once transports, see
    :class:`repro.network.faults.LossyNetwork`) neither re-forward the
    search nor re-deliver to consumers.
    """

    def __init__(self, network: Network, brokers: Dict[int, SummaryBroker]):
        self.network = network
        self.brokers = brokers
        self._all_brokers: FrozenSet[int] = frozenset(network.topology.brokers)
        self._publish_sequence = 0

    # -- entry points --------------------------------------------------------

    def publish(self, broker_id: int, event: Event) -> None:
        """Inject a producer's event at its attached broker and run the
        distributed processing to completion."""
        self._publish_sequence += 1
        publish_id = (broker_id << 40) | self._publish_sequence
        self.process_event(self.brokers[broker_id], event, frozenset(), publish_id)
        self.network.run()

    def handle_message(self, dst: int, src: int, message: Message) -> bool:
        """Dispatch EVENT and NOTIFY messages; False for other kinds."""
        broker = self.brokers[dst]
        if isinstance(message, EventMessage):
            self.process_event(
                broker, message.event, message.brocli, message.publish_id
            )
            return True
        if isinstance(message, NotifyMessage):
            broker.deliver(
                set(message.matched), message.event, publish_id=message.publish_id
            )
            return True
        return False

    # -- Algorithm 3 at one broker ----------------------------------------------

    def process_event(
        self,
        broker: SummaryBroker,
        event: Event,
        brocli_in: FrozenSet[int],
        publish_id: int = 0,
    ) -> None:
        # Duplicate suppression: this broker already ran the search step
        # for this publish (a redelivered EVENT message).
        if not broker.first_routing_of(publish_id):
            return
        # Step 1: check the local merged summary (reference walk or
        # compiled snapshot, per the broker's matcher option).
        matched = broker.match_kept(event)
        # Step 2: update BROCLI with this broker's Merged_Brokers (which
        # includes its own id).
        brocli = brocli_in | broker.merged_brokers | {broker.broker_id}
        # Step 3: notify owners — but only those not examined upstream.
        fresh = {sid for sid in matched if sid.broker not in brocli_in}
        self._notify_owners(broker, event, fresh, publish_id)
        # Step 4: keep searching until every broker has been examined.
        if brocli != self._all_brokers:
            target = self._next_router(brocli, broker.broker_id)
            self.network.send(
                broker.broker_id,
                target,
                EventMessage(event=event, brocli=brocli, publish_id=publish_id),
            )

    def _notify_owners(
        self,
        broker: SummaryBroker,
        event: Event,
        matched: Set[SubscriptionId],
        publish_id: int,
    ) -> None:
        by_owner: Dict[int, Set[SubscriptionId]] = {}
        for sid in matched:
            by_owner.setdefault(sid.broker, set()).add(sid)
        for owner, sids in sorted(by_owner.items()):
            if owner == broker.broker_id:
                broker.deliver(sids, event, publish_id=publish_id)
            else:
                self.network.send(
                    broker.broker_id,
                    owner,
                    NotifyMessage(
                        event=event, matched=frozenset(sids), publish_id=publish_id
                    ),
                )

    def _next_router(self, brocli: FrozenSet[int], origin: int) -> int:
        """The highest-degree broker not yet examined (smallest id on ties).

        ``origin`` is the broker doing the forwarding; the base policy
        ignores it, but locality-aware subclasses route within the
        origin's region first (see :mod:`repro.ext.locality`)."""
        topology = self.network.topology
        remaining = [b for b in topology.brokers if b not in brocli]
        assert remaining, "caller guarantees BROCLI is incomplete"
        return max(remaining, key=lambda b: (topology.degree(b), -b))
