"""Algorithm 3 — distributed event processing (paper section 4.3).

Each broker that an event visits:

1. checks its local merged (kept) summary for matches,
2. updates the event's ``BROCLI`` list — the brokers whose subscriptions
   have already been examined — by adding its ``Merged_Brokers`` set,
3. forwards the event (as a :class:`NotifyMessage`) to every broker that
   owns matched subscriptions, identified by the ``c1`` field of the ids,
4. if ``BROCLI`` does not yet contain all brokers, forwards the event plus
   the updated ``BROCLI`` to the highest-degree broker not yet in it
   (ties broken by smallest id).

Matched ids whose owner is already in the *incoming* BROCLI are skipped:
that owner's subscriptions were examined (and notified) by an earlier hop,
so re-notifying would deliver duplicates when visited brokers have
overlapping knowledge.

Step 1's summary check goes through :meth:`SummaryBroker.match_kept`, which
dispatches to the broker's configured matching engine — the reference
Algorithm-1 walk or the compiled fast path
(:class:`repro.summary.compiled.CompiledMatcher`).  Both return identical
id sets, so every routing decision (owner notifications, BROCLI forwarding
targets, hop counts) is matcher-independent; this is asserted end-to-end by
``tests/broker/test_routing.py::TestCompiledMatcherParity``.
"""

from __future__ import annotations

import itertools
from collections import OrderedDict
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.broker.broker import SummaryBroker
from repro.model.events import Event
from repro.model.ids import SubscriptionId
from repro.network.simulator import Network
from repro.obs.tracing import NULL_TRACER
from repro.wire.messages import EventMessage, Message, NotifyMessage

__all__ = ["EventRouter"]

#: Process-wide epoch allocator: every router generation gets a distinct
#: namespace for its publish ids, so a re-created router (system rebuild,
#: persistence restore) can never collide with ids that long-lived brokers
#: still remember in their dedup tables.
_EPOCH_SEQUENCE = itertools.count(1)


class EventRouter:
    """Drives Algorithm 3 over a simulated network of summary brokers.

    Every publish gets a unique ``publish_id`` carried by its EVENT and
    NOTIFY messages; brokers remember recently-seen ids so duplicated
    messages (at-least-once transports, see
    :class:`repro.network.faults.LossyNetwork` and
    :class:`repro.network.reliable.ReliableNetwork`) neither re-forward
    the search nor re-deliver to consumers.

    **Id layout.**  ``publish_id`` packs ``(epoch | broker | sequence)``
    into a fixed 49-bit word whose top marker bit is always set::

        [1 | epoch:8 | origin broker:16 | sequence:24]

    The constant bit-length keeps the varint encoding of every identified
    publish the same size (7 bytes), which makes byte accounting
    deterministic across router generations — crash-recovered systems
    route byte-for-byte identically even though their epochs differ.  The
    epoch namespacing fixes a real bug: a fresh router restarts its
    sequence at 0, and without the epoch its ids would collide with ids
    already remembered by brokers, silently dropping new events as
    "duplicates".

    **Fault tolerance.**  When the network is a
    :class:`~repro.network.reliable.ReliableNetwork`, the system facade
    registers :meth:`handle_send_failure` as its failure listener.  A
    forwarded EVENT whose retry budget ran out then re-routes the BROCLI
    search to the next-best broker not yet examined (skipping brokers
    already found unreachable for that publish), so one dead link loses at
    most the unreachable broker's own subscribers instead of every
    remaining downstream delivery.  Failed NOTIFYs are counted — the owner
    itself is unreachable, so there is nowhere else to send them.
    """

    #: Observability hook — assigned by the system facade (and re-assigned
    #: after ext router swaps); the null default costs one attribute check.
    tracer = NULL_TRACER

    #: Bits of the per-router publish sequence (wraps after ~16M publishes,
    #: far beyond any dedup table's memory).
    SEQ_BITS = 24
    #: Bits of the origin broker id inside a publish id.
    BROKER_BITS = 16

    def __init__(
        self,
        network: Network,
        brokers: Dict[int, SummaryBroker],
        epoch: Optional[int] = None,
    ):
        self.network = network
        self.brokers = brokers
        self._all_brokers: FrozenSet[int] = frozenset(network.topology.brokers)
        self._publish_sequence = 0
        if epoch is None:
            epoch = next(_EPOCH_SEQUENCE)
        self.epoch = epoch
        #: 9-bit field with the marker bit set — constant width by design.
        self._epoch_field = 0x100 | (epoch & 0xFF)
        # -- reliability bookkeeping --
        #: publishes whose BROCLI search was re-routed around a dead link.
        self.event_reroutes = 0
        #: owner notifications lost because the owner was unreachable.
        self.notify_failures = 0
        #: searches abandoned with no reachable unexamined broker left.
        self.searches_abandoned = 0
        #: per-publish brokers found unreachable (bounded LRU).
        self._unreachable: "OrderedDict[int, Set[int]]" = OrderedDict()
        self._unreachable_capacity = 1024

    # -- entry points --------------------------------------------------------

    def next_publish_id(self, broker_id: int) -> int:
        """Mint the epoch-namespaced id for one publish at ``broker_id``."""
        if not 0 <= broker_id < (1 << self.BROKER_BITS):
            raise ValueError(
                f"broker id {broker_id} does not fit the publish-id layout"
            )
        self._publish_sequence += 1
        sequence = self._publish_sequence & ((1 << self.SEQ_BITS) - 1)
        return (
            ((self._epoch_field << self.BROKER_BITS) | broker_id) << self.SEQ_BITS
        ) | sequence

    def publish(self, broker_id: int, event: Event) -> None:
        """Inject a producer's event at its attached broker and run the
        distributed processing to completion."""
        publish_id = self.next_publish_id(broker_id)
        tracer = self.tracer
        if tracer.enabled:
            with tracer.span(
                "publish", broker=broker_id, trace_id=publish_id,
                attributes=len(event),
            ):
                self.process_event(
                    self.brokers[broker_id], event, frozenset(), publish_id
                )
                self.network.run()
            return
        self.process_event(self.brokers[broker_id], event, frozenset(), publish_id)
        self.network.run()

    def publish_batch(self, broker_id: int, events: Sequence[Event]) -> List[int]:
        """Inject a burst of producer events at one broker and run the
        distributed processing of all of them to completion.

        Semantically identical to calling :meth:`publish` per event (each
        event gets its own publish id, BROCLI search and notifications,
        in order) but the ingress broker's Algorithm-1 check runs once
        over the whole burst via :meth:`SummaryBroker.match_kept_many` —
        the batched hot path of the live runtime.  Returns the minted
        publish ids.
        """
        broker = self.brokers[broker_id]
        ids = [self.next_publish_id(broker_id) for _ in events]
        tracer = self.tracer
        if tracer.enabled:
            for event, publish_id in zip(events, ids):
                tracer.record(
                    "publish", broker=broker_id, trace_id=publish_id,
                    attributes=len(event), batched=True,
                )
        self.process_batch(
            broker,
            [
                (event, frozenset(), publish_id)
                for event, publish_id in zip(events, ids)
            ],
        )
        self.network.run()
        return ids

    def handle_message(self, dst: int, src: int, message: Message) -> bool:
        """Dispatch EVENT and NOTIFY messages; False for other kinds."""
        broker = self.brokers[dst]
        if isinstance(message, EventMessage):
            self.process_event(
                broker, message.event, message.brocli, message.publish_id
            )
            return True
        if isinstance(message, NotifyMessage):
            broker.deliver(
                set(message.matched), message.event, publish_id=message.publish_id
            )
            return True
        return False

    # -- reliability: retry-exhaustion handling ------------------------------------

    def handle_send_failure(self, src: int, dst: int, message: Message) -> bool:
        """React to a broker-to-broker send abandoned by the reliable
        transport (registered as a
        :class:`~repro.network.reliable.ReliableNetwork` failure listener).

        * An EVENT forward severed the serial BROCLI chain: re-route the
          search from ``src`` to the next-best broker that is neither
          examined (in BROCLI) nor already known unreachable for this
          publish.  The forwarded BROCLI deliberately does *not* include
          the dead broker — it was never examined, so a later hop may
          still reach it over a healthier link.
        * A NOTIFY failed: the owning broker itself is unreachable, so the
          delivery is lost; count it so experiments can report the residue.

        Returns True when the failure was handled (event/notify kinds).
        """
        if isinstance(message, EventMessage):
            unreachable = self._unreachable_for(message.publish_id)
            unreachable.add(dst)
            blocked = frozenset(message.brocli) | frozenset(unreachable)
            if self._all_brokers <= blocked:
                self.searches_abandoned += 1
                return True
            target = self._next_router(blocked, src)
            self.event_reroutes += 1
            self.network.send(
                src,
                target,
                EventMessage(
                    event=message.event,
                    brocli=message.brocli,
                    publish_id=message.publish_id,
                ),
            )
            return True
        if isinstance(message, NotifyMessage):
            self.notify_failures += 1
            return True
        return False

    def _unreachable_for(self, publish_id: int) -> Set[int]:
        """The (bounded, LRU) unreachable-broker set for one publish."""
        table = self._unreachable
        entry = table.get(publish_id)
        if entry is not None:
            table.move_to_end(publish_id)
            return entry
        entry = table[publish_id] = set()
        if len(table) > self._unreachable_capacity:
            table.popitem(last=False)
        return entry

    # -- Algorithm 3 at one broker ----------------------------------------------

    def process_event(
        self,
        broker: SummaryBroker,
        event: Event,
        brocli_in: FrozenSet[int],
        publish_id: int = 0,
    ) -> None:
        # Duplicate suppression: this broker already ran the search step
        # for this publish (a redelivered EVENT message).
        if not broker.first_routing_of(publish_id):
            return
        tracer = self.tracer
        if not tracer.enabled:
            # Step 1: check the local merged summary (reference walk or
            # compiled snapshot, per the broker's matcher option).
            matched = broker.match_kept(event)
            # Step 2: update BROCLI with this broker's Merged_Brokers
            # (which includes its own id).
            brocli = brocli_in | broker.merged_brokers | {broker.broker_id}
            # Step 3: notify owners — but only those not examined upstream.
            fresh = {sid for sid in matched if sid.broker not in brocli_in}
            self._notify_owners(broker, event, fresh, publish_id)
            # Step 4: keep searching until every broker is examined.
            if brocli != self._all_brokers:
                target = self._next_router(brocli, broker.broker_id)
                self.network.send(
                    broker.broker_id,
                    target,
                    EventMessage(event=event, brocli=brocli, publish_id=publish_id),
                )
            return
        # Traced variant of the same four steps.
        with tracer.span(
            "route_hop", broker=broker.broker_id, trace_id=publish_id,
            brocli_in=len(brocli_in),
        ) as hop:
            with tracer.span(
                "summary_match", broker=broker.broker_id, trace_id=publish_id,
                engine=broker.matcher,
            ) as match_span:
                matched = broker.match_kept(event)
                match_span.note(matched=len(matched))
            brocli = brocli_in | broker.merged_brokers | {broker.broker_id}
            fresh = {sid for sid in matched if sid.broker not in brocli_in}
            self._notify_owners(broker, event, fresh, publish_id)
            if brocli != self._all_brokers:
                target = self._next_router(brocli, broker.broker_id)
                hop.note(forwarded_to=target, brocli_out=len(brocli))
                self.network.send(
                    broker.broker_id,
                    target,
                    EventMessage(event=event, brocli=brocli, publish_id=publish_id),
                )
            else:
                hop.note(search_complete=True, brocli_out=len(brocli))

    def process_batch(
        self,
        broker: SummaryBroker,
        items: Sequence[Tuple[Event, FrozenSet[int], int]],
    ) -> None:
        """Algorithm 3 for a burst of EVENT frames at one broker.

        ``items`` is ``(event, brocli_in, publish_id)`` in arrival order.
        The result is indistinguishable from calling :meth:`process_event`
        once per item (asserted by
        ``tests/broker/test_batch_differential.py``): duplicate publish
        ids are suppressed through the same LRU, every event still walks
        its own steps 2–4, and only step 1 — the summary check — is
        batched through :meth:`SummaryBroker.match_kept_many` so the
        compiled matcher amortizes staleness checks and serves its
        ``match_many`` LRU across the burst.

        Batching is sound because EVENT processing never mutates the
        kept summary or ``Merged_Brokers`` (only SUMMARY frames do, and
        the runtime's dispatch loop never folds those into a batch), so
        every event of the burst observes the same broker knowledge it
        would have observed when processed one at a time.
        """
        fresh_items = [
            item for item in items if broker.first_routing_of(item[2])
        ]
        if not fresh_items:
            return
        tracer = self.tracer
        if tracer.enabled:
            with tracer.span(
                "batch_match", broker=broker.broker_id,
                trace_id=fresh_items[0][2], batch=len(fresh_items),
                engine=broker.matcher,
            ) as span:
                matched_sets = broker.match_kept_many(
                    [event for event, _brocli, _pid in fresh_items]
                )
                span.note(matched=sum(len(m) for m in matched_sets))
        else:
            matched_sets = broker.match_kept_many(
                [event for event, _brocli, _pid in fresh_items]
            )
        self.route_matched(broker, fresh_items, matched_sets)

    def route_matched(
        self,
        broker: SummaryBroker,
        items: Sequence[Tuple[Event, FrozenSet[int], int]],
        matched_sets: Sequence[Set[SubscriptionId]],
    ) -> None:
        """Steps 2–4 of Algorithm 3 for items whose step-1 summary check
        already ran: update BROCLI, notify owners, forward the search.

        The caller guarantees ``items`` passed the ``first_routing_of``
        dedup and that ``matched_sets[i]`` is the kept-summary match for
        ``items[i]``.  Split out of :meth:`process_batch` so the sharded
        runtime — whose step 1 runs in worker processes — reuses the exact
        routing decisions the single-process paths take.
        """
        merged = broker.merged_brokers
        own = broker.broker_id
        all_brokers = self._all_brokers
        for (event, brocli_in, publish_id), matched in zip(
            items, matched_sets
        ):
            brocli = brocli_in | merged | {own}
            fresh = {sid for sid in matched if sid.broker not in brocli_in}
            self._notify_owners(broker, event, fresh, publish_id)
            if brocli != all_brokers:
                target = self._next_router(brocli, own)
                self.network.send(
                    own,
                    target,
                    EventMessage(event=event, brocli=brocli, publish_id=publish_id),
                )

    def _notify_owners(
        self,
        broker: SummaryBroker,
        event: Event,
        matched: Set[SubscriptionId],
        publish_id: int,
    ) -> None:
        by_owner: Dict[int, Set[SubscriptionId]] = {}
        for sid in matched:
            by_owner.setdefault(sid.broker, set()).add(sid)
        tracer = self.tracer
        for owner, sids in sorted(by_owner.items()):
            if owner == broker.broker_id:
                broker.deliver(sids, event, publish_id=publish_id)
            else:
                if tracer.enabled:
                    tracer.record(
                        "notify", broker=broker.broker_id, trace_id=publish_id,
                        owner=owner, matched=len(sids),
                    )
                self.network.send(
                    broker.broker_id,
                    owner,
                    NotifyMessage(
                        event=event, matched=frozenset(sids), publish_id=publish_id
                    ),
                )

    def _next_router(self, brocli: FrozenSet[int], origin: int) -> int:
        """The highest-degree broker not yet examined (smallest id on ties).

        ``origin`` is the broker doing the forwarding; the base policy
        ignores it, but locality-aware subclasses route within the
        origin's region first (see :mod:`repro.ext.locality`)."""
        topology = self.network.topology
        remaining = [b for b in topology.brokers if b not in brocli]
        assert remaining, "caller guarantees BROCLI is incomplete"
        return max(remaining, key=lambda b: (topology.degree(b), -b))
