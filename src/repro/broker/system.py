"""The summary-based publish/subscribe system facade.

:class:`SummaryPubSub` wires together the whole paper stack — schema, id
codec, wire codec, overlay network, one :class:`SummaryBroker` per node,
the Algorithm-2 propagation engine and the Algorithm-3 event router — and
exposes the four operations a deployment needs::

    system = SummaryPubSub(topology=cable_wireless_24(), schema=stock_schema())
    sid = system.subscribe(broker_id=3, subscription=sub)
    system.run_propagation_period()
    result = system.publish(broker_id=17, event=event)
    assert (3, sid) in {(d.broker, d.sid) for d in result.deliveries}

Propagation-phase and event-phase traffic is accounted in separate
:class:`NetworkMetrics` so experiments can report them independently
(figures 8/9 versus figure 10).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.broker.broker import SummaryBroker
from repro.broker.propagation import PropagationEngine, TargetPolicy
from repro.broker.routing import EventRouter
from repro.model.events import Event
from repro.model.ids import IdCodec, SubscriptionId
from repro.model.schema import Schema
from repro.model.subscriptions import Subscription
from repro.network.latency import LatencyModel, TimedNetwork
from repro.network.metrics import NetworkMetrics
from repro.network.reliable import ReliableNetwork, RetryPolicy
from repro.network.simulator import Network
from repro.network.topology import Topology
from repro.obs.audit import SummaryAuditor, paranoid_enabled
from repro.obs.metrics import MetricsRegistry, collect_system_metrics
from repro.obs.tracing import NULL_TRACER, Tracer
from repro.summary.precision import Precision
from repro.wire.codec import ValueWidth, WireCodec
from repro.wire.messages import Message, MessageCodec

__all__ = ["SummaryPubSub", "Delivery", "PublishResult"]

#: Default ``c2`` capacity: the paper sizes ids for ~1M outstanding
#: subscriptions per broker (20 bits).
DEFAULT_MAX_SUBSCRIPTIONS = 1 << 20


@dataclass(frozen=True)
class Delivery:
    """One event handed to one consumer's Event Displayer.

    ``at`` is the simulation-clock timestamp (ms) when the system runs on
    a :class:`~repro.network.latency.TimedNetwork`; None otherwise.
    """

    broker: int
    sid: SubscriptionId
    event: Event
    at: Optional[float] = None


@dataclass
class PublishResult:
    """What one publish cost and who received it."""

    deliveries: List[Delivery]
    hops: int
    messages: int
    bytes_sent: int
    #: publish-to-last-delivery time (ms) on a TimedNetwork; None otherwise.
    latency_ms: Optional[float] = None

    @property
    def matched_brokers(self) -> Set[int]:
        return {delivery.broker for delivery in self.deliveries}


class _Dispatcher:
    """Per-broker network handler delegating to the two engines."""

    def __init__(self, system: "SummaryPubSub", broker_id: int):
        self._system = system
        self._broker_id = broker_id

    def receive(self, src: int, message: Message) -> None:
        self._system._dispatch(self._broker_id, src, message)


class SummaryPubSub:
    """The complete summary-centric pub/sub system on a simulated overlay."""

    def __init__(
        self,
        topology: Topology,
        schema: Schema,
        precision: Precision = Precision.COARSE,
        value_width: ValueWidth = ValueWidth.F32,
        max_subscriptions: int = DEFAULT_MAX_SUBSCRIPTIONS,
        propagation_policy: TargetPolicy = TargetPolicy.HIGHEST_DEGREE,
        latency: Optional[LatencyModel] = None,
        network_cls: Optional[type] = None,
        network_options: Optional[Dict] = None,
        matcher: str = "reference",
        reliability: Optional[RetryPolicy] = None,
        dedup_capacity: int = 4096,
        tracer: Optional[Tracer] = None,
        paranoid: Optional[bool] = None,
        propagation_mode: str = "delta",
        suppress_covered: bool = True,
    ):
        self.topology = topology
        self.schema = schema
        self.precision = precision
        #: ``"delta"`` (default) ships incremental SummaryDeltaMessage
        #: frames with compressed id sets; ``"full"`` is the original
        #: per-period SummaryMessage path (figure-reproduction baseline).
        self.propagation_mode = propagation_mode
        #: Covered-id suppression (folded in from ``repro.ext.hybrid``):
        #: subscriptions subsumed by an existing one never hit the wire.
        self.suppress_covered = suppress_covered
        #: Event-matching engine: "reference" (live summary walk, paper
        #: semantics, the default) or "compiled" (flat snapshot fast path).
        self.matcher = matcher
        #: Per-broker publish-id LRU size (at-least-once dedup window).
        self.dedup_capacity = dedup_capacity
        #: Event-lifecycle tracer shared by router/propagation/brokers;
        #: :data:`~repro.obs.tracing.NULL_TRACER` (one attribute check per
        #: stage) unless a live :class:`~repro.obs.tracing.Tracer` is given.
        self.tracer = tracer if tracer is not None else NULL_TRACER
        #: Paranoid mode: defaults to the ``REPRO_PARANOID`` env switch.
        #: When on, a :class:`~repro.obs.audit.SummaryAuditor` re-validates
        #: summary/store invariants after every unsubscribe, propagation
        #: period and full refresh (plus an O(#brokers) dedup-capacity
        #: check per publish), and brokers cross-check compiled-vs-
        #: reference match parity on every event.
        self.paranoid = paranoid_enabled() if paranoid is None else bool(paranoid)
        self.auditor: Optional[SummaryAuditor] = (
            SummaryAuditor(schema) if self.paranoid else None
        )
        #: The deployment-wide ``c2`` capacity; every broker's store
        #: enforces it at subscribe time (:class:`~repro.summary
        #: .maintenance.IdSpaceExhausted`) so overflow can never surface
        #: as a codec error deep inside a propagation period.
        self.max_subscriptions = max_subscriptions
        self.id_codec = IdCodec(
            num_brokers=topology.num_brokers,
            max_subscriptions=max_subscriptions,
            num_attributes=len(schema),
        )
        self.wire = WireCodec(schema, self.id_codec, value_width)
        self.message_codec = MessageCodec(self.wire)

        self.propagation_metrics = NetworkMetrics()
        self.event_metrics = NetworkMetrics()
        if latency is not None and network_cls is not None:
            raise ValueError("pass either latency or network_cls, not both")
        if latency is not None:
            self.network: Network = TimedNetwork(
                topology, self.message_codec, self.propagation_metrics, latency
            )
        elif network_cls is not None:
            self.network = network_cls(
                topology,
                self.message_codec,
                self.propagation_metrics,
                **(network_options or {}),
            )
        else:
            self.network = Network(topology, self.message_codec, self.propagation_metrics)
        if reliability is not None:
            # Layer ACK/retransmit delivery over whatever transport was
            # configured (most usefully a LossyNetwork) — unless the
            # caller already built a ReliableNetwork via network_cls.
            if isinstance(self.network, ReliableNetwork):
                raise ValueError(
                    "network_cls already provides reliability; "
                    "drop the reliability= argument"
                )
            self.network = ReliableNetwork.wrap(self.network, policy=reliability)

        self._delivery_log: List[Delivery] = []
        self._delivery_listeners: List = []
        self.brokers: Dict[int, SummaryBroker] = {}
        for broker_id in topology.brokers:
            broker = self._create_broker(broker_id)
            broker.tracer = self.tracer
            broker.paranoid = self.paranoid
            self.brokers[broker_id] = broker
            self.network.attach(broker_id, _Dispatcher(self, broker_id))

        self.propagation = PropagationEngine(
            self.network, self.brokers, policy=propagation_policy,
            mode=propagation_mode,
        )
        self.router = EventRouter(self.network, self.brokers)
        self.propagation.tracer = self.tracer
        self.router.tracer = self.tracer
        self._wire_failure_listener()

    def attach_tracer(self, tracer: Tracer) -> None:
        """(Re)bind a tracer to every traced component.

        Call this after construction to start tracing, or after an
        extension swaps :attr:`router` (``enable_locality`` /
        ``enable_virtual_degrees``) to keep the replacement traced.
        """
        self.tracer = tracer
        self.router.tracer = tracer
        self.propagation.tracer = tracer
        for broker in self.brokers.values():
            broker.tracer = tracer

    def _wire_failure_listener(self) -> None:
        """Let the router re-route searches the reliable transport gave up
        on.  The hook is duck-typed so plain/lossy/timed networks (which
        never report failures) need no special casing."""
        add_listener = getattr(self.network, "add_failure_listener", None)
        if add_listener is not None:
            add_listener(self._on_send_failure)

    def _on_send_failure(self, src: int, dst: int, message: Message) -> None:
        # Indirect through self.router so enable_locality/-virtual_degrees
        # router swaps keep working without re-registering the listener.
        self.router.handle_send_failure(src, dst, message)

    def _create_broker(self, broker_id: int) -> SummaryBroker:
        """Broker factory — extension systems override this hook."""
        return SummaryBroker(
            broker_id,
            self.schema,
            self.precision,
            on_delivery=self._record_delivery,
            matcher=self.matcher,
            dedup_capacity=self.dedup_capacity,
            max_subscriptions=self.max_subscriptions,
            suppress_covered=self.suppress_covered,
        )

    # -- client operations -------------------------------------------------------

    def subscribe(self, broker_id: int, subscription: Subscription) -> SubscriptionId:
        return self.brokers[broker_id].subscribe(subscription)

    def unsubscribe(self, broker_id: int, sid: SubscriptionId) -> bool:
        removed = self.brokers[broker_id].unsubscribe(sid)
        if removed and self.auditor is not None:
            # Unsubscription is exactly where summary/store divergence
            # starts (stale kept rows, stale period deltas) — re-validate
            # the affected broker while the trail is short.
            self.auditor.assert_clean(self.brokers[broker_id])
        return removed

    def run_propagation_period(self) -> Dict[str, int]:
        """Propagate pending batches (Algorithm 2); returns the phase's
        cumulative metric snapshot."""
        self.network.metrics = self.propagation_metrics
        self.propagation.run_period()
        if self.auditor is not None:
            self.auditor.assert_clean(self)
        return self.propagation_metrics.snapshot()

    def run_full_refresh(self) -> Dict[str, int]:
        """Rebuild and re-propagate complete summaries (post-churn)."""
        self.network.metrics = self.propagation_metrics
        self.propagation.run_full_refresh()
        if self.auditor is not None:
            self.auditor.assert_clean(self)
        return self.propagation_metrics.snapshot()

    def publish(self, broker_id: int, event: Event) -> PublishResult:
        """Inject an event (Algorithm 3) and run it to completion."""
        self.schema.validate_event(event)
        self.network.metrics = self.event_metrics
        before = self.event_metrics.snapshot()
        mark = len(self._delivery_log)
        start = getattr(self.network, "now", None)
        self.router.publish(broker_id, event)
        if self.auditor is not None:
            # Publishing never mutates summaries; the cheap O(#brokers)
            # dedup-capacity check is the only invariant it can break.
            self.auditor.audit_dedup(self)
        after = self.event_metrics.snapshot()
        deliveries = self._delivery_log[mark:]
        latency_ms = None
        if start is not None and deliveries:
            stamps = [d.at for d in deliveries if d.at is not None]
            if stamps:
                latency_ms = max(stamps) - start
        return PublishResult(
            deliveries=deliveries,
            hops=after["hops"] - before["hops"],
            messages=after["messages"] - before["messages"],
            bytes_sent=after["bytes_sent"] - before["bytes_sent"],
            latency_ms=latency_ms,
        )

    def publish_batch(self, broker_id: int, events: List[Event]) -> PublishResult:
        """Inject a burst of events at one broker (Algorithm 3, batched).

        The ingress broker's summary check runs once over the whole burst
        (:meth:`EventRouter.publish_batch` →
        :meth:`~repro.broker.broker.SummaryBroker.match_kept_many`), which
        is the simulator-side twin of the live runtime's batched dispatch
        loop; routing decisions, notifications and deliveries are
        per-event identical to publishing each event on its own (see
        ``tests/broker/test_batch_differential.py``).  Returns one
        aggregate :class:`PublishResult` over the burst.
        """
        for event in events:
            self.schema.validate_event(event)
        self.network.metrics = self.event_metrics
        before = self.event_metrics.snapshot()
        mark = len(self._delivery_log)
        self.event_metrics.record_match_batch(len(events))
        self.router.publish_batch(broker_id, events)
        if self.auditor is not None:
            self.auditor.audit_dedup(self)
        after = self.event_metrics.snapshot()
        return PublishResult(
            deliveries=self._delivery_log[mark:],
            hops=after["hops"] - before["hops"],
            messages=after["messages"] - before["messages"],
            bytes_sent=after["bytes_sent"] - before["bytes_sent"],
        )

    # -- measurement helpers ------------------------------------------------------

    def collect_metrics(self) -> MetricsRegistry:
        """One flat registry over every counter the system keeps (broker,
        both network phases, reliability, router, trace histograms)."""
        return collect_system_metrics(self)

    def total_summary_storage(self) -> int:
        """Total bytes of kept (multi-broker) summaries across all brokers —
        the storage metric of figure 11."""
        return sum(
            self.wire.summary_size(broker.kept_summary)
            for broker in self.brokers.values()
        )

    def storage_breakdown(self) -> Dict[int, int]:
        return {
            broker_id: self.wire.summary_size(broker.kept_summary)
            for broker_id, broker in self.brokers.items()
        }

    def total_suppressed(self) -> int:
        """Subscriptions currently covered (stored but never propagated)
        across all brokers — 0 when ``suppress_covered`` is off."""
        return sum(broker.suppressed for broker in self.brokers.values())

    def ground_truth_matches(self, event: Event) -> Set[Tuple[int, SubscriptionId]]:
        """Every (broker, sid) whose raw subscription matches the event —
        the oracle the routed deliveries must equal exactly."""
        matches: Set[Tuple[int, SubscriptionId]] = set()
        for broker_id, broker in self.brokers.items():
            for sid, subscription in broker.store.items():
                if subscription.matches(event):
                    matches.add((broker_id, sid))
        return matches

    @property
    def delivery_log(self) -> List[Delivery]:
        return list(self._delivery_log)

    # -- internals -------------------------------------------------------------------

    # -- delivery fan-out -----------------------------------------------------------

    def add_delivery_listener(self, listener) -> None:
        """Register a callable invoked as ``listener(delivery)`` for every
        delivery — how Event Displayers (consumers) hear about events."""
        self._delivery_listeners.append(listener)

    def remove_delivery_listener(self, listener) -> None:
        self._delivery_listeners.remove(listener)

    def _record_delivery(self, broker_id: int, sid: SubscriptionId, event: Event) -> None:
        delivery = Delivery(
            broker=broker_id,
            sid=sid,
            event=event,
            at=getattr(self.network, "now", None),
        )
        self._delivery_log.append(delivery)
        for listener in self._delivery_listeners:
            listener(delivery)

    def _dispatch(self, dst: int, src: int, message: Message) -> None:
        if self.propagation.handle_message(dst, src, message):
            return
        if self.router.handle_message(dst, src, message):
            return
        raise TypeError(f"unhandled message type {type(message).__name__}")

    def __repr__(self) -> str:
        total = sum(len(broker.store) for broker in self.brokers.values())
        return (
            f"SummaryPubSub({self.topology.num_brokers} brokers, "
            f"{total} subscriptions, {self.precision.value})"
        )
