#!/usr/bin/env python3
"""Operations tour: traces, snapshots, crash recovery, health reports.

The day-2 story for running the summary-based broker network:

1. drive a live deployment through a :class:`TraceRecorder` (every call
   is applied *and* written down);
2. snapshot all broker state mid-flight;
3. "crash" — throw the system away — and restore from snapshots, proving
   the recovered network routes identically;
4. replay the recorded trace against the Siena comparator for a fair
   apples-to-apples cost comparison;
5. print the per-broker health report.

Run:  python examples/operations_tour.py
"""

import random
import tempfile
from pathlib import Path

from repro import SummaryPubSub
from repro.analysis.report import build_report
from repro.broker.persistence import load_system, save_system
from repro.network import cable_wireless_24
from repro.siena.system import SienaPubSub
from repro.tools.trace import Trace, TraceRecorder, replay
from repro.workload import WorkloadConfig, WorkloadGenerator


def main() -> None:
    topology = cable_wireless_24()
    generator = WorkloadGenerator(WorkloadConfig(subsumption=0.6), seed=404)
    rng = random.Random(9)
    workdir = Path(tempfile.mkdtemp(prefix="repro-ops-"))

    # -- 1. live operation, recorded ---------------------------------------
    system = SummaryPubSub(topology, generator.schema)
    recorder = TraceRecorder(system)
    subscriptions = []
    for broker_id in topology.brokers:
        for subscription in generator.subscriptions(5):
            recorder.subscribe(broker_id, subscription)
            subscriptions.append(subscription)
    recorder.run_propagation_period()
    deliveries = 0
    for _ in range(30):
        event = generator.matching_event(rng.choice(subscriptions))
        outcome = recorder.publish(rng.randrange(24), event)
        deliveries += len(outcome.deliveries)
    trace_path = recorder.trace.save(workdir / "morning.trace")
    print(f"recorded {len(recorder.trace)} operations -> {trace_path.name} "
          f"({trace_path.stat().st_size:,} bytes), {deliveries} deliveries")

    # -- 2. snapshot ----------------------------------------------------------
    snap_paths = save_system(system, workdir / "snapshots")
    total = sum(path.stat().st_size for path in snap_paths)
    print(f"snapshotted {len(snap_paths)} brokers ({total:,} bytes)")

    # -- 3. crash + recover -----------------------------------------------------
    del system
    recovered = load_system(
        SummaryPubSub(topology, generator.schema), workdir / "snapshots"
    )
    probe = generator.matching_event(rng.choice(subscriptions))
    outcome = recovered.publish(0, probe)
    oracle = recovered.ground_truth_matches(probe)
    assert {(d.broker, d.sid) for d in outcome.deliveries} == oracle
    print(f"recovered network routes correctly "
          f"({len(outcome.deliveries)} deliveries on the probe event)")

    # -- 4. replay the morning against Siena -------------------------------------
    trace = Trace.load(trace_path, generator.schema)
    siena = SienaPubSub(topology, generator.schema)
    siena_result = replay(trace, siena)
    summary_bytes = recovered.propagation_metrics.bytes_sent  # restored state
    print(
        f"replay on Siena: {siena_result.deliveries} deliveries "
        f"(identical workload), propagation "
        f"{siena.propagation_metrics.bytes_sent:,} bytes vs summary "
        f"{summary_bytes or 'n/a'} (recovered system did not re-propagate)"
    )

    # -- 5. health report ------------------------------------------------------------
    print("\nper-broker health (busiest three):")
    report = build_report(recovered)
    for row in report.busiest(3):
        print(
            f"  broker {row.broker:>2}: examined {row.events_examined:>3}, "
            f"knows {row.knowledge_size:>2} brokers, "
            f"summary {row.summary_bytes:,} B"
        )
    print(f"examination gini: {report.examination_gini:.2f} "
          f"(0 = even, 1 = one hot spot)")


if __name__ == "__main__":
    main()
