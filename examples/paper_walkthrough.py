#!/usr/bin/env python3
"""A guided tour of the paper's worked examples, live.

Reconstructs, with the actual library objects:

* figure 2's event and figure 3's subscriptions,
* figure 4's AACS and figure 5's SACS rows,
* figure 6's bit-packed subscription id,
* Example 1 — matching the event against the summaries, counters and all,
* figure 7 + Example 3 — propagation knowledge and the BROCLI routing
  trace on the 13-broker tree.

Run:  python examples/paper_walkthrough.py
"""

from repro import Event, IdCodec, SubscriptionId, parse_subscription, stock_schema
from repro.broker.propagation import TargetPolicy
from repro.broker.system import SummaryPubSub
from repro.network import paper_example_tree
from repro.summary import Precision, SubscriptionStore, match_event_detailed
from repro.workload.popularity import (
    popularity_event,
    popularity_schema,
    probe_subscription,
)


def section(title: str) -> None:
    print(f"\n=== {title} " + "=" * max(0, 60 - len(title)))


def main() -> None:
    schema = stock_schema()

    section("Figures 2-3: the event and subscription schemata")
    event = Event.of(
        exchange="NYSE", symbol="OTE", price=8.40, volume=132_700,
        high=8.80, low=8.22,
    )
    s1 = parse_subscription(
        schema, "exchange ~ N*SE AND symbol = OTE AND price < 8.70 AND price > 8.30"
    )
    s2 = parse_subscription(
        schema, "symbol >* OT AND price = 8.20 AND volume > 130000 AND low < 8.05"
    )
    print(f"event:          {event}")
    print(f"subscription 1: {s1}")
    print(f"subscription 2: {s2}")

    section("Figures 4-5: the summary structures")
    store = SubscriptionStore(schema, broker_id=0)
    sid1, sid2 = store.subscribe(s1), store.subscribe(s2)
    summary = store.build_summary(Precision.COARSE)
    print(f"AACS(price):  {summary.aacs('price')}")
    print("  -> one sub-range row (8.30, 8.70) and one equality row 8.20,")
    print("     exactly figure 4.")
    print(f"SACS(symbol): {summary.sacs('symbol')}")
    print("  -> '= OTE' collapsed into the more general '>* OT' row with")
    print("     both ids, exactly figure 5.")

    section("Figure 6: the bit-packed subscription id")
    codec = IdCodec(num_brokers=4, max_subscriptions=8, num_attributes=7)
    figure6 = SubscriptionId(broker=2, local_id=1, attr_mask=0b0110100)
    print(f"id fields: c1={codec.c1_bits}b c2={codec.c2_bits}b c3={codec.c3_bits}b")
    print(f"packed:    {codec.pack(figure6):#014b}  "
          f"(broker 2 | subscription 1 | attributes 3,5,6)")
    print(f"popcount(c3) = {figure6.attribute_count} constrained attributes")

    section("Example 1: matching the event against the summaries")
    details = match_event_detailed(summary, event)
    for name, ids in details.per_attribute.items():
        tags = ", ".join("S1" if s == sid1 else "S2" for s in sorted(ids))
        print(f"  {name:<10} -> {tags}")
    for sid, counter in sorted(details.counters.items()):
        tag = "S1" if sid == sid1 else "S2"
        verdict = "MATCH" if sid in details.matched else "no (needs all)"
        print(f"  {tag}: counter {counter} of {sid.attribute_count} -> {verdict}")
    assert details.matched == {sid1}

    section("Figure 7 + Example 3: propagation and BROCLI routing")
    tree = paper_example_tree()
    system = SummaryPubSub(
        tree, popularity_schema(),
        propagation_policy=TargetPolicy.SMALLEST_DEGREE,  # the paper's text
    )
    for broker in tree.brokers:
        system.subscribe(broker, probe_subscription(broker))
    system.run_propagation_period()
    print("knowledge after Algorithm 2 (paper numbering = node + 1):")
    for node in (4, 7, 10):
        knows = sorted(b + 1 for b in system.brokers[node].merged_brokers)
        print(f"  broker {node + 1:<2} knows brokers {knows}")

    # Example 3: event matching brokers 4, 8, 13 arrives at broker 1.
    outcome = system.publish(0, popularity_event({3, 7, 12}))
    print(f"\nevent for brokers 4, 8, 13 entering at broker 1:")
    print(f"  {outcome.hops} hops "
          f"(paper's trace: 1->5, 5->4, 5->8, 8->11, 11->13 = 5)")
    print(f"  delivered at brokers "
          f"{sorted(d.broker + 1 for d in outcome.deliveries)}")
    assert outcome.hops == 5
    assert outcome.matched_brokers == {3, 7, 12}
    print("\nevery number above is produced by the library, not hardcoded.")


if __name__ == "__main__":
    main()
