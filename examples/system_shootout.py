#!/usr/bin/env python3
"""Shootout: summary paradigm vs Siena-style covering vs broadcast.

Runs the identical Table-2 workload through all three systems on the
24-node backbone, verifies they deliver byte-for-byte identically, then
prints the efficiency scoreboard the paper's evaluation is about —
propagation bandwidth, hop counts, and storage.

Run:  python examples/system_shootout.py [sigma] [subsumption]
"""

import random
import sys

from repro import BroadcastPubSub, SienaPubSub, SummaryPubSub
from repro.network import cable_wireless_24
from repro.workload import WorkloadConfig, WorkloadGenerator


def main(sigma: int = 25, subsumption: float = 0.5) -> None:
    topology = cable_wireless_24()
    config = WorkloadConfig(sigma=sigma, subsumption=subsumption)
    generator = WorkloadGenerator(config, seed=99)

    systems = {
        "summary (this paper)": SummaryPubSub(topology, generator.schema),
        "siena (covering)": SienaPubSub(topology, generator.schema),
        "broadcast baseline": BroadcastPubSub(topology, generator.schema),
    }

    # Identical workload everywhere.
    subscriptions = []
    for broker_id in topology.brokers:
        for subscription in generator.subscriptions(sigma):
            subscriptions.append(subscription)
            for system in systems.values():
                system.subscribe(broker_id, subscription)
    for system in systems.values():
        system.run_propagation_period()

    # Delivery equivalence on targeted + background events.
    rng = random.Random(4)
    events = [generator.matching_event(rng.choice(subscriptions)) for _ in range(20)]
    events += generator.events(10)
    event_hops = {name: 0 for name in systems}
    for event in events:
        publisher = rng.randrange(topology.num_brokers)
        results = {}
        for name, system in systems.items():
            outcome = system.publish(publisher, event)
            results[name] = {(d.broker, d.sid) for d in outcome.deliveries}
            event_hops[name] += outcome.hops
        assert len(set(map(frozenset, results.values()))) == 1, "delivery divergence!"
    print(f"delivery check: all 3 systems identical on {len(events)} events ✓\n")

    storage = {
        "summary (this paper)": systems["summary (this paper)"].total_summary_storage(),
        "siena (covering)": systems["siena (covering)"].total_table_storage(),
        "broadcast baseline": systems["broadcast baseline"].total_table_storage(),
    }

    header = f"{'system':<22} {'prop bytes':>12} {'prop hops':>10} {'storage':>12} {'event hops':>11}"
    print(header)
    print("-" * len(header))
    for name, system in systems.items():
        snap = system.propagation_metrics
        print(
            f"{name:<22} {snap.bytes_sent:>12,} {snap.hops:>10,} "
            f"{storage[name]:>12,} {event_hops[name]:>11,}"
        )

    summary_bytes = systems["summary (this paper)"].propagation_metrics.bytes_sent
    siena_bytes = systems["siena (covering)"].propagation_metrics.bytes_sent
    print(
        f"\nsummaries cost {siena_bytes / summary_bytes:.1f}x less propagation "
        f"bandwidth than covering-based flooding at subsumption={subsumption}"
    )


if __name__ == "__main__":
    sigma = int(sys.argv[1]) if len(sys.argv) > 1 else 25
    subsumption = float(sys.argv[2]) if len(sys.argv) > 2 else 0.5
    main(sigma, subsumption)
