#!/usr/bin/env python3
"""Quickstart: a complete pub/sub round-trip in ~30 lines of API.

Builds the summary-based system on the paper's 13-broker example tree,
plants a few stock-market interests, propagates the subscription
summaries (Algorithm 2), publishes events (Algorithms 1+3), and shows who
got what — and what it cost.

Run:  python examples/quickstart.py
"""

from repro import Event, SummaryPubSub, parse_subscription, stock_schema
from repro.network import paper_example_tree


def main() -> None:
    schema = stock_schema()
    system = SummaryPubSub(topology=paper_example_tree(), schema=schema)

    # Consumers attach to brokers and declare interests (paper figure 3).
    alice = system.subscribe(
        broker_id=3,
        subscription=parse_subscription(
            schema, "symbol = OTE AND price > 8.30 AND price < 8.70"
        ),
    )
    bob = system.subscribe(
        broker_id=7,
        subscription=parse_subscription(schema, "symbol >* OT AND volume > 130000"),
    )
    carol = system.subscribe(
        broker_id=12,
        subscription=parse_subscription(schema, "exchange = NYSE AND price < 5"),
    )

    # Summaries propagate between brokers once per period.
    snapshot = system.run_propagation_period()
    print(f"propagation: {snapshot['hops']} hops, {snapshot['bytes_sent']} bytes")
    print(f"  (13 brokers -> always fewer than 13 hops)\n")

    # A producer at broker 0 publishes the paper's figure-2 event.
    tick = Event.of(
        exchange="NYSE", symbol="OTE", price=8.40, volume=132_700,
        high=8.80, low=8.22,
    )
    outcome = system.publish(broker_id=0, event=tick)

    names = {alice: "alice@broker3", bob: "bob@broker7", carol: "carol@broker12"}
    print(f"published {tick!r}")
    print(f"routing: {outcome.hops} hops, {outcome.bytes_sent} bytes")
    for delivery in outcome.deliveries:
        print(f"  delivered to {names[delivery.sid]}")

    assert {d.sid for d in outcome.deliveries} == {alice, bob}
    print("\ncarol's price ceiling (5) filtered the event out — as intended.")


if __name__ == "__main__":
    main()
