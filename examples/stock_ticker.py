#!/usr/bin/env python3
"""Stock-ticker dissemination over a 24-city ISP backbone.

The paper's motivating scenario at full size: every backbone city hosts a
broker; hundreds of consumers register price bands, volume triggers,
exchange watches and symbol-family patterns; producers publish a live
random-walk trade feed from random cities.

The run reports what the summary paradigm is for: how compact the
propagated summaries are versus the raw subscriptions, how few brokers a
propagation period touches, and how the COARSE summaries' false positives
are absorbed by the owning brokers' exact re-check.

Run:  python examples/stock_ticker.py [subscribers-per-city] [events]
"""

import random
import sys

from repro import SummaryPubSub
from repro.network import CW24_CITIES, cable_wireless_24
from repro.workload import StockWorkload


def main(per_city: int = 40, num_events: int = 300) -> None:
    topology = cable_wireless_24()
    workload = StockWorkload(seed=2024)
    system = SummaryPubSub(topology, workload.schema)
    rng = random.Random(7)

    # -- subscription phase ------------------------------------------------
    raw_bytes = 0
    for broker_id in topology.brokers:
        for subscription in workload.subscriptions(per_city):
            system.subscribe(broker_id, subscription)
            raw_bytes += system.wire.subscription_size(subscription)
    snapshot = system.run_propagation_period()

    total_subs = per_city * topology.num_brokers
    print(f"{total_subs} subscriptions across {topology.num_brokers} cities")
    print(f"  raw subscription bytes        : {raw_bytes:>10,}")
    print(f"  propagated summary bytes      : {snapshot['bytes_sent']:>10,}")
    print(f"  propagation hops              : {snapshot['hops']:>10}  (< 24)")
    print(f"  stored summary bytes (all)    : {system.total_summary_storage():>10,}")

    # -- event phase ---------------------------------------------------------
    deliveries = 0
    hops = 0
    publishers = list(topology.brokers)
    for event in workload.ticks(num_events):
        outcome = system.publish(rng.choice(publishers), event)
        deliveries += len(outcome.deliveries)
        hops += outcome.hops

    false_positives = sum(
        broker.false_positive_notifies for broker in system.brokers.values()
    )
    print(f"\n{num_events} trade events published")
    print(f"  total deliveries              : {deliveries:>10,}")
    print(f"  mean hops per event           : {hops / num_events:>10.1f}")
    print(f"  coarse false positives caught : {false_positives:>10,}"
          f"  (filtered by owners' exact re-check)")

    # -- who is busiest? --------------------------------------------------------
    busiest = sorted(
        ((broker.events_examined, broker_id) for broker_id, broker in system.brokers.items()),
        reverse=True,
    )[:3]
    print("\nbusiest brokers (events examined):")
    for examined, broker_id in busiest:
        print(f"  {CW24_CITIES[broker_id]:<14} {examined:>6}")


if __name__ == "__main__":
    args = [int(a) for a in sys.argv[1:3]]
    main(*args)
