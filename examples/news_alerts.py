#!/usr/bin/env python3
"""News alerts with advertisements and measured dissemination latency.

A string-heavy scenario showcasing two extensions together:

* **advertisements** — news agencies advertise the desks they operate
  (e.g. ``category >* finance``); reader alerts that match no advertised
  desk stay *dormant* and never cost a byte of propagation;
* **latency** — the overlay runs on the timed network with seeded link
  delays, so each alert reports real publish-to-delivery milliseconds.

Run:  python examples/news_alerts.py
"""

import random

from repro.ext.advertisements import AdvertisingPubSub
from repro.model import AttributeType, Event, Schema, parse_subscription
from repro.network import SeededLatency, cable_wireless_24
from repro.network.backbone import CW24_CITIES


def news_schema() -> Schema:
    return Schema.of(
        agency=AttributeType.STRING,
        category=AttributeType.STRING,
        headline=AttributeType.STRING,
        region=AttributeType.STRING,
        urgency=AttributeType.INTEGER,
        words=AttributeType.INTEGER,
    )


HEADLINES = {
    "finance.markets": [
        "Markets rally as rates hold", "Tech stocks slide on earnings",
        "Merger talks boost telecoms",
    ],
    "finance.crypto": ["Exchange outage halts trading", "Regulator fines platform"],
    "sports.football": ["Cup final goes to penalties", "Transfer record shattered"],
    "weather.alerts": ["Storm front closes airports", "Heatwave warning extended"],
}


def main() -> None:
    schema = news_schema()
    topology = cable_wireless_24()
    system = AdvertisingPubSub(
        topology, schema, latency=SeededLatency(lo=3.0, hi=25.0, seed=11)
    )
    rng = random.Random(5)

    # Agencies advertise their desks at their home brokers.
    system.advertise(0, parse_subscription(schema, "agency = REUTERS AND category >* finance"))
    system.advertise(11, parse_subscription(schema, "agency = AP AND category >* sports"))

    # Reader alerts — note the last two match no advertised desk.
    alerts = {
        "markets-watcher": (3, "category = finance.markets AND urgency >= 2"),
        "crypto-digest": (7, "category >* finance.crypto"),
        "football-fan": (19, "category = sports.football"),
        "longread-lover": (14, "category >* finance AND words > 800"),
        "storm-chaser": (5, "category >* weather"),  # nobody advertises weather
        "politics-desk": (22, "category >* politics"),  # nor politics
    }
    sids = {}
    for name, (broker, text) in alerts.items():
        sids[system.subscribe(broker, parse_subscription(schema, text))] = name
    print(f"alerts registered: {len(alerts)}, dormant (unadvertised): "
          f"{system.total_dormant()}")

    snapshot = system.run_propagation_period()
    print(f"propagation: {snapshot['hops']} hops, {snapshot['bytes_sent']} bytes "
          f"(dormant alerts cost nothing)\n")

    # The wire hums: agencies publish from their home brokers.
    stories = []
    for _ in range(12):
        category = rng.choice(list(HEADLINES))
        agency, home = ("REUTERS", 0) if category.startswith("finance") else ("AP", 11)
        if category.startswith("weather"):
            continue  # unadvertised desk: publishing it would raise
        stories.append(
            (
                home,
                Event.of(
                    agency=agency,
                    category=category,
                    headline=rng.choice(HEADLINES[category]),
                    region=rng.choice(["us-east", "us-west", "emea"]),
                    urgency=rng.randint(1, 3),
                    words=rng.randint(80, 1500),
                ),
            )
        )

    for home, story in stories:
        outcome = system.publish(home, story)
        readers = ", ".join(sorted(sids[d.sid] for d in outcome.deliveries)) or "—"
        print(
            f"[{story.value('category'):<16}] {story.value('headline'):<34} "
            f"-> {readers:<32} ({outcome.latency_ms or 0:5.1f} ms, "
            f"{outcome.hops} hops)"
        )

    print(f"\npublisher cities: REUTERS@{CW24_CITIES[0]}, AP@{CW24_CITIES[11]}")
    print("dormant alerts (storm-chaser, politics-desk) were never propagated;")
    print("the moment an agency advertises those desks, they wake automatically.")


if __name__ == "__main__":
    main()
