"""Property tests for trace serialization (hypothesis)."""

from hypothesis import given, settings, strategies as st

from repro.broker.system import SummaryPubSub
from repro.network.topology import Topology
from repro.tools.trace import OpKind, Trace, replay
from repro.workload import WorkloadConfig, WorkloadGenerator


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 10_000), ops=st.integers(1, 20))
def test_trace_save_load_roundtrip(tmp_path_factory, seed, ops):
    generator = WorkloadGenerator(WorkloadConfig(subsumption=0.5), seed=seed)
    import random

    rng = random.Random(seed)
    trace = Trace(generator.schema)
    for _ in range(ops):
        choice = rng.randrange(3)
        if choice == 0:
            trace.subscribe(rng.randrange(5), generator.subscription())
        elif choice == 1:
            trace.propagate()
        else:
            trace.publish(rng.randrange(5), generator.event())
    path = tmp_path_factory.mktemp("traces") / f"t{seed}.trace"
    trace.save(path)
    loaded = Trace.load(path, generator.schema)
    assert len(loaded) == len(trace)
    for original, decoded in zip(trace, loaded):
        assert original.kind == decoded.kind
        assert original.broker == decoded.broker
        assert original.subscription == decoded.subscription
        assert original.event == decoded.event


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 1000))
def test_replay_determinism(seed):
    """Replaying the same trace twice on fresh systems is bit-identical."""
    generator = WorkloadGenerator(WorkloadConfig(subsumption=0.6), seed=seed)
    import random

    rng = random.Random(seed)
    trace = Trace(generator.schema)
    subscriptions = []
    for broker in range(5):
        subscription = generator.subscription()
        subscriptions.append(subscription)
        trace.subscribe(broker, subscription)
    trace.propagate()
    for _ in range(4):
        trace.publish(
            rng.randrange(5), generator.matching_event(rng.choice(subscriptions))
        )

    def run_once():
        system = SummaryPubSub(Topology.random_tree(5, seed=1), generator.schema)
        result = replay(trace, system)
        return (
            result.deliveries,
            result.event_hops,
            sorted(result.delivered_pairs),
            system.propagation_metrics.bytes_sent,
        )

    assert run_once() == run_once()
