"""Trace recording, serialization and cross-system replay."""

import pytest

from repro.baseline.broadcast import BroadcastPubSub
from repro.broker.system import SummaryPubSub
from repro.model import Event, parse_subscription
from repro.network import Topology, paper_example_tree
from repro.siena.system import SienaPubSub
from repro.tools.trace import OpKind, Trace, TraceRecorder, replay
from repro.wire.codec import CodecError
from repro.workload import WorkloadConfig, WorkloadGenerator


@pytest.fixture
def recorded(schema):
    """A system driven through a recorder, plus the resulting trace."""
    system = SummaryPubSub(paper_example_tree(), schema)
    recorder = TraceRecorder(system)
    sid_keep = recorder.subscribe(3, parse_subscription(schema, "price > 1"))
    sid_drop = recorder.subscribe(7, parse_subscription(schema, "volume > 10"))
    recorder.run_propagation_period()
    recorder.publish(0, Event.of(price=5.0))
    recorder.unsubscribe(7, sid_drop)
    recorder.publish(0, Event.of(volume=50))
    return system, recorder.trace, sid_keep


class TestRecording:
    def test_ops_in_order(self, recorded):
        _system, trace, _sid = recorded
        assert [op.kind for op in trace] == [
            OpKind.SUBSCRIBE,
            OpKind.SUBSCRIBE,
            OpKind.PROPAGATE,
            OpKind.PUBLISH,
            OpKind.UNSUBSCRIBE,
            OpKind.PUBLISH,
        ]

    def test_failed_unsubscribe_not_recorded(self, schema):
        system = SummaryPubSub(Topology.line(2), schema)
        recorder = TraceRecorder(system)
        sid = recorder.subscribe(0, parse_subscription(schema, "price > 1"))
        recorder.unsubscribe(0, sid)
        assert not recorder.unsubscribe(0, sid)  # second time is a no-op
        kinds = [op.kind for op in recorder.trace]
        assert kinds.count(OpKind.UNSUBSCRIBE) == 1


class TestSerialization:
    def test_roundtrip(self, recorded, tmp_path, schema):
        _system, trace, _sid = recorded
        path = trace.save(tmp_path / "run.trace")
        loaded = Trace.load(path, schema)
        assert len(loaded) == len(trace)
        assert [op.kind for op in loaded] == [op.kind for op in trace]
        for original, decoded in zip(trace, loaded):
            assert original.subscription == decoded.subscription
            assert original.sid == decoded.sid
            assert original.event == decoded.event

    def test_schema_mismatch_rejected(self, recorded, tmp_path):
        from repro.model import AttributeType, Schema

        _system, trace, _sid = recorded
        path = trace.save(tmp_path / "run.trace")
        with pytest.raises(CodecError):
            Trace.load(path, Schema.of(x=AttributeType.FLOAT))

    def test_bad_magic_rejected(self, tmp_path, schema):
        path = tmp_path / "junk.trace"
        path.write_bytes(b"NOPE!")
        with pytest.raises(CodecError):
            Trace.load(path, schema)


class TestReplay:
    def test_replay_reproduces_deliveries(self, recorded, schema):
        _original, trace, sid_keep = recorded
        fresh = SummaryPubSub(paper_example_tree(), schema)
        result = replay(trace, fresh)
        assert result.publishes == 2
        assert result.propagation_periods == 1
        assert result.delivered_pairs == [(3, sid_keep)]

    def test_replay_checks_minted_ids(self, recorded, schema):
        _original, trace, _sid = recorded
        fresh = SummaryPubSub(paper_example_tree(), schema)
        # Pre-occupy broker 3's first local id so minting diverges.
        fresh.subscribe(3, parse_subscription(schema, "low > 0"))
        with pytest.raises(ValueError):
            replay(trace, fresh)

    def test_cross_system_replay_agrees(self, schema):
        """The same trace yields identical delivery sets on all systems."""
        generator = WorkloadGenerator(WorkloadConfig(subsumption=0.6), seed=71)
        topology = paper_example_tree()
        trace = Trace(generator.schema)
        subscriptions = []
        for broker in topology.brokers:
            for subscription in generator.subscriptions(2):
                trace.subscribe(broker, subscription)
                subscriptions.append(subscription)
        trace.propagate()
        for index in range(6):
            trace.publish(index, generator.matching_event(subscriptions[index * 3]))

        results = {}
        for name, cls in (
            ("summary", SummaryPubSub),
            ("siena", SienaPubSub),
            ("broadcast", BroadcastPubSub),
        ):
            results[name] = replay(trace, cls(topology, generator.schema))
        delivered = {
            name: sorted(result.delivered_pairs) for name, result in results.items()
        }
        assert delivered["summary"] == delivered["siena"] == delivered["broadcast"]
        assert results["summary"].deliveries > 0
