"""The paper's figures, asserted as *claims* on small/quick configurations.

Each test runs the real experiment driver (scaled down) and asserts the
qualitative result the paper reports — the gradient/ordering/crossover,
not absolute byte counts.
"""

import pytest

from repro.experiments import (
    fig8_bandwidth,
    fig9_prop_hops,
    fig10_event_hops,
    fig11_storage,
    tables,
)
from repro.network import cable_wireless_24

pytestmark = pytest.mark.slow


@pytest.fixture(scope="module")
def topology():
    return cable_wireless_24()


class TestFigure8:
    @pytest.fixture(scope="class")
    def result(self, topology):
        return fig8_bandwidth.run(
            topology=topology, sigmas=(10, 100), quick=True
        )

    def test_summary_beats_siena(self, result):
        """Paper: 'we drastically outperform it (by a factor of 4 to 8)'."""
        for row in result.rows:
            assert row["siena@10%"] / row["summary@10%"] > 2.0
            assert row["siena@90%"] / row["summary@90%"] > 2.0

    def test_both_beat_broadcast(self, result):
        for row in result.rows:
            assert row["summary@10%"] < row["broadcast"]
            assert row["siena@10%"] < row["broadcast"]

    def test_higher_subsumption_cheaper(self, result):
        for row in result.rows:
            assert row["summary@90%"] < row["summary@10%"]
            assert row["siena@90%"] < row["siena@10%"]

    def test_summary_grows_sublinearly(self, result):
        """Scalability: 10x the subscriptions costs well under 10x bytes."""
        first, last = result.rows[0], result.rows[-1]
        sigma_growth = last["sigma"] / first["sigma"]
        byte_growth = last["summary@90%"] / first["summary@90%"]
        assert byte_growth < sigma_growth


class TestFigure9:
    @pytest.fixture(scope="class")
    def result(self, topology):
        return fig9_prop_hops.run(topology=topology, quick=True)

    def test_summary_flat_below_n(self, result, topology):
        values = set(result.column("summary"))
        assert len(values) == 1  # flat line
        assert values.pop() < topology.num_brokers

    def test_siena_much_larger(self, result):
        for row in result.rows:
            assert row["siena"] > 4 * row["summary"]

    def test_siena_decreases_with_subsumption(self, result):
        siena = result.column("siena")
        assert siena == sorted(siena, reverse=True)

    def test_siena_near_worst_case_at_low_subsumption(self, result, topology):
        n = topology.num_brokers
        assert result.rows[0]["siena"] > 0.75 * n * (n - 1)


class TestFigure10:
    @pytest.fixture(scope="class")
    def result(self, topology):
        return fig10_event_hops.run(topology=topology, quick=True)

    def test_summary_wins_at_low_and_mid_popularity(self, result):
        """Paper: 'Our algorithm is shown to be better for event
        popularities up to 75%'."""
        by_popularity = {row["popularity%"]: row for row in result.rows}
        for popularity in (10, 25, 50, 75):
            row = by_popularity[popularity]
            assert row["summary"] < row["siena"], f"at {popularity}%"

    def test_gap_closes_at_high_popularity(self, result):
        """At 90% the two methods converge (the paper has Siena slightly
        ahead; our reconstruction yields a near-tie — see EXPERIMENTS.md)."""
        row = {r["popularity%"]: r for r in result.rows}[90]
        assert abs(row["summary"] - row["siena"]) / row["siena"] < 0.15

    def test_both_increase_with_popularity(self, result):
        summary = result.column("summary")
        siena = result.column("siena")
        assert summary == sorted(summary)
        assert siena == sorted(siena)

    def test_hops_bounded_by_paper_scale(self, result, topology):
        n = topology.num_brokers
        for row in result.rows:
            assert row["summary"] < n + 2
            assert row["siena"] < n


class TestFigure11:
    @pytest.fixture(scope="class")
    def result(self, topology):
        return fig11_storage.run(topology=topology, sizes=(10, 100), quick=True)

    def test_summary_beats_siena_2_to_5x(self, result):
        """Paper: 'outperforms Siena by about two to five times'."""
        for row in result.rows:
            assert row["siena@10%"] / row["summary@10%"] > 2.0
            assert row["siena@90%"] / row["summary@90%"] > 2.0

    def test_siena_low_subsumption_near_broadcast(self, result):
        """Paper: 'for small subsumption probabilities, Siena requires
        almost the same storage space as the baseline approach'."""
        for row in result.rows:
            assert row["siena@10%"] > 0.7 * row["broadcast"]

    def test_storage_grows_with_outstanding(self, result):
        summary = result.column("summary@10%")
        assert summary == sorted(summary)


class TestTables:
    def test_table1_lists_all_symbols(self):
        result = tables.table1_symbols()
        symbols = set(result.column("symbol"))
        assert {"nt", "S", "sigma", "nsr", "La", "Ls", "ssv", "sst", "sid"} <= symbols

    def test_table2_reflects_live_config(self):
        result = tables.table2_values()
        values = dict(zip(result.column("symbol"), result.column("value")))
        assert values["nt"] == 10
        assert values["S"] == 1000

    def test_computational_demands(self):
        result = tables.computational_demands(sizes=(100, 200), events_per_size=5)
        assert len(result.rows) == 2
        for row in result.rows:
            assert row["summary_us"] > 0 and row["naive_us"] > 0
        assert any("R^2" in note for note in result.notes)
