"""The latency and broker-count-scaling experiment drivers."""

import pytest

from repro.experiments import latency, scale
from repro.network import Topology, UniformLatency

pytestmark = pytest.mark.slow


class TestLatencyExperiment:
    @pytest.fixture(scope="class")
    def result(self):
        return latency.run(popularities=(0.10, 0.50, 0.90), quick=True)

    def test_all_series_positive(self, result):
        for row in result.rows:
            assert row["summary"] > 0
            assert row["summary+vdeg"] > 0
            assert row["siena"] > 0

    def test_latency_grows_with_popularity(self, result):
        summary = result.column("summary")
        siena = result.column("siena")
        assert summary == sorted(summary)
        assert siena == sorted(siena)

    def test_summary_pays_a_latency_premium(self, result):
        """The trade-off the paper names: our serialized BROCLI chain costs
        time relative to parallel reverse-path fan-out."""
        for row in result.rows:
            assert row["summary"] >= row["siena"]
            # ... but bounded: well under 3x at any popularity.
            assert row["summary"] < 3 * row["siena"]

    def test_siena_model_is_max_path_delay(self):
        topology = Topology.line(5)
        model = UniformLatency(10.0)
        assert latency.siena_event_latency(topology, model, 0, [2, 4]) == 40.0
        assert latency.siena_event_latency(topology, model, 0, []) == 0.0


class TestScaleExperiment:
    @pytest.fixture(scope="class")
    def result(self):
        return scale.run(sizes=(13, 24, 48), quick=True)

    def test_summary_hops_below_n_everywhere(self, result):
        for row in result.rows:
            assert row["summary_hops"] < row["n"]

    def test_siena_hops_superlinear(self, result):
        rows = result.rows
        for smaller, larger in zip(rows, rows[1:]):
            n_growth = larger["n"] / smaller["n"]
            hop_growth = larger["siena_hops"] / smaller["siena_hops"]
            assert hop_growth > n_growth  # worse than linear in n

    def test_bandwidth_ratio_stays_favourable(self, result):
        for row in result.rows:
            assert row["bw_ratio"] > 1.0

    def test_id_width_grows_logarithmically(self, result):
        import math

        for row in result.rows:
            assert row["c1_bits"] == max(1, math.ceil(math.log2(row["n"])))
