"""The transport-robustness experiment driver."""

import pytest

from repro.experiments import robustness
from repro.network import Topology

pytestmark = pytest.mark.slow


@pytest.fixture(scope="module")
def result():
    return robustness.run(drop_rates=(0.0, 0.1, 0.3), quick=True)


class TestRobustnessExperiment:
    def test_zero_loss_is_perfect(self, result):
        assert result.rows[0]["delivery_ratio"] == 1.0

    def test_loss_degrades_monotonically(self, result):
        ratios = result.column("delivery_ratio")
        assert ratios == sorted(ratios, reverse=True)
        assert ratios[-1] < 1.0

    def test_duplication_fully_absorbed(self, result):
        for row in result.rows:
            assert row["dup_delivery_ratio"] == 1.0
            assert row["duplicates_seen"] == 0

    def test_loss_worse_than_per_message_rate(self, result):
        """The serial BROCLI chain amplifies loss: at 30% drop, delivery
        falls below 70%."""
        worst = result.rows[-1]
        assert worst["delivery_ratio"] < 1.0 - worst["drop%"] / 100.0 + 0.05


class TestMeasureHelper:
    def test_small_topology(self):
        ratio, duplicates = robustness.measure_delivery_ratio(
            Topology.line(4), 0.0, 0.0, events=5
        )
        assert ratio == 1.0 and duplicates == 0
