"""The multi-ISP federation experiment driver."""

import pytest

from repro.experiments import federation
from repro.experiments.federation import split_traffic
from repro.network.federation import three_isp_federation
from repro.network.metrics import NetworkMetrics

pytestmark = pytest.mark.slow


@pytest.fixture(scope="module")
def result():
    return federation.run(sizes=(8, 10, 6), sigma=3, events=15, quick=True)


class TestFederationExperiment:
    def test_three_phases(self, result):
        assert result.column("phase") == ["propagation", "events", "events+locality"]

    def test_propagation_is_peering_light(self, result):
        prop = result.rows[0]
        assert prop["inter_share%"] < 50.0

    def test_events_are_peering_heavy(self, result):
        events = result.rows[1]
        assert events["inter_share%"] > result.rows[0]["inter_share%"]

    def test_locality_reduces_inter_bytes(self, result):
        plain = result.rows[1]
        local = result.rows[2]
        assert local["inter_bytes"] < plain["inter_bytes"]

    def test_totals_positive(self, result):
        for row in result.rows:
            assert row["intra_bytes"] + row["inter_bytes"] > 0


class TestSplitTraffic:
    def test_classification(self):
        _topology, fed = three_isp_federation(sizes=(4, 4, 4), seed=0)
        metrics = NetworkMetrics()
        metrics.record(0, 1, size=10, path_length=1)  # intra ISP 0
        metrics.record(0, 5, size=10, path_length=2)  # inter 0 -> 1
        intra, inter = split_traffic(metrics, fed)
        assert intra == 10
        assert inter == 20

    def test_empty_metrics(self):
        _topology, fed = three_isp_federation(sizes=(4, 4, 4), seed=0)
        assert split_traffic(NetworkMetrics(), fed) == (0, 0)
