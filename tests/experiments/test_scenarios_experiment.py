"""The scenario sweep experiment and its CI smoke CLI."""

import json

from repro.experiments import scenarios
from repro.workload.scenarios import SCENARIOS


class TestRun:
    def test_quick_sweep_is_sim_only_and_gated(self):
        result = scenarios.run(quick=True)
        assert result.name == "scenarios"
        assert len(result.rows) == len(SCENARIOS)
        assert set(result.column("scenario")) == set(SCENARIOS)
        assert set(result.column("substrate")) == {"sim"}
        assert all(ratio == 1.0 for ratio in result.column("ratio"))
        assert all(dup == 0 for dup in result.column("duplicates"))
        assert all(pubs > 0 for pubs in result.column("publishes"))


class TestCli:
    def test_sim_smoke_writes_report(self, tmp_path, capsys):
        report_path = tmp_path / "report.json"
        code = scenarios.main(
            [
                "--scenario", "churn_storm",
                "--substrate", "sim",
                "--report-out", str(report_path),
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "churn_storm" in output and "ok" in output
        (report,) = json.loads(report_path.read_text())
        assert report["scenario"] == "churn_storm"
        assert report["substrate"] == "sim"
        assert report["delivery_ratio"] == 1.0
        assert report["duplicates"] == 0
        assert report["gate_failures"] == []

    def test_failover_live_smoke(self, tmp_path):
        """The CI scenario-smoke job's second leg: the kill/restart drill
        on the live cluster, gated at ≥ 0.99 with zero duplicates."""
        report_path = tmp_path / "failover.json"
        code = scenarios.main(
            [
                "--scenario", "failover",
                "--substrate", "live",
                "--report-out", str(report_path),
            ]
        )
        assert code == 0
        (report,) = json.loads(report_path.read_text())
        assert report["delivery_ratio"] >= 0.99
        assert report["duplicates"] == 0
        assert report["metrics"]["fallback_requests"] > 0
        enqueued, processed = report["frames_balance"]
        assert enqueued == processed
