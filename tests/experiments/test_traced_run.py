"""The traced end-to-end experiment (observability smoke)."""

from __future__ import annotations

from repro.experiments.traced_run import main, run, run_traced_system


def test_run_traced_system_exercises_the_full_pipeline():
    system, tracer = run_traced_system(quick=True)
    kinds = {span.kind for span in tracer.spans}
    # The run must hit every pipeline stage, including the delivery tail.
    assert {
        "publish", "route_hop", "summary_match", "notify", "recheck",
        "delivery", "propagation_period", "summary_send", "full_refresh",
    } <= kinds
    # Paranoid mode was live and the hooks fired with zero violations.
    assert system.auditor is not None
    assert system.auditor.audits_run > 0


def test_run_returns_stage_table():
    result = run(quick=True)
    assert result.name == "traced"
    stages = [row["stage"] for row in result.rows]
    assert "publish" in stages and "delivery" in stages
    assert any("paranoid mode on" in note for note in result.notes)
    assert any("spans recorded" in note for note in result.notes)


def test_main_writes_artifacts(tmp_path, capsys):
    trace = tmp_path / "trace.jsonl"
    report = tmp_path / "report.txt"
    assert main(["--trace-out", str(trace), "--report-out", str(report)]) == 0
    assert trace.exists() and trace.read_text().count("\n") > 10
    assert "slowest publishes" in report.read_text()
    out = capsys.readouterr().out
    assert "paranoid audits" in out
