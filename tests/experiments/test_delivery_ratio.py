"""Delivery-ratio regression suite: loss x retry budget on the 24-node
Cable & Wireless backbone.

This is the acceptance gate for the reliability layer: with
``ReliableNetwork(retries=3)`` over ``LossyNetwork(drop=0.05)`` the event
delivery ratio must reach 0.99 while the bare transport measurably loses
traffic, consumers must never see a duplicate in any configuration, and
the ACK/retransmit byte overhead must be visible in the metrics.

CI runs this file under several ``REPRO_FAULT_SEED`` values, so every
assertion must hold across fault-injection RNG streams, not just for one
lucky seed.
"""

import pytest

from repro.experiments.robustness import SEED_ENV, fault_seed, measure_delivery
from repro.network import cable_wireless_24

DROPS = (0.01, 0.05, 0.1)
#: retry budgets; None = the bare lossy transport (paper's assumption).
BUDGETS = (None, 1, 3)
EVENTS = 30


@pytest.fixture(scope="module")
def grid():
    """DeliveryStats for every (drop, budget) cell, plus the zero-loss
    reliable baseline, all at the CI-selected seed."""
    topology = cable_wireless_24()
    seed = fault_seed()
    cells = {
        (drop, retries): measure_delivery(
            topology, drop, 0.0, EVENTS, seed=seed, retries=retries
        )
        for drop in DROPS
        for retries in BUDGETS
    }
    cells[(0.0, 3)] = measure_delivery(
        topology, 0.0, 0.0, 10, seed=seed, retries=3
    )
    return cells


class TestAcceptance:
    def test_reliable_transport_is_perfect_without_loss(self, grid):
        clean = grid[(0.0, 3)]
        assert clean.ratio == 1.0
        assert clean.duplicates == 0
        assert clean.retransmits == 0  # no spurious timer fires
        assert clean.send_failures == 0

    def test_bare_transport_measurably_loses_at_5pct(self, grid):
        assert grid[(0.05, None)].ratio < 0.97

    def test_retries_3_recovers_99pct_at_5pct_drop(self, grid):
        """The headline acceptance criterion."""
        assert grid[(0.05, 3)].ratio >= 0.99
        assert grid[(0.05, 3)].ratio > grid[(0.05, None)].ratio

    def test_budget_improves_delivery_monotonically(self, grid):
        for drop in DROPS:
            bare = grid[(drop, None)].ratio
            one = grid[(drop, 1)].ratio
            three = grid[(drop, 3)].ratio
            assert bare <= one <= three, f"not monotone at drop={drop}"
            assert three > bare, f"no improvement at drop={drop}"

    def test_bare_delivery_degrades_with_drop_rate(self, grid):
        ratios = [grid[(drop, None)].ratio for drop in DROPS]
        assert ratios == sorted(ratios, reverse=True)
        assert ratios[-1] < ratios[0]


class TestExactlyOnceConsumers:
    def test_zero_duplicate_deliveries_in_every_cell(self, grid):
        """Retransmissions are at-least-once on the wire; the broker-layer
        publish-id dedup must make consumers exactly-once everywhere."""
        for (drop, retries), stats in grid.items():
            assert stats.duplicates == 0, (
                f"duplicate consumer delivery at drop={drop}, "
                f"retries={retries}"
            )


class TestOverheadAccounting:
    def test_reliability_bytes_are_charged_and_reported(self, grid):
        for drop in DROPS:
            stats = grid[(drop, 3)]
            assert stats.acks > 0
            assert stats.retransmits > 0  # loss really triggered retries
            assert stats.reliability_bytes > 0
            assert 0.0 < stats.overhead_fraction < 1.0

    def test_reroutes_engage_under_heavy_loss(self, grid):
        """At 10% drop with a single retry, some transfers exhaust their
        budget and the router must steer around them."""
        stats = grid[(0.1, 1)]
        assert stats.send_failures > 0
        assert stats.reroutes > 0

    def test_bare_transport_reports_no_reliability_traffic(self, grid):
        stats = grid[(0.1, None)]
        assert stats.acks == 0 and stats.retransmits == 0
        assert stats.reliability_bytes == 0


class TestSeedPlumbing:
    def test_env_var_selects_seed(self, monkeypatch):
        monkeypatch.setenv(SEED_ENV, "42")
        assert fault_seed() == 42

    def test_default_without_env(self, monkeypatch):
        monkeypatch.delenv(SEED_ENV, raising=False)
        assert fault_seed() == 0
        assert fault_seed(7) == 7
