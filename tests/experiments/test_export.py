"""CSV/JSON export of experiment results."""

import csv
import io
import json

import pytest

from repro.experiments.common import ExperimentResult
from repro.experiments.export import export_csv, export_json, write_report


@pytest.fixture
def result():
    table = ExperimentResult(
        name="Figure 8", description="bandwidth", columns=["sigma", "summary@10%"]
    )
    table.add_row(**{"sigma": 10, "summary@10%": 33_104})
    table.add_row(**{"sigma": 100, "summary@10%": 314_575})
    table.notes.append("measured")
    return table


class TestCsv:
    def test_roundtrip_through_csv_reader(self, result):
        rows = list(csv.DictReader(io.StringIO(export_csv(result))))
        assert rows[0] == {"sigma": "10", "summary@10%": "33104"}
        assert len(rows) == 2

    def test_header_order_matches_columns(self, result):
        first_line = export_csv(result).splitlines()[0]
        assert first_line == "sigma,summary@10%"


class TestJson:
    def test_payload_complete(self, result):
        payload = json.loads(export_json(result))
        assert payload["name"] == "Figure 8"
        assert payload["columns"] == ["sigma", "summary@10%"]
        assert payload["rows"][1]["summary@10%"] == 314_575
        assert payload["notes"] == ["measured"]


class TestWriteReport:
    def test_writes_files_and_manifest(self, result, tmp_path):
        written = write_report([result], tmp_path)
        names = {path.name for path in written}
        assert names == {"figure-8.csv", "figure-8.json", "manifest.json"}
        manifest = json.loads((tmp_path / "manifest.json").read_text())
        assert manifest[0]["name"] == "Figure 8"
        assert (tmp_path / manifest[0]["csv"]).exists()

    def test_empty_run(self, tmp_path):
        written = write_report([], tmp_path)
        assert [path.name for path in written] == ["manifest.json"]

    def test_nested_directory_created(self, result, tmp_path):
        target = tmp_path / "a" / "b"
        write_report([result], target)
        assert (target / "figure-8.csv").exists()


def test_sensitivity_runs_on_small_zoo():
    """The sensitivity driver produces per-topology ratios > 1 and
    propagation hops < n — the paper's 'similar in all cases' claim."""
    from repro.experiments.sensitivity import run

    result = run(topologies=["paper-tree-13", "star-24"], sigma=5, quick=True)
    assert len(result.rows) == 2
    for row in result.rows:
        assert row["bw_ratio"] > 1.0
        assert row["prop_hops"] < row["n"]
