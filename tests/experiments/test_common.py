"""Result-table plumbing for the experiment drivers."""

import pytest

from repro.experiments.common import ExperimentResult, format_table, geometric_ratio


@pytest.fixture
def result():
    table = ExperimentResult(
        name="Test", description="desc", columns=["x", "y"]
    )
    table.add_row(x=1, y=10.5)
    table.add_row(x=2, y=2_000_000.0)
    return table


class TestExperimentResult:
    def test_add_row_and_column(self, result):
        assert result.column("x") == [1, 2]
        assert result.column("y") == [10.5, 2_000_000.0]

    def test_missing_column_rejected(self, result):
        with pytest.raises(ValueError):
            result.add_row(x=3)

    def test_format_contains_everything(self, result):
        result.notes.append("a note")
        text = format_table(result)
        assert "Test" in text and "desc" in text
        assert "10.50" in text
        assert "2e+06" in text  # large floats compact to 3 significant digits
        assert "note: a note" in text

    def test_str_matches_format(self, result):
        assert str(result) == format_table(result)

    def test_empty_table_formats(self):
        table = ExperimentResult(name="E", description="d", columns=["a"])
        assert "E" in format_table(table)


class TestGeometricRatio:
    def test_constant_ratio(self):
        assert geometric_ratio([2, 4, 8], [1, 2, 4]) == pytest.approx(2.0)

    def test_mixed(self):
        assert geometric_ratio([4, 1], [1, 4]) == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            geometric_ratio([1], [1, 2])
        with pytest.raises(ValueError):
            geometric_ratio([], [])
        with pytest.raises(ValueError):
            geometric_ratio([0], [1])
