"""The repro-experiments CLI."""

import pytest

from repro.experiments.runner import EXPERIMENTS, main, run_all


class TestRunAll:
    def test_tables_run(self):
        results = run_all(["table1", "table2"], quick=True)
        assert [r.name for r in results] == ["Table 1", "Table 2"]

    def test_unknown_experiment(self):
        with pytest.raises(SystemExit):
            run_all(["fig99"], quick=True)

    def test_registry_covers_every_figure_and_table(self):
        assert set(EXPERIMENTS) == {
            "table1", "table2", "fig8", "fig9", "fig10", "fig11", "sec524",
            "sensitivity", "latency", "scale", "robustness", "churn", "propbytes",
            "federation", "traced", "scenarios",
        }


class TestCli:
    def test_main_prints_tables(self, capsys):
        assert main(["table1"]) == 0
        output = capsys.readouterr().out
        assert "Table 1" in output
        assert "nsr" in output

    def test_main_multiple(self, capsys):
        assert main(["table1", "table2"]) == 0
        output = capsys.readouterr().out
        assert "Table 1" in output and "Table 2" in output
