"""The churn-dynamics experiment driver."""

import pytest

from repro.experiments import churn
from repro.network import Topology

pytestmark = pytest.mark.slow


@pytest.fixture(scope="module")
def result():
    return churn.run(
        topology=Topology.random_tree(8, seed=2),
        periods=4,
        arrivals_per_period=6,
        quick=True,
    )


class TestChurnExperiment:
    def test_row_per_period_plus_refresh(self, result):
        assert len(result.rows) == 5
        assert result.rows[-1]["phase"] == "refreshed"

    def test_dead_ids_accumulate_under_churn(self, result):
        churning = [row for row in result.rows if row["phase"] == "churning"]
        assert churning[-1]["dead_ids"] > churning[0]["dead_ids"]

    def test_refresh_purges_dead_ids(self, result):
        assert result.rows[-1]["dead_ids"] == 0

    def test_refresh_restores_storage_efficiency(self, result):
        last_churning = result.rows[-2]
        refreshed = result.rows[-1]
        assert refreshed["bytes_per_live"] < last_churning["bytes_per_live"]
        assert refreshed["live_subs"] == last_churning["live_subs"]

    def test_live_count_grows(self, result):
        live = [row["live_subs"] for row in result.rows[:-1]]
        assert live == sorted(live)
