"""Unit tests for the metrics registry (repro.obs.metrics)."""

from __future__ import annotations

import pytest

from repro.broker.system import SummaryPubSub
from repro.network.topology import paper_example_tree
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    collect_system_metrics,
)
from repro.obs.tracing import Tracer


# -- instruments -------------------------------------------------------------


def test_counter_is_monotone():
    counter = Counter("x")
    counter.inc()
    counter.inc(4)
    assert counter.value == 5
    with pytest.raises(ValueError):
        counter.inc(-1)


def test_gauge_moves_both_ways():
    gauge = Gauge("x")
    gauge.set(10)
    gauge.add(-3)
    assert gauge.value == 7


def test_histogram_aggregates():
    histogram = Histogram("x")
    for value in (1.0, 2.0, 3.0, 4.0):
        histogram.observe(value)
    assert histogram.count == 4
    assert histogram.total == pytest.approx(10.0)
    assert histogram.min == 1.0
    assert histogram.max == 4.0
    assert histogram.mean == pytest.approx(2.5)
    assert histogram.percentile(0.0) == 1.0
    assert histogram.percentile(1.0) == 4.0
    summary = histogram.summary()
    assert summary["count"] == 4
    assert summary["p95"] == 4.0


def test_histogram_empty_summary_and_bad_fraction():
    histogram = Histogram("x")
    assert histogram.summary() == {
        "count": 0, "sum": 0.0, "mean": 0.0, "min": 0.0, "max": 0.0,
        "p50": 0.0, "p95": 0.0,
    }
    assert histogram.percentile(0.5) == 0.0
    with pytest.raises(ValueError):
        histogram.percentile(1.5)


def test_histogram_sample_is_bounded_but_totals_are_not():
    histogram = Histogram("x", sample_limit=8)
    for value in range(100):
        histogram.observe(value)
    assert histogram.count == 100
    assert len(histogram._sample) == 8
    assert histogram.max == 99.0  # extrema track everything
    with pytest.raises(ValueError):
        Histogram("x", sample_limit=0)


# -- registry ----------------------------------------------------------------


def test_registry_get_or_create_returns_same_instrument():
    registry = MetricsRegistry()
    assert registry.counter("a.b") is registry.counter("a.b")
    assert len(registry) == 1
    assert "a.b" in registry
    assert registry.names() == ["a.b"]


def test_registry_rejects_kind_conflicts():
    registry = MetricsRegistry()
    registry.counter("a.b")
    with pytest.raises(TypeError, match="already registered"):
        registry.gauge("a.b")


def test_snapshot_flattens_histograms():
    registry = MetricsRegistry()
    registry.counter("c").inc(3)
    registry.gauge("g").set(1.5)
    registry.histogram("h").observe(2.0)
    snap = registry.snapshot()
    assert snap["c"] == 3
    assert snap["g"] == 1.5
    assert snap["h"]["count"] == 1
    rendered = registry.render()
    assert "c" in rendered and "n=1" in rendered


# -- system collection -------------------------------------------------------


@pytest.fixture
def driven_system(small_workload):
    system = SummaryPubSub(paper_example_tree(), small_workload.schema)
    subscriptions = small_workload.subscriptions(6)
    for index, subscription in enumerate(subscriptions):
        system.subscribe(index % 3, subscription)
    system.run_propagation_period()
    system.publish(5, small_workload.matching_event(subscriptions[0]))
    system.publish(7, small_workload.event())
    return system


def test_collect_system_metrics_unifies_the_layers(driven_system):
    registry = collect_system_metrics(driven_system)
    snap = registry.snapshot()
    assert snap["broker.count"] == len(driven_system.brokers)
    assert snap["broker.subscriptions"] == 6
    assert snap["broker.kept_ids"] >= 6  # merged everywhere after the period
    assert snap["propagation.periods_run"] == 1
    assert snap["net.propagation.bytes_sent"] > 0
    assert snap["net.event.messages"] > 0
    expected_deliveries = sum(
        len(b.deliveries) for b in driven_system.brokers.values()
    )
    assert snap["broker.deliveries"] == expected_deliveries
    # collect_metrics() on the system is the same collection.
    assert driven_system.collect_metrics().snapshot() == snap


def test_trace_histograms_appear_when_tracer_attached(small_workload):
    tracer = Tracer()
    system = SummaryPubSub(
        paper_example_tree(), small_workload.schema, tracer=tracer
    )
    subscription = small_workload.subscription()
    system.subscribe(0, subscription)
    system.run_propagation_period()
    system.publish(9, small_workload.matching_event(subscription))
    registry = collect_system_metrics(system)
    snap = registry.snapshot()
    assert snap["trace.publish.dur_us"]["count"] >= 1
    assert snap["trace.propagation_period.dur_us"]["count"] == 1
    assert any(name.startswith("trace.route_hop") for name in registry.names())


def test_untraced_system_contributes_no_trace_metrics(driven_system):
    names = collect_system_metrics(driven_system).names()
    assert not any(name.startswith("trace.") for name in names)


def test_system_report_embeds_the_snapshot(driven_system):
    from repro.analysis.report import build_report

    report = build_report(driven_system)
    assert report.metrics["broker.subscriptions"] == 6
    assert "metrics:" in str(report)
