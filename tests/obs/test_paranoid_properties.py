"""Property test: randomized lifecycles under paranoid mode stay clean.

Hypothesis drives random interleavings of subscribe / unsubscribe /
propagate / publish / full-refresh against a :class:`SummaryPubSub` built
with ``paranoid=True`` — so every unsubscribe, period, refresh and publish
runs the :class:`~repro.obs.audit.SummaryAuditor` hooks, and ANY invariant
violation aborts the example as an :class:`AuditError`.

On top of the implicit auditing, every publish is checked against a
brute-force oracle (the shadow model's raw subscriptions): deliveries must
include everything propagated-and-matching and nothing unsubscribed.  This
is the machine that would have found the unsubscribe-mid-period
resurrection bug class had it existed earlier; it now guards against its
reintroduction.
"""

from __future__ import annotations

from hypothesis import settings, strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    precondition,
    rule,
)

from repro.broker.system import SummaryPubSub
from repro.network.topology import paper_example_tree
from repro.obs.tracing import Tracer
from repro.workload import WorkloadConfig, WorkloadGenerator


class ParanoidSystemMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.generator = WorkloadGenerator(
            WorkloadConfig(subsumption=0.5), seed=2025
        )
        self.tracer = Tracer()
        self.system = SummaryPubSub(
            paper_example_tree(),
            self.generator.schema,
            matcher="compiled",  # paranoid also cross-checks vs reference
            tracer=self.tracer,
            paranoid=True,
        )
        assert self.system.auditor is not None
        # Shadow model: sid -> (broker, subscription, propagated?)
        self.shadow = {}

    # -- operations ----------------------------------------------------------

    @rule(broker=st.integers(0, 12))
    def subscribe(self, broker):
        subscription = self.generator.subscription()
        sid = self.system.subscribe(broker, subscription)
        self.shadow[sid] = (broker, subscription, False)

    @precondition(lambda self: self.shadow)
    @rule(data=st.data())
    def unsubscribe(self, data):
        sid = data.draw(st.sampled_from(sorted(self.shadow)))
        broker, _subscription, _propagated = self.shadow.pop(sid)
        assert self.system.unsubscribe(broker, sid)  # audits that broker

    @rule()
    def propagate(self):
        self.system.run_propagation_period()  # audits the whole system
        self.shadow = {
            sid: (broker, subscription, True)
            for sid, (broker, subscription, _p) in self.shadow.items()
        }

    @rule()
    def full_refresh(self):
        self.system.run_full_refresh()  # audits the whole system
        self.shadow = {
            sid: (broker, subscription, True)
            for sid, (broker, subscription, _p) in self.shadow.items()
        }

    @rule(publisher=st.integers(0, 12), targeted=st.booleans(), data=st.data())
    def publish(self, publisher, targeted, data):
        if targeted and self.shadow:
            sid = data.draw(st.sampled_from(sorted(self.shadow)))
            event = self.generator.matching_event(self.shadow[sid][1])
        else:
            event = self.generator.event()
        outcome = self.system.publish(publisher, event)  # audits dedup
        got = {(d.broker, d.sid) for d in outcome.deliveries}

        must_deliver = {
            (broker, sid)
            for sid, (broker, subscription, propagated) in self.shadow.items()
            if propagated and subscription.matches(event)
        }
        may_deliver = must_deliver | {
            (broker, sid)
            for sid, (broker, subscription, _p) in self.shadow.items()
            if subscription.matches(event)  # pending subs may match locally
        }
        assert got >= must_deliver, f"missed deliveries: {must_deliver - got}"
        assert got <= may_deliver, f"phantom deliveries: {got - may_deliver}"

    # -- invariants ------------------------------------------------------------

    @invariant()
    def auditor_stays_clean_even_between_hooks(self):
        # The hooks audit at mutation points; the invariant re-audits after
        # *every* step so a violation is pinned to the op that caused it.
        self.system.auditor.assert_clean(self.system)

    @invariant()
    def own_summary_entries_are_live(self):
        for broker in self.system.brokers.values():
            own = {
                sid
                for sid in broker.kept_summary.all_ids()
                if sid.broker == broker.broker_id
            }
            assert own <= broker.store.ids()

    def teardown(self):
        # The traced machine must have produced a consistent span stream.
        for span in self.tracer.spans:
            assert "error" not in span.fields, span


ParanoidSystemMachine.TestCase.settings = settings(
    max_examples=10, stateful_step_count=25, deadline=None
)

TestParanoidSystemStateful = ParanoidSystemMachine.TestCase
