"""SummaryAuditor tests: every invariant family, seeded and detected.

Each test corrupts one specific structure the way a real bug would (often
by editing private state — the auditor exists to distrust the public API)
and asserts the auditor names that violation family.  A final block checks
the clean path: a correctly driven broker/system raises nothing.
"""

from __future__ import annotations

import pytest

from repro.broker.broker import SummaryBroker
from repro.broker.system import SummaryPubSub
from repro.model import parse_subscription
from repro.model.ids import SubscriptionId
from repro.network.topology import paper_example_tree
from repro.obs.audit import (
    PARANOID_ENV,
    SAMPLE_ENV,
    AuditError,
    SummaryAuditor,
    Violation,
    audit_sample_limit,
    paranoid_enabled,
)
from repro.summary.aacs import RangeRow
from repro.summary.intervals import Interval


def _settled_broker(schema, subscriptions, **kwargs):
    """A broker whose subscriptions have completed one period."""
    broker = SummaryBroker(0, schema, **kwargs)
    sids = [broker.subscribe(s) for s in subscriptions]
    broker.begin_period()
    broker.finish_period()
    return broker, sids


def _checks(violations):
    return {violation.check for violation in violations}


# -- clean paths -------------------------------------------------------------


def test_clean_broker_passes(schema, paper_subscriptions):
    broker, _sids = _settled_broker(schema, paper_subscriptions)
    auditor = SummaryAuditor(schema)
    auditor.assert_clean(broker)
    assert auditor.audits_run == 1


def test_clean_system_passes(small_workload):
    system = SummaryPubSub(paper_example_tree(), small_workload.schema)
    for index, subscription in enumerate(small_workload.subscriptions(8)):
        system.subscribe(index % 5, subscription)
    system.run_propagation_period()
    system.publish(3, small_workload.event())
    auditor = SummaryAuditor(small_workload.schema)
    auditor.assert_clean(system)
    auditor.audit_dedup(system)
    assert auditor.audits_run == len(system.brokers)


# -- seeded violations, one family per test ----------------------------------


def test_local_liveness_kept(schema, paper_subscriptions):
    broker, sids = _settled_broker(schema, paper_subscriptions)
    broker.store.unsubscribe(sids[0])  # store-only removal = the bug shape
    violations = SummaryAuditor(schema).audit_broker(broker)
    assert "local-liveness" in _checks(violations)
    assert any("kept summary" in v.detail for v in violations)


def test_local_liveness_pending(schema, paper_subscriptions):
    broker = SummaryBroker(0, schema)
    sid = broker.subscribe(paper_subscriptions[0])
    broker.store.unsubscribe(sid)  # pending batch now references a ghost
    violations = SummaryAuditor(schema).audit_broker(broker)
    assert any(
        v.check == "local-liveness" and "pending batch" in v.detail
        for v in violations
    )


def test_coverage_soundness(schema, paper_subscriptions):
    broker, sids = _settled_broker(schema, paper_subscriptions)
    # Narrow the summary behind the store's back: drop S1's id from the
    # price structure only.  Events satisfying S1's price range are no
    # longer admitted -> the summary narrows, which is never sound.
    broker.kept_summary._aacs["price"].remove(sids[0])
    violations = SummaryAuditor(schema).audit_broker(broker)
    assert "coverage-soundness" in _checks(violations)
    assert any("'price'" in v.detail for v in violations)


def test_c3_accounting(schema, paper_subscriptions):
    broker, _sids = _settled_broker(schema, paper_subscriptions)
    # A foreign id whose c3 mask claims volume only, planted in the price
    # structure: Algorithm 1's popcount(c3) termination rule is now wrong.
    bogus = SubscriptionId(
        broker=1, local_id=7, attr_mask=1 << schema.position("volume")
    )
    broker.kept_summary._aacs["price"].insert_interval(
        Interval(1.0, 2.0), [bogus]
    )
    violations = SummaryAuditor(schema).audit_broker(broker)
    assert "c3-accounting" in _checks(violations)


def test_aacs_order_and_disjoint(schema, paper_subscriptions):
    broker, sids = _settled_broker(schema, paper_subscriptions)
    aacs = broker.kept_summary._aacs["price"]
    # Appended out of order AND overlapping everything before it.
    aacs._ranges.append(RangeRow(Interval(0.0, 1e9), {sids[0]}))
    checks = _checks(SummaryAuditor(schema).audit_broker(broker))
    assert "aacs-order" in checks
    assert "aacs-disjoint" in checks


def test_aacs_empty_row(schema, paper_subscriptions):
    broker, _sids = _settled_broker(schema, paper_subscriptions)
    aacs = broker.kept_summary._aacs["price"]
    aacs._ranges[0].ids.clear()
    checks = _checks(SummaryAuditor(schema, sample_limit=0).audit_broker(broker))
    assert "aacs-empty-row" in checks


def test_aacs_eq_index_divergence(schema, paper_subscriptions):
    broker, _sids = _settled_broker(schema, paper_subscriptions)
    aacs = broker.kept_summary._aacs["price"]
    assert aacs._equalities, "fixture should give price an equality row"
    aacs._eq_keys.append(999.0)  # sorted index no longer mirrors the map
    checks = _checks(SummaryAuditor(schema).audit_broker(broker))
    assert "aacs-eq-index" in checks


def test_sacs_empty_row_and_literal_key(schema, paper_subscriptions):
    # S1 alone: with S2's 'symbol >* OT' present, COARSE merging would
    # absorb the 'OTE' literal into the general 'OT*' row.
    broker, _sids = _settled_broker(schema, [paper_subscriptions[0]])
    sacs = broker.kept_summary._sacs["symbol"]
    assert "OTE" in sacs._literals  # symbol = OTE from S1
    sacs._literals["ZZZ"] = sacs._literals.pop("OTE")  # re-keyed wrongly
    checks = _checks(SummaryAuditor(schema).audit_broker(broker))
    assert "sacs-literal-key" in checks
    sacs._literals["ZZZ"].ids.clear()
    checks = _checks(SummaryAuditor(schema, sample_limit=0).audit_broker(broker))
    assert "sacs-empty-row" in checks


def test_dedup_capacity(schema, paper_subscriptions):
    broker, _sids = _settled_broker(
        schema, paper_subscriptions, dedup_capacity=4
    )
    for publish_id in range(1, 10):  # bypass _remember's eviction
        broker._routed_publishes[publish_id] = None
    violations = SummaryAuditor(schema).audit_broker(broker)
    assert "dedup-capacity" in _checks(violations)


def test_audit_dedup_raises_on_system(small_workload):
    system = SummaryPubSub(
        paper_example_tree(), small_workload.schema, dedup_capacity=2
    )
    broker = system.brokers[0]
    for publish_id in range(1, 8):
        broker._delivered_publishes[publish_id] = None
    with pytest.raises(AuditError, match="dedup-capacity"):
        SummaryAuditor(small_workload.schema).audit_dedup(system)


def test_compiled_accounting(schema, paper_subscriptions, paper_event):
    broker, _sids = _settled_broker(
        schema, paper_subscriptions, matcher="compiled"
    )
    broker.match_kept(paper_event)  # builds + binds the snapshot
    broker._compiled._required[0] += 1  # threshold != popcount(c3)
    violations = SummaryAuditor(schema).audit_broker(broker)
    assert "compiled-accounting" in _checks(violations)


def test_merged_brokers_and_period_scratch(small_workload):
    system = SummaryPubSub(paper_example_tree(), small_workload.schema)
    system.subscribe(0, small_workload.subscription())
    system.run_propagation_period()
    auditor = SummaryAuditor(small_workload.schema)
    system.brokers[2].merged_brokers.discard(2)  # lost itself
    system.brokers[3].merged_brokers.add(99)  # references a ghost broker
    system.brokers[4].delta_brokers = {4}  # scratch left outside a period
    checks = _checks(auditor.audit_system(system))
    assert "merged-brokers" in checks
    assert "period-scratch" in checks


# -- match-parity (the paranoid compiled cross-check) -------------------------


def _desync_compiled(broker, sid, attribute):
    """Mutate the live summary without bumping its generation counter, so a
    bound compiled snapshot silently diverges from the reference walk."""
    aacs = broker.kept_summary._aacs[attribute]
    for row in aacs._ranges:
        row.ids.discard(sid)
    for ids in aacs._equalities.values():
        ids.discard(sid)


def test_paranoid_match_detects_compiled_divergence(
    schema, paper_subscriptions, paper_event
):
    broker, sids = _settled_broker(
        schema, paper_subscriptions, matcher="compiled"
    )
    broker.paranoid = True
    assert sids[0] in broker.match_kept(paper_event)  # parity holds
    _desync_compiled(broker, sids[0], "price")
    with pytest.raises(AuditError, match="match-parity"):
        broker.match_kept(paper_event)


def test_check_match_parity_helper(schema, paper_subscriptions, paper_event):
    broker, sids = _settled_broker(
        schema, paper_subscriptions, matcher="compiled"
    )
    broker.match_kept(paper_event)
    assert SummaryAuditor.check_match_parity(broker, paper_event) is None
    _desync_compiled(broker, sids[0], "price")
    violation = SummaryAuditor.check_match_parity(broker, paper_event)
    assert violation is not None and violation.check == "match-parity"


def test_unparanoid_match_misses_the_divergence(
    schema, paper_subscriptions, paper_event
):
    """Without paranoid mode the same corruption sails through — the
    contrast that justifies the cross-check's existence."""
    broker, sids = _settled_broker(
        schema, paper_subscriptions, matcher="compiled"
    )
    broker.match_kept(paper_event)
    _desync_compiled(broker, sids[0], "price")
    assert sids[0] in broker.match_kept(paper_event)  # stale, undetected


# -- error type / env plumbing ------------------------------------------------


def test_audit_error_formatting():
    error = AuditError([
        Violation("local-liveness", 3, "ghost id"),
        Violation("merged-brokers", -1, "systemic"),
    ])
    text = str(error)
    assert "2 violation(s)" in text
    assert "[local-liveness] broker 3: ghost id" in text
    assert "[merged-brokers] system: systemic" in text


def test_paranoid_enabled_env(monkeypatch):
    monkeypatch.delenv(PARANOID_ENV, raising=False)
    assert not paranoid_enabled()
    for falsy in ("", "0", "false", "No", "OFF"):
        monkeypatch.setenv(PARANOID_ENV, falsy)
        assert not paranoid_enabled()
    for truthy in ("1", "true", "yes", "paranoid"):
        monkeypatch.setenv(PARANOID_ENV, truthy)
        assert paranoid_enabled()


def test_audit_sample_limit_env(monkeypatch):
    monkeypatch.delenv(SAMPLE_ENV, raising=False)
    assert audit_sample_limit() == 64
    monkeypatch.setenv(SAMPLE_ENV, "10")
    assert audit_sample_limit() == 10
    monkeypatch.setenv(SAMPLE_ENV, "-5")
    assert audit_sample_limit() == 0
    monkeypatch.setenv(SAMPLE_ENV, "junk")
    assert audit_sample_limit() == 64


def test_system_paranoid_mode_via_env(monkeypatch, small_workload):
    monkeypatch.setenv(PARANOID_ENV, "1")
    system = SummaryPubSub(paper_example_tree(), small_workload.schema)
    assert system.paranoid and system.auditor is not None
    subscription = small_workload.subscription()
    system.subscribe(0, subscription)
    system.run_propagation_period()
    system.publish(6, small_workload.matching_event(subscription))
    sid = next(iter(system.brokers[0].store.ids()))
    system.unsubscribe(0, sid)
    assert system.auditor.audits_run > 0  # the hooks actually fired


def test_system_paranoid_override_beats_env(monkeypatch, small_workload):
    monkeypatch.setenv(PARANOID_ENV, "1")
    system = SummaryPubSub(
        paper_example_tree(), small_workload.schema, paranoid=False
    )
    assert not system.paranoid and system.auditor is None
