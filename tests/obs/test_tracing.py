"""Unit tests for the span tracer (repro.obs.tracing)."""

from __future__ import annotations

import json

import pytest

from repro.obs.tracing import (
    NULL_TRACER,
    PIPELINE_KINDS,
    NullTracer,
    Span,
    Tracer,
)


class FakeClock:
    """Deterministic perf_counter stand-in: returns scripted instants."""

    def __init__(self, *instants: float):
        self.instants = list(instants)

    def __call__(self) -> float:
        return self.instants.pop(0) if self.instants else 99.0


def test_span_context_manager_measures_and_notes():
    # epoch=10.0; span enter=10.5, exit=10.502 -> t=500000us, dur=2000us
    tracer = Tracer(clock=FakeClock(10.0, 10.5, 10.502))
    with tracer.span("summary_match", broker=3, trace_id=7, engine="x") as s:
        s.note(matched=4)
    assert len(tracer) == 1
    span = tracer.spans[0]
    assert span.kind == "summary_match"
    assert span.broker == 3
    assert span.trace_id == 7
    assert span.t_us == pytest.approx(500_000.0)
    assert span.dur_us == pytest.approx(2_000.0)
    assert span.fields == {"engine": "x", "matched": 4}


def test_record_is_instantaneous():
    tracer = Tracer(clock=FakeClock(0.0, 1.0))
    tracer.record("notify", broker=2, trace_id=9, owner=5)
    (span,) = tracer.spans
    assert span.dur_us == 0.0
    assert span.t_us == pytest.approx(1_000_000.0)
    assert span.fields == {"owner": 5}


def test_span_records_error_field_on_exception():
    tracer = Tracer(clock=FakeClock(0.0, 0.0, 0.001))
    with pytest.raises(RuntimeError):
        with tracer.span("publish", broker=1):
            raise RuntimeError("boom")
    (span,) = tracer.spans
    assert span.fields["error"] == "RuntimeError"


def test_seq_is_global_record_order():
    tracer = Tracer()
    for _ in range(3):
        tracer.record("delivery", broker=0)
    with tracer.span("recheck", broker=0):
        pass
    assert [s.seq for s in tracer.spans] == [0, 1, 2, 3]


def test_spans_of_and_traces_grouping():
    tracer = Tracer()
    tracer.record("route_hop", broker=0, trace_id=1)
    tracer.record("route_hop", broker=1, trace_id=1)
    tracer.record("notify", broker=1, trace_id=2)
    assert len(tracer.spans_of("route_hop")) == 2
    assert len(tracer.spans_of("notify")) == 1
    groups = tracer.traces()
    assert set(groups) == {1, 2}
    assert [s.broker for s in groups[1]] == [0, 1]  # record order preserved


def test_clear_resets_spans():
    tracer = Tracer()
    tracer.record("publish")
    tracer.clear()
    assert len(tracer) == 0


def test_jsonl_round_trip(tmp_path):
    tracer = Tracer(clock=FakeClock(0.0, 0.25, 0.5))
    with tracer.span("publish", broker=4, trace_id=123, attributes=7):
        pass
    tracer.record("delivery", broker=4, trace_id=123, count=2)
    path = tracer.export_jsonl(tmp_path / "trace.jsonl")
    lines = path.read_text().splitlines()
    assert len(lines) == 2
    first = json.loads(lines[0])
    assert first["kind"] == "publish"
    assert first["trace"] == 123
    assert first["fields"] == {"attributes": 7}
    # fields key is omitted when empty? delivery has fields -> present
    second = json.loads(lines[1])
    assert second["dur_us"] == 0.0


def test_as_dict_omits_empty_fields():
    span = Span("route_hop", broker=0, trace_id=0, t_us=1.0, dur_us=2.0, seq=0)
    assert "fields" not in span.as_dict()


def test_pipeline_kinds_cover_the_event_path():
    for kind in ("publish", "route_hop", "summary_match", "notify",
                 "recheck", "delivery", "propagation_period",
                 "summary_send", "full_refresh"):
        assert kind in PIPELINE_KINDS


def test_null_tracer_is_inert():
    assert NULL_TRACER.enabled is False
    assert isinstance(NULL_TRACER, NullTracer)
    with NULL_TRACER.span("publish", broker=0, trace_id=1) as s:
        s.note(anything=1)
    NULL_TRACER.record("delivery", broker=0)
    assert len(NULL_TRACER) == 0
    assert NULL_TRACER.spans == ()


def test_live_tracer_is_enabled_for_hot_path_guards():
    assert Tracer().enabled is True
