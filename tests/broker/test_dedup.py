"""Publish-id de-duplication at the broker layer."""

import pytest

from repro.broker.broker import SummaryBroker
from repro.model import Event, parse_subscription, stock_schema
from repro.summary.precision import Precision


@pytest.fixture
def broker(schema):
    broker = SummaryBroker(0, schema, Precision.COARSE)
    subscription = parse_subscription(schema, "price > 1")
    sid = broker.subscribe(subscription)
    broker.begin_period()
    broker.finish_period()
    return broker


class TestRoutingDedup:
    def test_first_routing_true_then_false(self, broker):
        assert broker.first_routing_of(77)
        assert not broker.first_routing_of(77)
        assert broker.duplicates_suppressed == 1

    def test_distinct_publishes_independent(self, broker):
        assert broker.first_routing_of(1)
        assert broker.first_routing_of(2)
        assert broker.duplicates_suppressed == 0

    def test_zero_id_never_dedups(self, broker):
        assert broker.first_routing_of(0)
        assert broker.first_routing_of(0)
        assert broker.duplicates_suppressed == 0

    def test_lru_capacity_bounds_memory(self, broker):
        broker._dedup_capacity = 8
        for publish_id in range(1, 20):
            broker.first_routing_of(publish_id)
        assert len(broker._routed_publishes) <= 8
        # An ancient id re-appears as "first" after eviction (bounded
        # memory trades perfect dedup for old traffic, by design).
        assert broker.first_routing_of(1)


class TestDeliveryDedup:
    def test_second_delivery_suppressed(self, broker):
        event = Event.of(price=5.0)
        sid = next(iter(broker.store.ids()))
        first = broker.deliver({sid}, event, publish_id=9)
        second = broker.deliver({sid}, event, publish_id=9)
        assert first == {sid}
        assert second == set()
        assert len(broker.deliveries) == 1

    def test_same_event_new_publish_delivers_again(self, broker):
        """Two legitimate publishes of identical content both deliver —
        dedup keys on the publish, never the payload."""
        event = Event.of(price=5.0)
        sid = next(iter(broker.store.ids()))
        broker.deliver({sid}, event, publish_id=10)
        broker.deliver({sid}, event, publish_id=11)
        assert len(broker.deliveries) == 2

    def test_unidentified_delivery_never_deduped(self, broker):
        event = Event.of(price=5.0)
        sid = next(iter(broker.store.ids()))
        broker.deliver({sid}, event)
        broker.deliver({sid}, event)
        assert len(broker.deliveries) == 2
