"""Publish-id de-duplication at the broker layer."""

import pytest

from repro.broker.broker import SummaryBroker
from repro.model import Event, parse_subscription, stock_schema
from repro.summary.precision import Precision


@pytest.fixture
def broker(schema):
    broker = SummaryBroker(0, schema, Precision.COARSE)
    subscription = parse_subscription(schema, "price > 1")
    sid = broker.subscribe(subscription)
    broker.begin_period()
    broker.finish_period()
    return broker


class TestRoutingDedup:
    def test_first_routing_true_then_false(self, broker):
        assert broker.first_routing_of(77)
        assert not broker.first_routing_of(77)
        assert broker.duplicates_suppressed == 1

    def test_distinct_publishes_independent(self, broker):
        assert broker.first_routing_of(1)
        assert broker.first_routing_of(2)
        assert broker.duplicates_suppressed == 0

    def test_zero_id_never_dedups(self, broker):
        assert broker.first_routing_of(0)
        assert broker.first_routing_of(0)
        assert broker.duplicates_suppressed == 0

    def test_lru_capacity_bounds_memory(self, broker):
        broker._dedup_capacity = 8
        for publish_id in range(1, 20):
            broker.first_routing_of(publish_id)
        assert len(broker._routed_publishes) <= 8
        # An ancient id re-appears as "first" after eviction (bounded
        # memory trades perfect dedup for old traffic, by design).
        assert broker.first_routing_of(1)

    def test_reseen_id_survives_fresh_churn(self, schema):
        """The FIFO->LRU regression: a duplicate touch must move the id to
        the MRU end, so subsequent fresh publishes evict *colder* entries
        first.  Under the old FIFO table the re-seen id aged out on insert
        order and a third copy sneaked through as 'first'."""
        broker = SummaryBroker(0, schema, Precision.COARSE, dedup_capacity=8)
        assert broker.first_routing_of(100)
        for publish_id in range(1, 8):  # capacity-1 fresh publishes
            assert broker.first_routing_of(publish_id)
        # Table is full; 100 is the coldest entry. A retransmission of 100
        # arrives: still suppressed, and the hit refreshes its recency.
        assert not broker.first_routing_of(100)
        # Two more fresh ids evict the now-coldest entries (1, then 2)...
        assert broker.first_routing_of(8)
        assert broker.first_routing_of(9)
        # ...but NOT the re-seen hot id: a straggler duplicate of 100 is
        # still caught.  FIFO would have evicted 100 at id 8's insert.
        assert not broker.first_routing_of(100)
        assert 1 not in broker._routed_publishes
        assert broker.duplicates_suppressed == 2

    def test_delivery_table_is_lru_too(self, broker):
        """The delivery-side table got the same touch-on-hit fix."""
        broker._dedup_capacity = 4
        event = Event.of(price=5.0)
        sid = next(iter(broker.store.ids()))
        broker.deliver({sid}, event, publish_id=100)
        for publish_id in range(1, 4):
            broker.deliver({sid}, event, publish_id=publish_id)
        assert broker.deliver({sid}, event, publish_id=100) == set()  # touch
        broker.deliver({sid}, event, publish_id=4)  # evicts 1, not 100
        assert broker.deliver({sid}, event, publish_id=100) == set()
        assert 100 in broker._delivered_publishes


class TestCapacityConfiguration:
    def test_constructor_parameter(self, schema):
        broker = SummaryBroker(0, schema, Precision.COARSE, dedup_capacity=2)
        assert broker._dedup_capacity == 2
        for publish_id in (1, 2, 3):
            broker.first_routing_of(publish_id)
        assert len(broker._routed_publishes) == 2

    def test_capacity_must_be_positive(self, schema):
        with pytest.raises(ValueError):
            SummaryBroker(0, schema, Precision.COARSE, dedup_capacity=0)

    def test_system_plumbs_capacity_to_brokers(self, schema):
        from repro.broker.system import SummaryPubSub
        from repro.network import Topology

        system = SummaryPubSub(Topology.line(3), schema, dedup_capacity=16)
        assert all(
            broker._dedup_capacity == 16 for broker in system.brokers.values()
        )

    def test_clear_dedup_forgets_both_tables(self, broker):
        event = Event.of(price=5.0)
        sid = next(iter(broker.store.ids()))
        broker.first_routing_of(7)
        broker.deliver({sid}, event, publish_id=7)
        broker.clear_dedup()
        assert broker.first_routing_of(7)
        assert broker.deliver({sid}, event, publish_id=7) == {sid}


class TestDeliveryDedup:
    def test_second_delivery_suppressed(self, broker):
        event = Event.of(price=5.0)
        sid = next(iter(broker.store.ids()))
        first = broker.deliver({sid}, event, publish_id=9)
        second = broker.deliver({sid}, event, publish_id=9)
        assert first == {sid}
        assert second == set()
        assert len(broker.deliveries) == 1

    def test_same_event_new_publish_delivers_again(self, broker):
        """Two legitimate publishes of identical content both deliver —
        dedup keys on the publish, never the payload."""
        event = Event.of(price=5.0)
        sid = next(iter(broker.store.ids()))
        broker.deliver({sid}, event, publish_id=10)
        broker.deliver({sid}, event, publish_id=11)
        assert len(broker.deliveries) == 2

    def test_unidentified_delivery_never_deduped(self, broker):
        event = Event.of(price=5.0)
        sid = next(iter(broker.store.ids()))
        broker.deliver({sid}, event)
        broker.deliver({sid}, event)
        assert len(broker.deliveries) == 2
