"""Hypothesis differential: delta-propagated backbone ≡ full-summary one.

Two identical systems — one shipping :class:`SummaryDeltaMessage` frames,
one the classic full-summary frames — run the same churn script (arrivals,
departures, *mid-period* departures injected between Algorithm-2
iterations) with paranoid audits on.  Equivalence claims:

* ``Merged_Brokers`` identical everywhere (the delta frame carries the
  same broker sets);
* kept summaries agree on every *live* id (delta mode additionally sheds
  dead ids incrementally, so its kept sets are a subset of full mode's);
* per-consumer deliveries identical and equal to the ground-truth oracle.
"""

import os

from hypothesis import example, given, settings, strategies as st

from repro.broker.system import SummaryPubSub
from repro.model import Event, parse_subscription, stock_schema
from repro.network import paper_example_tree

SCHEMA = stock_schema()

POOL = [
    parse_subscription(SCHEMA, text)
    for text in (
        "price < 20",
        "price < 10",
        "price < 5",
        "price < 10 AND symbol = OTE",
        "volume > 1000",
        "volume > 5000",
        "symbol = OTE",
        "price > 2 AND price < 12",
    )
]

PROBES = [
    Event.of(price=3.0),
    Event.of(price=7.0, symbol="OTE"),
    Event.of(price=15.0),
    Event.of(volume=6000),
    Event.of(price=11.0, volume=1500),
]

period_ops = st.lists(
    st.one_of(
        st.tuples(st.just("sub"), st.integers(0, 400), st.integers(0, len(POOL) - 1)),
        st.tuples(st.just("unsub"), st.integers(0, 400), st.just(0)),
    ),
    max_size=10,
)

churn_script = st.lists(
    st.tuples(period_ops, period_ops),  # (before-period ops, mid-period unsubs)
    min_size=1,
    max_size=3,
)


def apply_ops(system, ops, live, unsub_only=False):
    brokers = sorted(system.topology.brokers)
    for op, arg, pool_index in ops:
        if op == "sub" and not unsub_only:
            broker_id = brokers[arg % len(brokers)]
            live.append((broker_id, system.subscribe(broker_id, POOL[pool_index])))
        elif op == "unsub" and live:
            broker_id, sid = live.pop(arg % len(live))
            assert system.unsubscribe(broker_id, sid)


def run_period_with_midperiod_ops(system, mid_ops, live):
    """The engine's period body with departures injected after the first
    degree class acts — the window run_propagation_period can't reach."""
    engine = system.propagation
    topology = system.network.topology
    system.network.metrics = system.propagation_metrics
    for broker in engine.brokers.values():
        broker.begin_period()
    injected = False
    for iteration in range(1, topology.max_degree + 1):
        for broker_id in topology.brokers_by_degree(iteration):
            engine._act(engine.brokers[broker_id])
        if not injected:
            apply_ops(system, mid_ops, live, unsub_only=True)
            injected = True
        system.network.flush_iteration()
    for _ in range(2 * len(engine.brokers) + 2):
        if not system.network.has_pending:
            break
        system.network.flush_iteration()
    for broker in engine.brokers.values():
        broker.finish_period()
    engine.periods_run += 1


def live_ids(system):
    return {
        sid for broker in system.brokers.values() for sid in broker.store.ids()
    }


def kept_ids(system, broker_id):
    return set(system.brokers[broker_id].kept_summary.all_ids())


@given(script=churn_script)
@settings(max_examples=25, deadline=None)
# Two identical subscriptions, then an unsubscribe of the one that
# propagated: the covered twin must inherit the dead coverer's remote
# notifications (the ghost-coverer regression in SummaryBroker.deliver).
@example(script=[([("sub", 0, 0), ("sub", 0, 0)], [("unsub", 0, 0)])])
# Same twins, but run one more (empty) period: the orphan promoted by the
# mid-period unsubscribe entered ``pending`` after ``begin_period`` folded
# it, so ``finish_period`` must not retire it — a wholesale ``pending``
# clear strands the twin locally while the coverer's removal propagates,
# leaving no remote summary that routes events to its broker at all.
@example(script=[([("sub", 0, 0), ("sub", 0, 0)], [("unsub", 0, 0)]), ([], [])])
# Twins at a broker whose coverer unsubscribes mid-period *before* that
# broker acts: the scrub empties the in-flight delta, so the promoted twin
# must join it (it would have been pending at begin_period without
# suppression) — both delta AND full mode lost the subscription here.
@example(script=[([("sub", 1, 0), ("sub", 1, 0)], [("unsub", 0, 0)])])
def test_delta_backbone_equals_full_backbone(script):
    os.environ["REPRO_PARANOID"] = "1"
    try:
        systems = {
            mode: SummaryPubSub(
                paper_example_tree(), SCHEMA,
                propagation_mode=mode, paranoid=True,
            )
            for mode in ("delta", "full")
        }
        lives = {mode: [] for mode in systems}
        for before_ops, mid_ops in script:
            for mode, system in systems.items():
                apply_ops(system, before_ops, lives[mode])
                run_period_with_midperiod_ops(system, mid_ops, lives[mode])
        delta, full = systems["delta"], systems["full"]

        assert lives["delta"] == lives["full"]
        for broker_id in delta.brokers:
            assert (
                delta.brokers[broker_id].merged_brokers
                == full.brokers[broker_id].merged_brokers
            )
            # Kept summaries agree on live ids; delta mode never keeps
            # *more* (its removal blocks shed dead ids full mode retains).
            alive = live_ids(delta)
            assert kept_ids(delta, broker_id) <= kept_ids(full, broker_id)
            assert (
                kept_ids(delta, broker_id) & alive
                == kept_ids(full, broker_id) & alive
            )

        publishers = sorted(delta.topology.brokers)
        for index, event in enumerate(PROBES):
            publisher = publishers[index % len(publishers)]
            got = {
                mode: {
                    (d.broker, d.sid)
                    for d in system.publish(publisher, event).deliveries
                }
                for mode, system in systems.items()
            }
            truth = delta.ground_truth_matches(event)
            assert full.ground_truth_matches(event) == truth
            assert got["delta"] == truth
            assert got["full"] == truth
    finally:
        os.environ.pop("REPRO_PARANOID", None)
