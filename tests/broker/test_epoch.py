"""Epoch allocation for (re)starting brokers — the 49-bit id namespace.

A cold-rejoining broker restarts its publish sequence at 0; surviving
dedup tables remember its previous incarnation's ids, so every restart
must mint publish ids under a *fresh* epoch (see
:func:`repro.broker.persistence.allocate_epoch`).
"""

from repro.broker.persistence import EPOCH_FILE, allocate_epoch


class TestStatelessFallback:
    def test_random_draw_is_in_range_and_odd(self):
        for _ in range(64):
            epoch = allocate_epoch()
            assert 1 <= epoch <= 0xFFFF
            assert epoch & 1, "the |1 floor keeps the stateless draw nonzero"

    def test_draws_are_not_constant(self):
        assert len({allocate_epoch() for _ in range(64)}) > 1


class TestDurableCounter:
    def test_counter_is_monotone_across_restarts(self, tmp_path):
        assert [allocate_epoch(tmp_path) for _ in range(4)] == [1, 2, 3, 4]

    def test_per_broker_counters_are_independent(self, tmp_path):
        assert allocate_epoch(tmp_path, broker_id=1) == 1
        assert allocate_epoch(tmp_path, broker_id=2) == 1
        assert allocate_epoch(tmp_path, broker_id=1) == 2
        assert allocate_epoch(tmp_path) == 1  # the shared counter is separate
        assert (tmp_path / "epoch-1.counter").read_text().strip() == "2"
        assert (tmp_path / EPOCH_FILE).read_text().strip() == "1"

    def test_corrupt_counter_file_restarts_the_count(self, tmp_path):
        path = tmp_path / EPOCH_FILE
        allocate_epoch(tmp_path)
        path.write_text("not-a-number")
        assert allocate_epoch(tmp_path) == 1

    def test_missing_directory_is_created(self, tmp_path):
        nested = tmp_path / "snapshots" / "deep"
        assert allocate_epoch(nested) == 1
        assert (nested / EPOCH_FILE).exists()
