"""End-to-end SummaryPubSub: delivery oracle, storage, churn."""

import random

import pytest

from repro.broker.system import SummaryPubSub
from repro.model import Event, parse_subscription, stock_schema
from repro.network import Topology, cable_wireless_24
from repro.summary import Precision
from repro.workload import WorkloadConfig, WorkloadGenerator


@pytest.fixture(scope="module")
def loaded_system():
    """A CW24 system with a seeded workload, propagated once."""
    config = WorkloadConfig(sigma=8, subsumption=0.5)
    generator = WorkloadGenerator(config, seed=11)
    system = SummaryPubSub(cable_wireless_24(), generator.schema)
    for broker_id in system.topology.brokers:
        for subscription in generator.subscriptions(config.sigma):
            system.subscribe(broker_id, subscription)
    system.run_propagation_period()
    return generator, system


class TestDeliveryOracle:
    def test_deliveries_equal_ground_truth(self, loaded_system):
        generator, system = loaded_system
        rng = random.Random(5)
        for event in generator.events(25):
            publisher = rng.randrange(system.topology.num_brokers)
            outcome = system.publish(publisher, event)
            got = {(d.broker, d.sid) for d in outcome.deliveries}
            assert got == system.ground_truth_matches(event)

    def test_publish_validates_event(self, loaded_system):
        _, system = loaded_system
        with pytest.raises(Exception):
            system.publish(0, Event.of(nonexistent=1.0))

    def test_publish_result_metrics_are_deltas(self, loaded_system):
        generator, system = loaded_system
        first = system.publish(0, generator.event())
        second = system.publish(0, generator.event())
        assert first.hops > 0 and second.hops > 0
        assert first.messages == first.hops


class TestPrecisionModes:
    @pytest.mark.parametrize("precision", [Precision.COARSE, Precision.EXACT])
    def test_both_modes_deliver_exactly(self, precision):
        config = WorkloadConfig(subsumption=0.7)
        generator = WorkloadGenerator(config, seed=3)
        system = SummaryPubSub(
            Topology.random_tree(8, seed=1), generator.schema, precision=precision
        )
        for broker_id in system.topology.brokers:
            for subscription in generator.subscriptions(5):
                system.subscribe(broker_id, subscription)
        system.run_propagation_period()
        for event in generator.events(15):
            outcome = system.publish(0, event)
            got = {(d.broker, d.sid) for d in outcome.deliveries}
            assert got == system.ground_truth_matches(event)

    def test_exact_mode_has_no_false_positive_notifies(self):
        config = WorkloadConfig(subsumption=0.9)
        generator = WorkloadGenerator(config, seed=9)
        system = SummaryPubSub(
            Topology.line(4), generator.schema, precision=Precision.EXACT
        )
        for broker_id in system.topology.brokers:
            for subscription in generator.subscriptions(10):
                system.subscribe(broker_id, subscription)
        system.run_propagation_period()
        for event in generator.events(20):
            system.publish(0, event)
        assert all(
            broker.false_positive_notifies == 0
            for broker in system.brokers.values()
        )


class TestChurn:
    def test_unsubscribe_stops_delivery(self, schema):
        system = SummaryPubSub(Topology.line(3), schema)
        sid = system.subscribe(2, parse_subscription(schema, "price > 1"))
        system.run_propagation_period()
        event = Event.of(price=5.0)
        assert system.publish(0, event).matched_brokers == {2}
        assert system.unsubscribe(2, sid)
        # Remote summaries still hold the id; the home re-check drops it.
        assert system.publish(0, event).deliveries == []
        assert not system.unsubscribe(2, sid)

    def test_full_refresh_purges_remote_state(self, schema):
        system = SummaryPubSub(Topology.line(3), schema)
        sid = system.subscribe(2, parse_subscription(schema, "price > 1"))
        system.run_propagation_period()
        system.unsubscribe(2, sid)
        system.run_full_refresh()
        for broker in system.brokers.values():
            assert sid not in broker.kept_summary.all_ids()

    def test_full_refresh_keeps_live_subscriptions(self, schema):
        system = SummaryPubSub(Topology.line(3), schema)
        dead = system.subscribe(2, parse_subscription(schema, "price > 100"))
        live = system.subscribe(1, parse_subscription(schema, "price > 1"))
        system.run_propagation_period()
        system.unsubscribe(2, dead)
        system.run_full_refresh()
        outcome = system.publish(0, Event.of(price=5.0))
        assert {d.sid for d in outcome.deliveries} == {live}

    def test_subscription_before_propagation_not_yet_visible_remotely(self, schema):
        system = SummaryPubSub(Topology.line(3), schema)
        system.subscribe(2, parse_subscription(schema, "price > 1"))
        # No propagation period yet: a remote publish cannot find it.
        outcome = system.publish(0, Event.of(price=5.0))
        assert outcome.deliveries == []


class TestStorage:
    def test_storage_grows_with_subscriptions(self, schema):
        system = SummaryPubSub(Topology.line(4), schema)
        system.subscribe(0, parse_subscription(schema, "price > 1"))
        system.run_propagation_period()
        small = system.total_summary_storage()
        for i in range(20):
            system.subscribe(0, parse_subscription(schema, f"volume > {i * 1000}"))
        system.run_propagation_period()
        assert system.total_summary_storage() > small

    def test_breakdown_sums_to_total(self, loaded_system):
        _, system = loaded_system
        breakdown = system.storage_breakdown()
        assert sum(breakdown.values()) == system.total_summary_storage()
        assert set(breakdown) == set(system.topology.brokers)
