"""BROCLI re-routing around dead links (EventRouter.handle_send_failure).

A dead broker is modelled by a transport that drops every frame addressed
to it.  The reliable layer exhausts its retry budget, reports the failure,
and the router must steer the serial search around the hole so one dead
node costs at most its own subscribers — not every downstream delivery.
"""

import pytest

from repro.broker.system import SummaryPubSub
from repro.network.faults import LossyNetwork
from repro.network.reliable import RetryPolicy
from repro.workload.popularity import (
    popularity_event,
    popularity_schema,
    probe_subscription,
)


class DeadLinkNetwork(LossyNetwork):
    """Drops (but meters) every frame addressed to a broker in ``dead``.

    The set starts empty so propagation runs over a healthy overlay; tests
    kill brokers only after the summaries are in place.
    """

    def __init__(self, topology, codec=None, metrics=None):
        super().__init__(topology, codec, metrics)
        self.dead = set()

    def send(self, src, dst, message):
        if dst in self.dead:
            size = self.codec.size(message) if self.codec is not None else 0
            self.metrics.record(src, dst, size, self.topology.path_length(src, dst))
            self.dropped += 1
            return
        super().send(src, dst, message)


@pytest.fixture
def system_and_sids(figure7_tree):
    system = SummaryPubSub(
        figure7_tree,
        popularity_schema(),
        network_cls=DeadLinkNetwork,
        reliability=RetryPolicy(retries=1, timeout_rounds=2),
    )
    sids = {}
    for broker_id in figure7_tree.brokers:
        sids[broker_id] = system.subscribe(broker_id, probe_subscription(broker_id))
    system.run_propagation_period()
    return system, sids


def kill(system, broker_id):
    system.network.inner.dead.add(broker_id)


class TestEventReroute:
    def test_search_routes_around_dead_mid_chain_broker(self, system_and_sids):
        """Node 7 sits mid-chain on the example-3 forwarding path (0 -> 4
        -> 7 -> 10).  With it dead, the old behaviour lost every delivery
        past node 4; re-routing must still reach node 12's owner."""
        system, sids = system_and_sids
        kill(system, 7)
        outcome = system.publish(0, popularity_event({3, 12}))
        delivered = [d.sid for d in outcome.deliveries]
        assert sorted(delivered) == sorted([sids[3], sids[12]])
        assert len(delivered) == len(set(delivered))  # no duplicates
        assert system.router.event_reroutes >= 1
        assert system.event_metrics.send_failures >= 1
        assert system.event_metrics.retransmits >= 1  # budget really spent

    def test_unexaminable_broker_abandons_search_once(self, system_and_sids):
        """When the only unexamined broker left is the dead one, the
        search gives up exactly once instead of spinning."""
        system, _ = system_and_sids
        kill(system, 7)
        system.publish(0, popularity_event({3, 12}))
        assert system.router.searches_abandoned == 1

    def test_only_dead_brokers_subscribers_are_lost(self, system_and_sids):
        """An event matching everyone loses exactly the dead broker's own
        delivery — the bound the re-route exists to enforce."""
        system, sids = system_and_sids
        kill(system, 7)
        outcome = system.publish(0, popularity_event(set(range(13))))
        delivered = {d.sid for d in outcome.deliveries}
        assert delivered == {sids[b] for b in range(13) if b != 7}

    def test_healthy_overlay_never_reroutes(self, system_and_sids):
        system, sids = system_and_sids
        outcome = system.publish(0, popularity_event({3, 7, 12}))
        assert {d.sid for d in outcome.deliveries} == {
            sids[3], sids[7], sids[12]
        }
        assert system.router.event_reroutes == 0
        assert system.router.notify_failures == 0
        assert system.event_metrics.send_failures == 0
        assert system.event_metrics.retransmits == 0


class TestNotifyFailure:
    def test_dead_owner_counts_notify_failure(self, system_and_sids):
        """Node 3 is a leaf whose subscriptions node 4 knows about: the
        NOTIFY from node 4 is the only undeliverable message, so the event
        search itself never re-routes."""
        system, sids = system_and_sids
        kill(system, 3)
        outcome = system.publish(0, popularity_event({3, 12}))
        assert {d.sid for d in outcome.deliveries} == {sids[12]}
        assert system.router.notify_failures == 1
        assert system.router.event_reroutes == 0

    def test_notify_failures_accumulate(self, system_and_sids):
        system, _ = system_and_sids
        kill(system, 3)
        for _ in range(3):
            system.publish(0, popularity_event({3}))
        assert system.router.notify_failures == 3
