"""Delta-mode propagation: generation chaining, removals, fallback.

The refresh-then-late-delta regression lives here (satellite bugfix): a
delta frame that was built *before* a full refresh but applied *after* it
carries a stale base generation and must be rejected — silently merging it
would resurrect the pre-refresh worldview the refresh just replaced.  The
simulator's refreshes are synchronous and global, so the interleaving is
constructed explicitly against the engine/broker API (in the live runtime
it arises naturally from frames in flight across a restart).
"""

import pytest

from repro.broker.broker import SummaryBroker
from repro.broker.system import SummaryPubSub
from repro.model import parse_subscription
from repro.network import Topology
from repro.summary import BrokerSummary, Precision
from repro.wire.messages import (
    SummaryDeltaMessage,
    SummaryMessage,
    SummaryRequestMessage,
)


def delta_system(schema, n=3, **kwargs):
    kwargs.setdefault("propagation_mode", "delta")
    kwargs.setdefault("suppress_covered", False)
    return SummaryPubSub(Topology.line(n), schema, **kwargs)


class TestDeltaPeriods:
    def test_adds_propagate_like_full_mode(self, schema):
        system = delta_system(schema)
        sid = system.subscribe(0, parse_subscription(schema, "price < 5"))
        system.run_propagation_period()
        assert any(
            sid in system.brokers[b].kept_summary.all_ids() for b in (1, 2)
        )

    def test_merged_brokers_match_full_mode(self, schema):
        def merged(mode):
            system = SummaryPubSub(
                Topology.line(4), schema,
                propagation_mode=mode, suppress_covered=False,
            )
            for broker_id in range(4):
                system.subscribe(
                    broker_id,
                    parse_subscription(schema, f"price < {broker_id + 1}"),
                )
            system.run_propagation_period()
            system.run_propagation_period()
            return {
                b: frozenset(system.brokers[b].merged_brokers)
                for b in system.brokers
            }

        assert merged("delta") == merged("full")

    def test_removals_propagate_without_refresh(self, schema):
        system = delta_system(schema)
        sid = system.subscribe(0, parse_subscription(schema, "price < 5"))
        system.run_propagation_period()
        holders = [
            b for b in (1, 2)
            if sid in system.brokers[b].kept_summary.all_ids()
        ]
        assert holders
        assert system.unsubscribe(0, sid)
        system.run_propagation_period()
        for b in holders:
            assert sid not in system.brokers[b].kept_summary.all_ids()

    def test_generations_advance_per_link(self, schema):
        system = delta_system(schema)
        system.subscribe(0, parse_subscription(schema, "price < 5"))
        system.run_propagation_period()
        system.run_propagation_period()
        sender = next(
            b for b in system.brokers.values() if b.link_generations_out
        )
        assert max(sender.link_generations_out.values()) >= 2
        assert system.propagation.fallback_requests == 0


class TestAbsorbDelta:
    def make_broker(self, schema):
        broker = SummaryBroker(0, schema, suppress_covered=False)
        broker.begin_period()
        return broker

    def adds(self, schema, sid_source):
        summary = BrokerSummary(schema, Precision.COARSE)
        sid = sid_source.subscribe(parse_subscription(schema, "price < 5"))
        summary.add(sid_source.store.get(sid), sid)
        return summary, sid

    def test_chained_delta_accepted(self, schema):
        broker = self.make_broker(schema)
        source = SummaryBroker(1, schema, suppress_covered=False)
        adds, sid = self.adds(schema, source)
        assert broker.absorb_delta(1, adds, set(), {1}, 0, 1)
        assert broker.link_generations_in[1] == 1
        assert sid in broker.delta_summary.all_ids()
        assert 1 in broker.delta_brokers

    def test_stale_base_rejected_without_state_change(self, schema):
        broker = self.make_broker(schema)
        source = SummaryBroker(1, schema, suppress_covered=False)
        adds, sid = self.adds(schema, source)
        assert not broker.absorb_delta(1, adds, {sid}, {1}, 3, 4)
        assert broker.link_generations_in.get(1, 0) == 0
        assert sid not in broker.delta_summary.all_ids()
        assert not broker.delta_removed
        assert broker.delta_brokers == {0}

    def test_between_periods_rejected(self, schema):
        broker = SummaryBroker(0, schema, suppress_covered=False)
        source = SummaryBroker(1, schema, suppress_covered=False)
        adds, _sid = self.adds(schema, source)
        assert broker.delta_summary is None
        assert not broker.absorb_delta(1, adds, set(), {1}, 0, 1)


class TestRefreshThenLateDelta:
    """The satellite regression: refresh invalidates in-flight deltas."""

    def stale_delta(self, schema, src_broker: SummaryBroker, generation: int):
        summary = BrokerSummary(schema, Precision.COARSE)
        sid = src_broker.subscribe(parse_subscription(schema, "volume > 9"))
        summary.add(src_broker.store.get(sid), sid)
        return (
            SummaryDeltaMessage(
                adds=summary,
                removed=frozenset(),
                merged_brokers=frozenset({src_broker.broker_id}),
                base_generation=generation - 1,
                generation=generation,
            ),
            sid,
        )

    def test_late_delta_after_refresh_is_rejected(self, schema):
        system = delta_system(schema)
        system.subscribe(1, parse_subscription(schema, "price < 5"))
        system.run_propagation_period()
        system.run_propagation_period()  # generation chains now >= 1
        # A frame built against the pre-refresh chain, "in flight" while...
        message, sid = self.stale_delta(schema, system.brokers[1], generation=9)
        system.run_full_refresh()  # ...the refresh resets every chain.
        target = system.brokers[0]
        target.begin_period()
        before_ids = set(target.delta_summary.all_ids())
        requests_before = system.propagation.fallback_requests
        assert system.propagation.handle_message(0, 1, message)
        # Rejected: nothing merged, a full-summary request went out instead.
        assert set(target.delta_summary.all_ids()) == before_ids
        assert sid not in target.delta_summary.all_ids()
        assert system.propagation.fallback_requests == requests_before + 1
        target.finish_period()

    def test_fallback_request_yields_full_summary_resync(self, schema):
        system = delta_system(schema)
        system.subscribe(1, parse_subscription(schema, "price < 5"))
        system.run_propagation_period()
        message, stale_sid = self.stale_delta(schema, system.brokers[1], generation=7)
        system.run_full_refresh()
        # Drive the whole reject -> request -> reply chain through the
        # simulator network so the resync lands inside a real period.
        target = system.brokers[0]
        target.begin_period()
        system.brokers[1].begin_period()
        assert system.propagation.handle_message(0, 1, message)
        while system.network.has_pending:
            system.network.flush_iteration()
        replies = system.propagation.fallback_replies
        assert replies >= 1
        # The reply restarted broker 1's chain towards broker 0.
        assert system.brokers[1].link_generations_out[0] == 0
        assert target.link_generations_in[1] == 0
        for broker in system.brokers.values():
            broker.finish_period()
        # The resync absorbed broker 1's snapshot (Merged_Brokers gained 1)
        # and the stale frame's content never leaked in.
        assert 1 in system.brokers[0].merged_brokers
        assert stale_sid not in system.brokers[0].kept_summary.all_ids()

    def test_request_between_periods_ships_kept_summary(self, schema):
        system = delta_system(schema)
        sid = system.subscribe(1, parse_subscription(schema, "price < 5"))
        system.run_propagation_period()
        assert system.brokers[1].delta_summary is None  # between periods
        system.propagation.handle_message(1, 0, SummaryRequestMessage(generation=3))
        queued = [message for (_dst, _seq, _src, message) in system.network._pending]
        assert len(queued) == 1
        reply = queued[0]
        assert isinstance(reply, SummaryMessage)
        assert sid in reply.summary.all_ids()
